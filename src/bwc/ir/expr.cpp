#include "bwc/ir/expr.h"

#include "bwc/support/error.h"
#include "bwc/support/prng.h"

namespace bwc::ir {

ExprPtr Expr::clone() const {
  auto e = std::make_unique<Expr>();
  e->kind = kind;
  e->value = value;
  e->scalar = scalar;
  e->loop_var = loop_var;
  e->array = array;
  e->subscripts = subscripts;
  e->op = op;
  e->callee = callee;
  e->call_flops = call_flops;
  e->input_key = input_key;
  e->input_extents = input_extents;
  e->operands.reserve(operands.size());
  for (const auto& child : operands) e->operands.push_back(child->clone());
  return e;
}

ExprPtr make_const(double v) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kConst;
  e->value = v;
  return e;
}

ExprPtr make_scalar(const std::string& name) {
  BWC_CHECK(!name.empty(), "scalar name must not be empty");
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kScalarRef;
  e->scalar = name;
  return e;
}

ExprPtr make_loop_var(const std::string& name) {
  BWC_CHECK(!name.empty(), "loop variable name must not be empty");
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kLoopVar;
  e->loop_var = name;
  return e;
}

ExprPtr make_array_ref(ArrayId array, std::vector<Affine> subscripts) {
  BWC_CHECK(array >= 0, "array id must be valid");
  BWC_CHECK(!subscripts.empty(), "array reference needs subscripts");
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kArrayRef;
  e->array = array;
  e->subscripts = std::move(subscripts);
  return e;
}

ExprPtr make_binary(BinOp op, ExprPtr lhs, ExprPtr rhs) {
  BWC_CHECK(lhs && rhs, "binary operands must be non-null");
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kBinary;
  e->op = op;
  e->operands.push_back(std::move(lhs));
  e->operands.push_back(std::move(rhs));
  return e;
}

ExprPtr make_call(const std::string& callee, int flops,
                  std::vector<ExprPtr> args) {
  BWC_CHECK(!callee.empty(), "callee name must not be empty");
  BWC_CHECK(flops >= 0, "call flop cost must be non-negative");
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kCall;
  e->callee = callee;
  e->call_flops = flops;
  e->operands = std::move(args);
  return e;
}

ExprPtr make_input(int key, std::vector<Affine> subscripts,
                   std::vector<std::int64_t> extents) {
  BWC_CHECK(subscripts.size() == extents.size(),
            "input needs one subscript per extent");
  BWC_CHECK(!subscripts.empty(), "input needs at least one subscript");
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kInput;
  e->input_key = key;
  e->subscripts = std::move(subscripts);
  e->input_extents = std::move(extents);
  return e;
}

bool equal(const Expr& a, const Expr& b) {
  if (a.kind != b.kind) return false;
  switch (a.kind) {
    case ExprKind::kConst:
      return a.value == b.value;
    case ExprKind::kScalarRef:
      return a.scalar == b.scalar;
    case ExprKind::kLoopVar:
      return a.loop_var == b.loop_var;
    case ExprKind::kArrayRef:
      return a.array == b.array && a.subscripts == b.subscripts;
    case ExprKind::kBinary:
      if (a.op != b.op) return false;
      break;
    case ExprKind::kCall:
      if (a.callee != b.callee || a.call_flops != b.call_flops) return false;
      break;
    case ExprKind::kInput:
      if (a.input_key != b.input_key || a.subscripts != b.subscripts ||
          a.input_extents != b.input_extents)
        return false;
      return true;
  }
  if (a.operands.size() != b.operands.size()) return false;
  for (std::size_t i = 0; i < a.operands.size(); ++i) {
    if (!equal(*a.operands[i], *b.operands[i])) return false;
  }
  return true;
}

double input_value(int key, std::int64_t linear_index) {
  std::uint64_t state = (static_cast<std::uint64_t>(key) << 32) ^
                        static_cast<std::uint64_t>(linear_index) ^
                        0xabcdef1234567890ull;
  const std::uint64_t bits = splitmix64(state);
  // Map to [0.5, 1.5) to keep values well-scaled for long reductions.
  return 0.5 + static_cast<double>(bits >> 11) * 0x1.0p-53;
}

const char* binop_name(BinOp op) {
  switch (op) {
    case BinOp::kAdd:
      return "+";
    case BinOp::kSub:
      return "-";
    case BinOp::kMul:
      return "*";
    case BinOp::kDiv:
      return "/";
    case BinOp::kMin:
      return "min";
    case BinOp::kMax:
      return "max";
  }
  return "?";
}

}  // namespace bwc::ir
