#include "bwc/ir/affine.h"

#include <sstream>

namespace bwc::ir {

Affine Affine::constant(std::int64_t k) {
  Affine a;
  a.constant_ = k;
  return a;
}

Affine Affine::var(const std::string& name, std::int64_t coeff,
                   std::int64_t offset) {
  Affine a;
  a.constant_ = offset;
  a.set_coeff(name, coeff);
  return a;
}

void Affine::set_coeff(const std::string& name, std::int64_t c) {
  if (c == 0) {
    terms_.erase(name);
  } else {
    terms_[name] = c;
  }
}

std::int64_t Affine::coeff(const std::string& name) const {
  const auto it = terms_.find(name);
  return it == terms_.end() ? 0 : it->second;
}

std::optional<std::string> Affine::single_var() const {
  if (terms_.size() != 1) return std::nullopt;
  return terms_.begin()->first;
}

Affine Affine::operator+(const Affine& o) const {
  Affine r = *this;
  r.constant_ += o.constant_;
  for (const auto& [name, c] : o.terms_) r.set_coeff(name, r.coeff(name) + c);
  return r;
}

Affine Affine::operator-(const Affine& o) const {
  Affine r = *this;
  r.constant_ -= o.constant_;
  for (const auto& [name, c] : o.terms_) r.set_coeff(name, r.coeff(name) - c);
  return r;
}

Affine Affine::operator+(std::int64_t k) const {
  Affine r = *this;
  r.constant_ += k;
  return r;
}

Affine Affine::operator-(std::int64_t k) const { return *this + (-k); }

Affine Affine::operator*(std::int64_t k) const {
  Affine r;
  r.constant_ = constant_ * k;
  for (const auto& [name, c] : terms_) r.set_coeff(name, c * k);
  return r;
}

Affine Affine::substituted(const std::string& name,
                           const Affine& replacement) const {
  const std::int64_t c = coeff(name);
  if (c == 0) return *this;
  Affine r = *this;
  r.set_coeff(name, 0);
  return r + replacement * c;
}

Affine Affine::renamed(const std::string& from, const std::string& to) const {
  return substituted(from, Affine::var(to));
}

std::string Affine::str() const {
  std::ostringstream os;
  bool first = true;
  for (const auto& [name, c] : terms_) {
    if (c < 0) {
      os << (first ? "-" : " - ");
    } else if (!first) {
      os << " + ";
    }
    const std::int64_t mag = c < 0 ? -c : c;
    if (mag != 1) os << mag << "*";
    os << name;
    first = false;
  }
  if (constant_ != 0 || first) {
    if (first) {
      os << constant_;
    } else if (constant_ > 0) {
      os << " + " << constant_;
    } else {
      os << " - " << -constant_;
    }
  }
  return os.str();
}

}  // namespace bwc::ir
