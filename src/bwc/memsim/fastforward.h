// Online steady-state fast-forward for raw access streams.
//
// Native workloads (the Figure 3 stride kernels, STREAM, the proxies)
// issue per-element access streams with no loop metadata attached, yet in
// steady state those streams are periodic: a fixed tuple of accesses
// repeats, every address advancing by a constant shift per repetition.
// AccessFastForward watches such a stream on its way into a
// MemoryHierarchy, infers the period online, proves the hierarchy has
// reached its periodic fixpoint -- identical per-super-period counter
// deltas plus resident state that equals its own translation by the
// super-period's address shift -- and then *absorbs* matching accesses
// instead of simulating them, folding the skipped super-periods back into
// the hierarchy analytically on settle(). Every counter and the final
// resident state are exactly what full simulation would have produced,
// which is why bench::steady_state_profile can use it for warm-up passes
// without perturbing the measured pass by a single byte.
//
// The compiled engine's stream loops use the offline twin of this driver
// (runtime/fastforward.h), which gets the period from lowering metadata
// instead of inferring it.
#pragma once

#include <cstdint>
#include <vector>

#include "bwc/memsim/hierarchy.h"

namespace bwc::memsim {

class AccessFastForward {
 public:
  /// The hierarchy must be translation_invariant() (checked); callers gate
  /// construction on that, so page-randomized machines (Exemplar) simply
  /// never get a detector and always simulate in full.
  explicit AccessFastForward(MemoryHierarchy* hierarchy);

  AccessFastForward(const AccessFastForward&) = delete;
  AccessFastForward& operator=(const AccessFastForward&) = delete;

  /// Observe one program access. In the detection phases the access is
  /// forwarded to the hierarchy unchanged; once the periodic fixpoint is
  /// certified, accesses matching the predicted stream are absorbed and a
  /// mismatch settles the skipped span before re-entering detection.
  void access(bool is_store, std::uint64_t addr, std::uint64_t size);

  /// Fold any absorbed-but-unapplied span into the hierarchy: scale the
  /// certified per-super-period counter delta by the super-periods
  /// skipped, translate the resident state, and replay the partial tail
  /// element by element. Must be called before the hierarchy's counters or
  /// state are read; safe to call at any time.
  void settle();

  /// Accesses absorbed by the skip path so far (observability).
  std::uint64_t skipped_accesses() const { return skipped_accesses_; }

 private:
  struct Access {
    std::uint64_t addr = 0;
    std::uint32_t size = 0;
    bool is_store = false;
  };

  // kCollect: forward everything, look for a period in the recent window.
  // kVerify: forward everything while checking each access against the
  //          adopted pattern and fingerprinting super-period boundaries.
  // kSkip:   absorb matching accesses; counters/state owed until settle().
  // kOff:    detection failed too often; forward-only, zero overhead.
  enum class Mode : std::uint8_t { kCollect, kVerify, kSkip, kOff };

  void forward(const Access& a);
  bool matches_expected(const Access& a) const;
  void collect(const Access& a);
  void try_adopt();
  void on_super_period();  // kVerify super-period fingerprinting
  void fail_adoption();

  MemoryHierarchy* hierarchy_;
  Mode mode_ = Mode::kCollect;

  // Collection window (ring buffer of the most recent accesses).
  std::vector<Access> history_;
  std::size_t history_head_ = 0;  // next write slot
  std::size_t history_count_ = 0;
  std::uint64_t attempt_countdown_;
  int failed_adoptions_ = 0;

  // Adopted hypothesis: `pattern_` is one period of the stream as last
  // seen; occurrence r of pattern slot j is predicted at
  // pattern_[j].addr + shift_ * r. A super-period is `sp_reps_` pattern
  // repetitions, chosen so its total shift is line-granular at every
  // level.
  std::vector<Access> pattern_;
  std::int64_t shift_ = 0;     // bytes per pattern repetition
  std::uint64_t sp_reps_ = 0;  // pattern repetitions per super-period
  std::int64_t sp_shift_ = 0;  // shift_ * sp_reps_
  std::size_t pos_ = 0;        // next pattern slot expected
  std::uint64_t rep_ = 0;      // current repetition number (shift multiple)
  std::uint64_t rep_in_sp_ = 0;

  // Super-period fingerprints (kVerify).
  MemoryHierarchy::Counters prev_counters_, cur_counters_, delta_, last_delta_;
  bool have_last_delta_ = false;
  MemoryHierarchy::ResidentState state_snap_;
  bool have_state_snap_ = false;
  // The counter delta stabilizes from the first cold miss, but the
  // resident state only becomes translation-stationary once the stream
  // has swept every level's capacity; the retry budget is sized for that
  // fill at adoption time (capacity / super-period shift, plus slack).
  std::int64_t state_retries_ = 0;       // super-periods since adoption
  std::int64_t state_retry_budget_ = 0;  // capacity-scaled patience
  std::int64_t state_check_gap_ = 1;     // backoff between state checks
  std::int64_t state_check_wait_ = 0;    // super-periods until next check

  // Skip-phase debt: super-periods fully absorbed, plus the partial tail
  // of absorbed accesses past the last super-period boundary.
  std::uint64_t skipped_sps_ = 0;
  std::vector<Access> partial_;
  std::uint64_t skipped_accesses_ = 0;
};

}  // namespace bwc::memsim
