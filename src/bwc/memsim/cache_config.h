// Cache geometry and policy descriptors for the memory-hierarchy simulator.
#pragma once

#include <cstdint>
#include <string>

namespace bwc::memsim {

enum class WritePolicy {
  kWriteBack,     // dirty lines written to the next level on eviction
  kWriteThrough,  // every write forwarded to the next level immediately
};

enum class AllocatePolicy {
  kWriteAllocate,    // a write miss fills the line first
  kNoWriteAllocate,  // a write miss bypasses this level
};

/// Geometry and policy of one cache level.
struct CacheConfig {
  std::string name = "L1";
  std::uint64_t size_bytes = 32 * 1024;
  std::uint64_t line_bytes = 32;
  /// Number of ways; 0 means fully associative.
  std::uint32_t associativity = 2;
  WritePolicy write_policy = WritePolicy::kWriteBack;
  AllocatePolicy allocate_policy = AllocatePolicy::kWriteAllocate;
  /// Non-zero: model a physically-indexed cache behind a random
  /// virtual-to-physical page mapping -- each page lands at a
  /// pseudo-random (deterministic in the seed) cache position. This is
  /// what makes large direct-mapped caches (Exemplar PA-8000) show
  /// conflict misses that grow with the number of concurrent streams,
  /// the paper's explanation for the 3w6r outlier in Figure 3.
  std::uint64_t page_randomization_seed = 0;
  std::uint64_t page_bytes = 4096;

  std::uint64_t num_lines() const { return size_bytes / line_bytes; }
  std::uint64_t num_sets() const {
    const std::uint64_t ways = associativity == 0 ? num_lines() : associativity;
    return num_lines() / ways;
  }
  std::uint64_t ways() const {
    return associativity == 0 ? num_lines() : associativity;
  }

  /// Throws bwc::Error unless sizes are positive powers of two and the
  /// geometry is self-consistent.
  void validate() const;
};

/// Per-level hit/miss statistics.
struct CacheLevelStats {
  std::uint64_t read_hits = 0;
  std::uint64_t read_misses = 0;
  std::uint64_t write_hits = 0;
  std::uint64_t write_misses = 0;
  std::uint64_t writebacks = 0;  // dirty evictions
  std::uint64_t evictions = 0;   // any replacement of a valid line

  std::uint64_t accesses() const {
    return read_hits + read_misses + write_hits + write_misses;
  }
  std::uint64_t misses() const { return read_misses + write_misses; }
  friend bool operator==(const CacheLevelStats&,
                         const CacheLevelStats&) = default;
  double miss_rate() const {
    const std::uint64_t a = accesses();
    return a == 0 ? 0.0 : static_cast<double>(misses()) / static_cast<double>(a);
  }
};

}  // namespace bwc::memsim
