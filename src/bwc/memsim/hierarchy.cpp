#include "bwc/memsim/hierarchy.h"

#include <algorithm>
#include <sstream>

#include "bwc/support/error.h"

namespace bwc::memsim {

MemoryHierarchy::MemoryHierarchy(std::vector<CacheConfig> configs) {
  levels_.reserve(configs.size());
  for (auto& c : configs) levels_.emplace_back(std::move(c));

  boundary_.resize(levels_.size() + 1);
  if (levels_.empty()) {
    boundary_[0].name = "Mem-Reg";
  } else {
    boundary_[0].name = levels_[0].config().name + "-Reg";
    for (std::size_t i = 1; i < levels_.size(); ++i)
      boundary_[i].name =
          levels_[i].config().name + "-" + levels_[i - 1].config().name;
    boundary_.back().name = "Mem-" + levels_.back().config().name;
  }
}

void MemoryHierarchy::load(std::uint64_t addr, std::uint64_t size) {
  BWC_CHECK(size > 0, "load size must be positive");
  ++loads_;
  boundary_[0].bytes_toward_cpu += size;
  access(0, addr, size, /*is_write=*/false);
}

void MemoryHierarchy::store(std::uint64_t addr, std::uint64_t size) {
  BWC_CHECK(size > 0, "store size must be positive");
  ++stores_;
  boundary_[0].bytes_from_cpu += size;
  access(0, addr, size, /*is_write=*/true);
}

void MemoryHierarchy::load_run(std::uint64_t addr, std::uint64_t size,
                               std::uint64_t count) {
  BWC_CHECK(size > 0 && count > 0, "run size and count must be positive");
  loads_ += count;
  boundary_[0].bytes_toward_cpu += size;
  access(0, addr, size, /*is_write=*/false);
}

void MemoryHierarchy::store_run(std::uint64_t addr, std::uint64_t size,
                                std::uint64_t count) {
  BWC_CHECK(size > 0 && count > 0, "run size and count must be positive");
  stores_ += count;
  boundary_[0].bytes_from_cpu += size;
  access(0, addr, size, /*is_write=*/true);
}

void MemoryHierarchy::access(std::size_t level_index, std::uint64_t addr,
                             std::uint64_t size, bool is_write) {
  if (level_index == levels_.size()) return;  // reached memory

  CacheLevel& level = levels_[level_index];
  const std::uint64_t line = level.config().line_bytes;
  const std::uint64_t mask = ~(line - 1);  // line sizes are powers of two
  const std::uint64_t first = addr & mask;
  const std::uint64_t last = (addr + size - 1) & mask;

  for (std::uint64_t la = first; la <= last; la += line) {
    const auto result = level.access(la, is_write);

    if (result.filled && !result.hit) {
      // Fill: pull the whole line from the next level.
      boundary_[level_index + 1].bytes_toward_cpu += line;
      access(level_index + 1, la, line, /*is_write=*/false);
    }
    if (result.evicted_dirty) {
      // Writeback of the victim line into the next level.
      boundary_[level_index + 1].bytes_from_cpu += line;
      access(level_index + 1, result.evicted_line_addr, line,
             /*is_write=*/true);
    }
    if (is_write) {
      const bool through =
          level.config().write_policy == WritePolicy::kWriteThrough;
      const bool bypass =
          !result.hit && !result.filled;  // no-write-allocate miss
      if (through || bypass) {
        // Forward only the bytes of this access that land in this line.
        const std::uint64_t begin = std::max(addr, la);
        const std::uint64_t end = std::min(addr + size, la + line);
        const std::uint64_t chunk = end - begin;
        boundary_[level_index + 1].bytes_from_cpu += chunk;
        access(level_index + 1, begin, chunk, /*is_write=*/true);
      }
    }
  }
}

void MemoryHierarchy::reset_stats() {
  for (auto& level : levels_) level.reset_stats();
  for (auto& b : boundary_) {
    b.bytes_toward_cpu = 0;
    b.bytes_from_cpu = 0;
  }
  loads_ = stores_ = 0;
}

void MemoryHierarchy::reset() {
  reset_stats();
  for (auto& level : levels_) level.reset();
}

void MemoryHierarchy::discard_dirty_range(std::uint64_t addr,
                                          std::uint64_t size) {
  BWC_CHECK(size > 0, "range size must be positive");
  for (auto& level : levels_) {
    const std::uint64_t line = level.config().line_bytes;
    const std::uint64_t first = addr / line * line;
    const std::uint64_t last = (addr + size - 1) / line * line;
    for (std::uint64_t la = first; la <= last; la += line)
      level.invalidate(la);
  }
}

std::string describe(const MemoryHierarchy& h) {
  std::ostringstream os;
  for (std::size_t i = 0; i < h.level_count(); ++i) {
    const auto& c = h.level(i).config();
    const auto& s = h.level(i).stats();
    os << c.name << " (" << c.size_bytes / 1024 << " KB, " << c.line_bytes
       << "B lines, "
       << (c.associativity == 0 ? std::string("full")
                                : std::to_string(c.associativity) + "-way")
       << "): accesses=" << s.accesses() << " misses=" << s.misses()
       << " writebacks=" << s.writebacks << "\n";
  }
  for (const auto& b : h.boundaries()) {
    os << b.name << ": toward-cpu=" << b.bytes_toward_cpu
       << "B from-cpu=" << b.bytes_from_cpu << "B total=" << b.total()
       << "B\n";
  }
  return os.str();
}

}  // namespace bwc::memsim
