#include "bwc/memsim/hierarchy.h"

#include <algorithm>
#include <sstream>

#include "bwc/support/error.h"

namespace bwc::memsim {

MemoryHierarchy::MemoryHierarchy(std::vector<CacheConfig> configs) {
  levels_.reserve(configs.size());
  for (auto& c : configs) levels_.emplace_back(std::move(c));

  boundary_.resize(levels_.size() + 1);
  if (levels_.empty()) {
    boundary_[0].name = "Mem-Reg";
  } else {
    boundary_[0].name = levels_[0].config().name + "-Reg";
    for (std::size_t i = 1; i < levels_.size(); ++i)
      boundary_[i].name =
          levels_[i].config().name + "-" + levels_[i - 1].config().name;
    boundary_.back().name = "Mem-" + levels_.back().config().name;
  }
}

void MemoryHierarchy::load(std::uint64_t addr, std::uint64_t size) {
  BWC_CHECK(size > 0, "load size must be positive");
  ++loads_;
  boundary_[0].bytes_toward_cpu += size;
  access(0, addr, size, /*is_write=*/false);
}

void MemoryHierarchy::store(std::uint64_t addr, std::uint64_t size) {
  BWC_CHECK(size > 0, "store size must be positive");
  ++stores_;
  boundary_[0].bytes_from_cpu += size;
  access(0, addr, size, /*is_write=*/true);
}

void MemoryHierarchy::load_run(std::uint64_t addr, std::uint64_t size,
                               std::uint64_t count, bool descending) {
  BWC_CHECK(size > 0 && count > 0, "run size and count must be positive");
  loads_ += count;
  boundary_[0].bytes_toward_cpu += size;
  access(0, addr, size, /*is_write=*/false, descending);
}

void MemoryHierarchy::store_run(std::uint64_t addr, std::uint64_t size,
                                std::uint64_t count, bool descending) {
  BWC_CHECK(size > 0 && count > 0, "run size and count must be positive");
  stores_ += count;
  boundary_[0].bytes_from_cpu += size;
  access(0, addr, size, /*is_write=*/true, descending);
}

void MemoryHierarchy::access(std::size_t level_index, std::uint64_t addr,
                             std::uint64_t size, bool is_write,
                             bool descending) {
  if (level_index == levels_.size()) return;  // reached memory

  CacheLevel& level = levels_[level_index];
  const std::uint64_t line = level.config().line_bytes;
  const std::uint64_t mask = ~(line - 1);  // line sizes are powers of two
  const std::uint64_t first = addr & mask;
  const std::uint64_t last = (addr + size - 1) & mask;

  const auto touch = [&](std::uint64_t la) {
    const auto result = level.access(la, is_write);

    if (result.filled && !result.hit) {
      // Fill: pull the whole line from the next level.
      boundary_[level_index + 1].bytes_toward_cpu += line;
      access(level_index + 1, la, line, /*is_write=*/false);
    }
    if (result.evicted_dirty) {
      // Writeback of the victim line into the next level.
      boundary_[level_index + 1].bytes_from_cpu += line;
      access(level_index + 1, result.evicted_line_addr, line,
             /*is_write=*/true);
    }
    if (is_write) {
      const bool through =
          level.config().write_policy == WritePolicy::kWriteThrough;
      const bool bypass =
          !result.hit && !result.filled;  // no-write-allocate miss
      if (through || bypass) {
        // Forward only the bytes of this access that land in this line.
        const std::uint64_t begin = std::max(addr, la);
        const std::uint64_t end = std::min(addr + size, la + line);
        const std::uint64_t chunk = end - begin;
        boundary_[level_index + 1].bytes_from_cpu += chunk;
        access(level_index + 1, begin, chunk, /*is_write=*/true);
      }
    }
  };

  if (!descending) {
    for (std::uint64_t la = first; la <= last; la += line) touch(la);
  } else {
    // A stride -1 stream touches its lines high-to-low; walking the run
    // the same way keeps fills, evictions and LRU order element-exact.
    // Sub-accesses (fills, writebacks, forwarded chunks) each cover at
    // most one line of the next level, so they need no direction.
    for (std::uint64_t la = last;; la -= line) {
      touch(la);
      if (la == first) break;
    }
  }
}

void MemoryHierarchy::reset_stats() {
  for (auto& level : levels_) level.reset_stats();
  for (auto& b : boundary_) {
    b.bytes_toward_cpu = 0;
    b.bytes_from_cpu = 0;
  }
  loads_ = stores_ = 0;
}

void MemoryHierarchy::reset() {
  reset_stats();
  for (auto& level : levels_) level.reset();
}

bool MemoryHierarchy::translation_invariant() const {
  for (const auto& level : levels_)
    if (!level.modulo_indexed()) return false;
  return true;
}

std::uint64_t MemoryHierarchy::max_line_bytes() const {
  std::uint64_t line = 1;
  for (const auto& level : levels_)
    line = std::max(line, level.config().line_bytes);
  return line;
}

std::uint64_t MemoryHierarchy::total_capacity_bytes() const {
  std::uint64_t total = 0;
  for (const auto& level : levels_) total += level.config().size_bytes;
  return total;
}

void MemoryHierarchy::snapshot_counters(Counters* out) const {
  out->levels.resize(levels_.size());
  out->toward_cpu.resize(boundary_.size());
  out->from_cpu.resize(boundary_.size());
  for (std::size_t i = 0; i < levels_.size(); ++i)
    out->levels[i] = levels_[i].stats();
  for (std::size_t i = 0; i < boundary_.size(); ++i) {
    out->toward_cpu[i] = boundary_[i].bytes_toward_cpu;
    out->from_cpu[i] = boundary_[i].bytes_from_cpu;
  }
  out->loads = loads_;
  out->stores = stores_;
}

void MemoryHierarchy::subtract_counters(const Counters& a, const Counters& b,
                                        Counters* out) {
  out->levels.resize(a.levels.size());
  out->toward_cpu.resize(a.toward_cpu.size());
  out->from_cpu.resize(a.from_cpu.size());
  for (std::size_t i = 0; i < a.levels.size(); ++i) {
    const CacheLevelStats& x = a.levels[i];
    const CacheLevelStats& y = b.levels[i];
    out->levels[i] = {x.read_hits - y.read_hits,
                      x.read_misses - y.read_misses,
                      x.write_hits - y.write_hits,
                      x.write_misses - y.write_misses,
                      x.writebacks - y.writebacks,
                      x.evictions - y.evictions};
  }
  for (std::size_t i = 0; i < a.toward_cpu.size(); ++i) {
    out->toward_cpu[i] = a.toward_cpu[i] - b.toward_cpu[i];
    out->from_cpu[i] = a.from_cpu[i] - b.from_cpu[i];
  }
  out->loads = a.loads - b.loads;
  out->stores = a.stores - b.stores;
}

void MemoryHierarchy::apply_counters_scaled(const Counters& delta,
                                            std::uint64_t times) {
  for (std::size_t i = 0; i < levels_.size(); ++i)
    levels_[i].add_stats_scaled(delta.levels[i], times);
  for (std::size_t i = 0; i < boundary_.size(); ++i) {
    boundary_[i].bytes_toward_cpu += delta.toward_cpu[i] * times;
    boundary_[i].bytes_from_cpu += delta.from_cpu[i] * times;
  }
  loads_ += delta.loads * times;
  stores_ += delta.stores * times;
}

void MemoryHierarchy::snapshot_state(ResidentState* out) const {
  out->levels.resize(levels_.size());
  for (std::size_t i = 0; i < levels_.size(); ++i)
    levels_[i].snapshot_state(&out->levels[i]);
}

bool MemoryHierarchy::state_equals_shifted(const ResidentState& snap,
                                           std::int64_t shift_bytes) const {
  for (std::size_t i = 0; i < levels_.size(); ++i) {
    const auto line =
        static_cast<std::int64_t>(levels_[i].config().line_bytes);
    BWC_ASSERT(shift_bytes % line == 0,
               "state shift must be line-granular at every level");
    if (!levels_[i].state_equals_shifted(snap.levels[i], shift_bytes / line))
      return false;
  }
  return true;
}

void MemoryHierarchy::shift_state(std::int64_t shift_bytes) {
  for (auto& level : levels_) {
    const auto line = static_cast<std::int64_t>(level.config().line_bytes);
    BWC_ASSERT(shift_bytes % line == 0,
               "state shift must be line-granular at every level");
    level.shift_state(shift_bytes / line);
  }
}

void MemoryHierarchy::discard_dirty_range(std::uint64_t addr,
                                          std::uint64_t size) {
  BWC_CHECK(size > 0, "range size must be positive");
  for (auto& level : levels_) {
    const std::uint64_t line = level.config().line_bytes;
    const std::uint64_t first = addr / line * line;
    const std::uint64_t last = (addr + size - 1) / line * line;
    for (std::uint64_t la = first; la <= last; la += line)
      level.invalidate(la);
  }
}

std::string describe(const MemoryHierarchy& h) {
  std::ostringstream os;
  for (std::size_t i = 0; i < h.level_count(); ++i) {
    const auto& c = h.level(i).config();
    const auto& s = h.level(i).stats();
    os << c.name << " (" << c.size_bytes / 1024 << " KB, " << c.line_bytes
       << "B lines, "
       << (c.associativity == 0 ? std::string("full")
                                : std::to_string(c.associativity) + "-way")
       << "): accesses=" << s.accesses() << " misses=" << s.misses()
       << " writebacks=" << s.writebacks << "\n";
  }
  for (const auto& b : h.boundaries()) {
    os << b.name << ": toward-cpu=" << b.bytes_toward_cpu
       << "B from-cpu=" << b.bytes_from_cpu << "B total=" << b.total()
       << "B\n";
  }
  return os.str();
}

}  // namespace bwc::memsim
