#include "bwc/memsim/fastforward.h"

#include <numeric>

#include "bwc/support/error.h"

namespace bwc::memsim {

namespace {

// Detection knobs. The window must hold two occurrences of the longest
// period considered; adoption attempts are spaced so the O(period^2) scan
// amortizes to a few ops per access. Streams that keep defeating
// verification get a bounded number of chances before the detector turns
// itself off and the stream pays nothing but one branch per access.
constexpr std::size_t kMaxPeriod = 32;
constexpr std::size_t kWindow = 2 * kMaxPeriod;  // power of two (ring mask)
constexpr std::uint64_t kAttemptInterval = 128;
constexpr int kMaxFailedAdoptions = 8;
constexpr std::int64_t kStateRetrySlack = 64;
// State snapshots/comparisons are O(resident lines); during a capacity-
// long drain they back off exponentially (super-periods 1, 2, 4, ...
// apart, capped) while the counter delta stays stable, bounding total
// state work to O(resident * log(drain)).
constexpr std::int64_t kMaxStateCheckGap = 256;
// A super-period's access span is buffered while skipping (the partial
// tail must be replayable); refuse hypotheses that would buffer more.
constexpr std::size_t kMaxSuperPeriodAccesses = 4096;

}  // namespace

AccessFastForward::AccessFastForward(MemoryHierarchy* hierarchy)
    : hierarchy_(hierarchy), attempt_countdown_(kWindow) {
  BWC_CHECK(hierarchy_ != nullptr && hierarchy_->translation_invariant(),
            "online fast-forward requires a translation-invariant hierarchy");
  history_.resize(kWindow);
}

void AccessFastForward::forward(const Access& a) {
  if (a.is_store) {
    hierarchy_->store(a.addr, a.size);
  } else {
    hierarchy_->load(a.addr, a.size);
  }
}

bool AccessFastForward::matches_expected(const Access& a) const {
  const Access& p = pattern_[pos_];
  return a.is_store == p.is_store && a.size == p.size &&
         a.addr == p.addr + static_cast<std::uint64_t>(
                                shift_ * static_cast<std::int64_t>(rep_));
}

void AccessFastForward::access(bool is_store, std::uint64_t addr,
                               std::uint64_t size) {
  const Access a{addr, static_cast<std::uint32_t>(size), is_store};
  switch (mode_) {
    case Mode::kOff:
      forward(a);
      return;
    case Mode::kCollect:
      collect(a);
      return;
    case Mode::kVerify:
      if (!matches_expected(a)) {
        fail_adoption();
        if (mode_ == Mode::kOff) {
          forward(a);
        } else {
          collect(a);
        }
        return;
      }
      forward(a);
      if (++pos_ == pattern_.size()) {
        pos_ = 0;
        ++rep_;
        if (++rep_in_sp_ == sp_reps_) {
          rep_in_sp_ = 0;
          on_super_period();
        }
      }
      return;
    case Mode::kSkip:
      if (!matches_expected(a)) {
        settle();  // returns to kCollect
        collect(a);
        return;
      }
      ++skipped_accesses_;
      partial_.push_back(a);
      if (++pos_ == pattern_.size()) {
        pos_ = 0;
        ++rep_;
        if (++rep_in_sp_ == sp_reps_) {
          rep_in_sp_ = 0;
          ++skipped_sps_;
          partial_.clear();
        }
      }
      return;
  }
}

void AccessFastForward::collect(const Access& a) {
  forward(a);
  history_[history_head_] = a;
  history_head_ = (history_head_ + 1) & (kWindow - 1);
  if (history_count_ < kWindow) ++history_count_;
  if (--attempt_countdown_ == 0) {
    try_adopt();
    if (mode_ == Mode::kCollect) attempt_countdown_ = kAttemptInterval;
  }
}

void AccessFastForward::try_adopt() {
  // `back(k)` is the k-th most recent access.
  const auto back = [&](std::size_t k) -> const Access& {
    return history_[(history_head_ + kWindow - 1 - k) & (kWindow - 1)];
  };
  for (std::size_t p = 1; 2 * p <= history_count_ && p <= kMaxPeriod; ++p) {
    const std::int64_t delta = static_cast<std::int64_t>(back(0).addr) -
                               static_cast<std::int64_t>(back(p).addr);
    if (delta == 0) continue;
    bool ok = true;
    for (std::size_t j = 0; j < p && ok; ++j) {
      const Access& x = back(j);
      const Access& y = back(j + p);
      ok = x.is_store == y.is_store && x.size == y.size &&
           static_cast<std::int64_t>(x.addr) -
                   static_cast<std::int64_t>(y.addr) ==
               delta;
    }
    if (!ok) continue;

    const std::uint64_t line = hierarchy_->max_line_bytes();
    const std::uint64_t mag =
        static_cast<std::uint64_t>(delta < 0 ? -delta : delta);
    const std::uint64_t reps = line / std::gcd(mag, line);
    if (reps * p > kMaxSuperPeriodAccesses) continue;

    pattern_.assign(p, Access{});
    for (std::size_t j = 0; j < p; ++j) pattern_[p - 1 - j] = back(j);
    shift_ = delta;
    sp_reps_ = reps;
    sp_shift_ = delta * static_cast<std::int64_t>(reps);
    pos_ = 0;
    rep_ = 1;
    rep_in_sp_ = 0;
    hierarchy_->snapshot_counters(&prev_counters_);
    have_last_delta_ = false;
    have_state_snap_ = false;
    state_retries_ = 0;
    state_check_gap_ = 1;
    state_check_wait_ = 0;
    // Patience for the cold fill: the state cannot be translation-
    // stationary until the stream has swept past every level's capacity.
    state_retry_budget_ =
        static_cast<std::int64_t>(
            2 * hierarchy_->total_capacity_bytes() /
            static_cast<std::uint64_t>(delta < 0 ? -sp_shift_ : sp_shift_)) +
        kStateRetrySlack;
    mode_ = Mode::kVerify;
    return;
  }
}

void AccessFastForward::on_super_period() {
  hierarchy_->snapshot_counters(&cur_counters_);
  MemoryHierarchy::subtract_counters(cur_counters_, prev_counters_, &delta_);
  std::swap(prev_counters_, cur_counters_);

  if (++state_retries_ > state_retry_budget_) {
    fail_adoption();
    return;
  }
  if (!have_last_delta_ || !(delta_ == last_delta_)) {
    // Delta changed: new traffic regime, restart the state protocol.
    std::swap(last_delta_, delta_);
    have_last_delta_ = true;
    have_state_snap_ = false;
    state_check_gap_ = 1;
    state_check_wait_ = 0;
    return;
  }
  // Delta stable (last_delta_ is the candidate per-super-period advance).
  if (have_state_snap_) {
    if (hierarchy_->state_equals_shifted(state_snap_, sp_shift_)) {
      mode_ = Mode::kSkip;
      skipped_sps_ = 0;
      partial_.clear();
      return;
    }
    // The traffic delta stabilizes while stale lines are still draining
    // out of the state; back off and retry at the next check point.
    have_state_snap_ = false;
    state_check_gap_ = std::min(2 * state_check_gap_, kMaxStateCheckGap);
    state_check_wait_ = state_check_gap_ - 1;
    return;
  }
  if (state_check_wait_ > 0) {
    --state_check_wait_;
    return;
  }
  hierarchy_->snapshot_state(&state_snap_);
  have_state_snap_ = true;
}

void AccessFastForward::fail_adoption() {
  pattern_.clear();
  have_last_delta_ = false;
  have_state_snap_ = false;
  if (++failed_adoptions_ >= kMaxFailedAdoptions) {
    mode_ = Mode::kOff;
    return;
  }
  mode_ = Mode::kCollect;
  history_count_ = 0;
  history_head_ = 0;
  attempt_countdown_ = kWindow;
}

void AccessFastForward::settle() {
  if (mode_ != Mode::kSkip) return;
  if (skipped_sps_ > 0) {
    hierarchy_->apply_counters_scaled(last_delta_, skipped_sps_);
    hierarchy_->shift_state(sp_shift_ *
                            static_cast<std::int64_t>(skipped_sps_));
  }
  // The absorbed tail past the last super-period boundary matched the
  // prediction but was never simulated; replay it against the translated
  // state, exactly where full simulation would have issued it.
  for (const Access& a : partial_) forward(a);
  partial_.clear();
  skipped_sps_ = 0;
  // Back to collection: the next access either re-establishes the same
  // pattern (a new phase of the stream) or the stream has moved on.
  pattern_.clear();
  mode_ = Mode::kCollect;
  history_count_ = 0;
  history_head_ = 0;
  attempt_countdown_ = kWindow;
}

}  // namespace bwc::memsim
