// One set-associative cache level with LRU replacement.
#pragma once

#include <cstdint>
#include <vector>

#include "bwc/memsim/cache_config.h"

namespace bwc::memsim {

/// A single cache level. Operates at line granularity; the hierarchy splits
/// byte ranges into line touches according to this level's geometry.
class CacheLevel {
 public:
  explicit CacheLevel(CacheConfig config);

  const CacheConfig& config() const { return config_; }
  const CacheLevelStats& stats() const { return stats_; }
  void reset_stats() { stats_ = {}; }
  /// Drop all cached lines (cold restart) in addition to the stats.
  void reset();

  struct AccessResult {
    bool hit = false;
    /// A line was installed by this access (miss with allocation).
    bool filled = false;
    /// A valid dirty line was evicted to make room; its address follows.
    bool evicted_dirty = false;
    std::uint64_t evicted_line_addr = 0;
  };

  /// Access one line. `line_addr` must be aligned to line_bytes.
  /// Write misses honor the allocate policy; under write-through, lines are
  /// never marked dirty (the hierarchy forwards the write downstream).
  AccessResult access(std::uint64_t line_addr, bool is_write);

  /// True when the line is currently resident.
  bool contains(std::uint64_t line_addr) const;

  /// Invalidate a line if present, reporting whether it was dirty.
  /// Used by store elimination's no-writeback hint ablation.
  bool invalidate(std::uint64_t line_addr);

  /// Number of currently valid lines (for footprint-style diagnostics).
  std::uint64_t valid_line_count() const;

 private:
  struct Line {
    std::uint64_t tag = 0;
    std::uint64_t last_used = 0;
    bool valid = false;
    bool dirty = false;
  };

  std::size_t set_index(std::uint64_t line_addr) const;
  // line_bytes is a validated power of two, so line arithmetic on the
  // per-access hot path is shifts and masks, never division.
  std::uint64_t tag_of(std::uint64_t line_addr) const {
    return line_addr >> line_shift_;
  }

  CacheConfig config_;
  CacheLevelStats stats_;
  std::vector<Line> lines_;  // sets_ * ways_ entries, set-major
  std::uint64_t sets_ = 0;
  std::uint64_t ways_ = 0;
  std::uint64_t tick_ = 0;
  std::uint32_t line_shift_ = 0;  // log2(config_.line_bytes)
};

}  // namespace bwc::memsim
