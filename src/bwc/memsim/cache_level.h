// One set-associative cache level with LRU replacement.
#pragma once

#include <cstdint>
#include <vector>

#include "bwc/memsim/cache_config.h"

namespace bwc::memsim {

/// A single cache level. Operates at line granularity; the hierarchy splits
/// byte ranges into line touches according to this level's geometry.
class CacheLevel {
 public:
  explicit CacheLevel(CacheConfig config);

  const CacheConfig& config() const { return config_; }
  const CacheLevelStats& stats() const { return stats_; }
  void reset_stats() { stats_ = {}; }
  /// Drop all cached lines (cold restart) in addition to the stats.
  void reset();

  struct AccessResult {
    bool hit = false;
    /// A line was installed by this access (miss with allocation).
    bool filled = false;
    /// A valid dirty line was evicted to make room; its address follows.
    bool evicted_dirty = false;
    std::uint64_t evicted_line_addr = 0;
  };

  /// Access one line. `line_addr` must be aligned to line_bytes.
  /// Write misses honor the allocate policy; under write-through, lines are
  /// never marked dirty (the hierarchy forwards the write downstream).
  AccessResult access(std::uint64_t line_addr, bool is_write);

  /// True when the line is currently resident.
  bool contains(std::uint64_t line_addr) const;

  /// Invalidate a line if present, reporting whether it was dirty.
  /// Used by store elimination's no-writeback hint ablation.
  bool invalidate(std::uint64_t line_addr);

  /// Number of currently valid lines (for footprint-style diagnostics).
  std::uint64_t valid_line_count() const;

  /// True when set selection is pure modulo indexing, i.e. set_index
  /// commutes with line-granular address shifts. Page randomization hashes
  /// the page number, which breaks that commutation -- such a level can
  /// never certify the fast-forward state translation.
  bool modulo_indexed() const { return config_.page_randomization_seed == 0; }

  /// Behavior-complete snapshot of the resident lines: per set, the valid
  /// ways ordered oldest-to-youngest by last use, each encoded as
  /// (tag << 1) | dirty. Two levels with equal snapshots respond
  /// identically to every future access stream -- which physical way holds
  /// a line (and the absolute last_used ticks) never reaches an observable,
  /// only the per-set LRU order does.
  struct ResidentState {
    std::vector<std::uint64_t> entries;    // (tag << 1) | dirty, LRU order
    std::vector<std::uint32_t> set_begin;  // sets_ + 1 offsets into entries
  };
  void snapshot_state(ResidentState* out) const;

  /// True when the current resident state equals `snap` translated by
  /// `delta_lines` line addresses: set s must hold snap's set
  /// (s - delta) mod sets with every tag shifted by +delta, same dirty
  /// bits, same LRU order. Meaningful only for modulo_indexed() levels.
  bool state_equals_shifted(const ResidentState& snap,
                            std::int64_t delta_lines) const;

  /// Translate the resident state by `delta_lines`: rotate whole sets and
  /// shift every valid tag, preserving per-set LRU order and dirty bits.
  /// This is the state full simulation of one more period would reach when
  /// state_equals_shifted held for the previous one.
  void shift_state(std::int64_t delta_lines);

  /// stats += delta * times: analytic extrapolation of `times` periods
  /// whose per-period stat delta is `delta`.
  void add_stats_scaled(const CacheLevelStats& delta, std::uint64_t times);

 private:
  struct Line {
    std::uint64_t tag = 0;
    std::uint64_t last_used = 0;
    bool valid = false;
    bool dirty = false;
  };

  std::size_t set_index(std::uint64_t line_addr) const;
  // line_bytes is a validated power of two, so line arithmetic on the
  // per-access hot path is shifts and masks, never division.
  std::uint64_t tag_of(std::uint64_t line_addr) const {
    return line_addr >> line_shift_;
  }

  CacheConfig config_;
  CacheLevelStats stats_;
  std::vector<Line> lines_;  // sets_ * ways_ entries, set-major
  std::uint64_t sets_ = 0;
  std::uint64_t ways_ = 0;
  std::uint64_t tick_ = 0;
  std::uint32_t line_shift_ = 0;  // log2(config_.line_bytes)
  // Hot-path geometry, precomputed once (sizes are validated powers of
  // two, so set selection is shifts and masks, never division).
  std::uint64_t set_mask_ = 0;            // sets_ - 1
  bool randomized_ = false;               // page_randomization_seed != 0
  std::uint32_t page_shift_ = 0;          // log2(page_bytes), randomized only
  std::uint64_t line_in_page_mask_ = 0;   // lines_per_page - 1
  std::uint64_t frame_mask_ = 0;          // sets_ / lines_per_page - 1
  bool frames_geometry_ = false;          // lines_per_page <= sets_
  // Streams hit the same page for many consecutive lines; caching the last
  // page's hash removes the splitmix64 from the randomized hot path.
  mutable std::uint64_t cached_page_ = ~std::uint64_t{0};
  mutable std::uint64_t cached_page_hash_ = 0;
};

}  // namespace bwc::memsim
