// Multi-level memory hierarchy simulator.
//
// Substitutes for the paper's hardware counters on the SGI Origin2000: it
// observes a program's exact access stream and reports the bytes moved
// across every adjacent pair of memory-hierarchy levels -- the quantities
// that define program balance (Section 2.2 of the paper).
//
// Boundary numbering: boundary 0 is registers<->L1 (every program access),
// boundary i is L(i)<->L(i+1), and the last boundary is last-cache<->memory.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "bwc/memsim/cache_level.h"

namespace bwc::memsim {

/// Traffic across one boundary between adjacent hierarchy levels.
struct BoundaryTraffic {
  std::string name;                 // e.g. "L1-Reg", "L2-L1", "Mem-L2"
  std::uint64_t bytes_toward_cpu = 0;   // fills / loads
  std::uint64_t bytes_from_cpu = 0;     // stores / writebacks
  std::uint64_t total() const { return bytes_toward_cpu + bytes_from_cpu; }
};

/// A CPU-side memory hierarchy fed by explicit load/store calls.
class MemoryHierarchy {
 public:
  /// Construct from outermost (L1) to innermost (last-level) cache configs.
  /// An empty vector models a cache-less machine (all traffic to memory).
  explicit MemoryHierarchy(std::vector<CacheConfig> configs);

  std::size_t level_count() const { return levels_.size(); }
  const CacheLevel& level(std::size_t i) const { return levels_[i]; }

  /// Issue a program load/store of `size` bytes at `addr`.
  void load(std::uint64_t addr, std::uint64_t size);
  void store(std::uint64_t addr, std::uint64_t size);

  /// Issue a coalesced run of `count` contiguous same-kind accesses
  /// covering [addr, addr+size) in one walk. Equivalent -- boundary bytes,
  /// fills, writebacks and load/store counts all included -- to issuing
  /// the `count` accesses individually in ascending address order (or
  /// descending order with `descending`, where the lines are walked
  /// high-to-low so fill/eviction/LRU order matches a stride -1 stream),
  /// but touches each cache line once instead of once per element.
  void load_run(std::uint64_t addr, std::uint64_t size, std::uint64_t count,
                bool descending = false);
  void store_run(std::uint64_t addr, std::uint64_t size, std::uint64_t count,
                 bool descending = false);

  /// Convenience for double-precision elements.
  void load_double(std::uint64_t addr) { load(addr, 8); }
  void store_double(std::uint64_t addr) { store(addr, 8); }

  /// Traffic across each boundary; index 0 is registers<->L1 and the last
  /// entry is last-level<->memory. Always level_count()+1 entries.
  const std::vector<BoundaryTraffic>& boundaries() const { return boundary_; }

  /// Bytes moved between the last cache level and memory (both directions).
  std::uint64_t memory_traffic_bytes() const {
    return boundary_.back().total();
  }
  /// Bytes moved between registers and L1 (i.e. total program access bytes).
  std::uint64_t register_traffic_bytes() const {
    return boundary_.front().total();
  }

  std::uint64_t load_count() const { return loads_; }
  std::uint64_t store_count() const { return stores_; }

  /// Clear counters but keep cache contents (for steady-state measurement).
  void reset_stats();
  /// Clear counters and drop all cached lines.
  void reset();

  /// Discard any dirty copies of [addr, addr+size) in all levels without
  /// writing them back. Models the writeback-suppression effect of store
  /// elimination at the hardware level (ablation aid; the compiler pass
  /// itself removes the stores from the program instead).
  void discard_dirty_range(std::uint64_t addr, std::uint64_t size);

  // -- Steady-state fast-forward support (see docs/runtime.md) ------------
  //
  // A periodic access stream shifts every address by a constant delta per
  // period. When set indexing is pure modulo everywhere, the cache is a
  // deterministic automaton that *commutes* with such shifts: if the
  // resident state after period k+1 equals the state after period k
  // translated by the shift, and the per-period counter deltas agree, then
  // every remaining period repeats that delta and translation exactly.
  // The replay engine uses the snapshots below to detect that fixpoint and
  // then advances counters and state analytically.

  /// True when every level uses modulo set indexing, so resident state
  /// translates exactly under line-granular address shifts. Page
  /// randomization (Exemplar) hashes page numbers into frame positions and
  /// breaks the commutation -- such a hierarchy refuses to fast-forward.
  bool translation_invariant() const;

  /// Largest line size over all levels (1 for a cache-less machine).
  /// Address shifts that are multiples of this are line-granular at every
  /// level at once.
  std::uint64_t max_line_bytes() const;

  /// Sum of all levels' capacities. A streaming access pattern only
  /// reaches a translation-stationary resident state once it has swept
  /// past every level's capacity (all sets full, evictions steady), so
  /// fast-forward detectors size their patience budgets by this.
  std::uint64_t total_capacity_bytes() const;

  /// The hierarchy's complete counter state: per-level stats, per-boundary
  /// bytes, and load/store counts. The delta between two snapshots
  /// fingerprints the traffic of the stream replayed in between.
  struct Counters {
    std::vector<CacheLevelStats> levels;
    std::vector<std::uint64_t> toward_cpu;  // per boundary
    std::vector<std::uint64_t> from_cpu;
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    friend bool operator==(const Counters&, const Counters&) = default;
  };
  void snapshot_counters(Counters* out) const;
  /// out = a - b, componentwise (a, b snapshots with a taken later).
  static void subtract_counters(const Counters& a, const Counters& b,
                                Counters* out);
  /// counters += delta * times: analytic advance of `times` periods.
  void apply_counters_scaled(const Counters& delta, std::uint64_t times);

  /// Resident tag/dirty/LRU state of every level (see CacheLevel).
  struct ResidentState {
    std::vector<CacheLevel::ResidentState> levels;
  };
  void snapshot_state(ResidentState* out) const;
  /// Current state == `snap` translated by `shift_bytes`? The shift must
  /// be a (signed) multiple of max_line_bytes() and the hierarchy
  /// translation_invariant().
  bool state_equals_shifted(const ResidentState& snap,
                            std::int64_t shift_bytes) const;
  /// Translate every level's resident state by `shift_bytes`.
  void shift_state(std::int64_t shift_bytes);

 private:
  void access(std::size_t level_index, std::uint64_t addr, std::uint64_t size,
              bool is_write, bool descending = false);

  std::vector<CacheLevel> levels_;
  std::vector<BoundaryTraffic> boundary_;
  std::uint64_t loads_ = 0;
  std::uint64_t stores_ = 0;
};

/// Pretty per-level summary (hits, misses, writebacks, boundary bytes).
std::string describe(const MemoryHierarchy& h);

}  // namespace bwc::memsim
