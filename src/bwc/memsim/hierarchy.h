// Multi-level memory hierarchy simulator.
//
// Substitutes for the paper's hardware counters on the SGI Origin2000: it
// observes a program's exact access stream and reports the bytes moved
// across every adjacent pair of memory-hierarchy levels -- the quantities
// that define program balance (Section 2.2 of the paper).
//
// Boundary numbering: boundary 0 is registers<->L1 (every program access),
// boundary i is L(i)<->L(i+1), and the last boundary is last-cache<->memory.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "bwc/memsim/cache_level.h"

namespace bwc::memsim {

/// Traffic across one boundary between adjacent hierarchy levels.
struct BoundaryTraffic {
  std::string name;                 // e.g. "L1-Reg", "L2-L1", "Mem-L2"
  std::uint64_t bytes_toward_cpu = 0;   // fills / loads
  std::uint64_t bytes_from_cpu = 0;     // stores / writebacks
  std::uint64_t total() const { return bytes_toward_cpu + bytes_from_cpu; }
};

/// A CPU-side memory hierarchy fed by explicit load/store calls.
class MemoryHierarchy {
 public:
  /// Construct from outermost (L1) to innermost (last-level) cache configs.
  /// An empty vector models a cache-less machine (all traffic to memory).
  explicit MemoryHierarchy(std::vector<CacheConfig> configs);

  std::size_t level_count() const { return levels_.size(); }
  const CacheLevel& level(std::size_t i) const { return levels_[i]; }

  /// Issue a program load/store of `size` bytes at `addr`.
  void load(std::uint64_t addr, std::uint64_t size);
  void store(std::uint64_t addr, std::uint64_t size);

  /// Issue a coalesced run of `count` contiguous same-kind accesses
  /// covering [addr, addr+size) in one walk. Equivalent -- boundary bytes,
  /// fills, writebacks and load/store counts all included -- to issuing
  /// the `count` accesses individually in ascending address order, but
  /// touches each cache line once instead of once per element.
  void load_run(std::uint64_t addr, std::uint64_t size, std::uint64_t count);
  void store_run(std::uint64_t addr, std::uint64_t size, std::uint64_t count);

  /// Convenience for double-precision elements.
  void load_double(std::uint64_t addr) { load(addr, 8); }
  void store_double(std::uint64_t addr) { store(addr, 8); }

  /// Traffic across each boundary; index 0 is registers<->L1 and the last
  /// entry is last-level<->memory. Always level_count()+1 entries.
  const std::vector<BoundaryTraffic>& boundaries() const { return boundary_; }

  /// Bytes moved between the last cache level and memory (both directions).
  std::uint64_t memory_traffic_bytes() const {
    return boundary_.back().total();
  }
  /// Bytes moved between registers and L1 (i.e. total program access bytes).
  std::uint64_t register_traffic_bytes() const {
    return boundary_.front().total();
  }

  std::uint64_t load_count() const { return loads_; }
  std::uint64_t store_count() const { return stores_; }

  /// Clear counters but keep cache contents (for steady-state measurement).
  void reset_stats();
  /// Clear counters and drop all cached lines.
  void reset();

  /// Discard any dirty copies of [addr, addr+size) in all levels without
  /// writing them back. Models the writeback-suppression effect of store
  /// elimination at the hardware level (ablation aid; the compiler pass
  /// itself removes the stores from the program instead).
  void discard_dirty_range(std::uint64_t addr, std::uint64_t size);

 private:
  void access(std::size_t level_index, std::uint64_t addr, std::uint64_t size,
              bool is_write);

  std::vector<CacheLevel> levels_;
  std::vector<BoundaryTraffic> boundary_;
  std::uint64_t loads_ = 0;
  std::uint64_t stores_ = 0;
};

/// Pretty per-level summary (hits, misses, writebacks, boundary bytes).
std::string describe(const MemoryHierarchy& h);

}  // namespace bwc::memsim
