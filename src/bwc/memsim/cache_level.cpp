#include "bwc/memsim/cache_level.h"

#include <algorithm>
#include <cstddef>

#include "bwc/support/error.h"
#include "bwc/support/prng.h"

namespace bwc::memsim {

namespace {
bool is_pow2(std::uint64_t x) { return x != 0 && (x & (x - 1)) == 0; }
}  // namespace

void CacheConfig::validate() const {
  BWC_CHECK(is_pow2(line_bytes), "line size must be a power of two");
  BWC_CHECK(is_pow2(size_bytes), "cache size must be a power of two");
  BWC_CHECK(size_bytes >= line_bytes, "cache must hold at least one line");
  const std::uint64_t lines = size_bytes / line_bytes;
  const std::uint64_t w = associativity == 0 ? lines : associativity;
  BWC_CHECK(w >= 1 && w <= lines, "associativity out of range");
  BWC_CHECK(lines % w == 0, "line count must be divisible by associativity");
  BWC_CHECK(is_pow2(lines / w), "set count must be a power of two");
  if (page_randomization_seed != 0) {
    BWC_CHECK(is_pow2(page_bytes) && page_bytes >= line_bytes,
              "page randomization needs a power-of-two page holding at "
              "least one line");
  }
}

CacheLevel::CacheLevel(CacheConfig config) : config_(std::move(config)) {
  config_.validate();
  sets_ = config_.num_sets();
  ways_ = config_.ways();
  while ((std::uint64_t{1} << line_shift_) < config_.line_bytes) ++line_shift_;
  lines_.assign(static_cast<std::size_t>(sets_ * ways_), Line{});
  set_mask_ = sets_ - 1;
  randomized_ = config_.page_randomization_seed != 0;
  if (randomized_) {
    while ((std::uint64_t{1} << page_shift_) < config_.page_bytes)
      ++page_shift_;
    const std::uint64_t lines_per_page =
        config_.page_bytes / config_.line_bytes;
    line_in_page_mask_ = lines_per_page - 1;
    frames_geometry_ = lines_per_page <= sets_;
    if (frames_geometry_) frame_mask_ = sets_ / lines_per_page - 1;
  }
}

void CacheLevel::reset() {
  reset_stats();
  lines_.assign(lines_.size(), Line{});
  tick_ = 0;
}

std::size_t CacheLevel::set_index(std::uint64_t line_addr) const {
  const std::uint64_t line_id = line_addr >> line_shift_;
  if (!randomized_) {
    return static_cast<std::size_t>(line_id & set_mask_);
  }
  // Random physical page placement: the page picks a pseudo-random frame
  // slot; lines keep their order within the page (spatial locality holds).
  // Geometry is power-of-two throughout (validated), so the page split and
  // frame pick are shifts and masks; the per-page hash is memoized because
  // streaming accesses stay in one page for many consecutive lines.
  const std::uint64_t page = line_addr >> page_shift_;
  if (page != cached_page_) {
    std::uint64_t state = page ^ config_.page_randomization_seed;
    cached_page_hash_ = splitmix64(state);
    cached_page_ = page;
  }
  const std::uint64_t hash = cached_page_hash_;
  const std::uint64_t line_in_page = line_id & line_in_page_mask_;
  if (frames_geometry_) {
    return static_cast<std::size_t>((hash & frame_mask_) *
                                        (line_in_page_mask_ + 1) +
                                    line_in_page);
  }
  // Degenerate geometry (page larger than the cache): hash per page but
  // keep distinct lines in distinct sets.
  return static_cast<std::size_t>((line_id ^ hash) & set_mask_);
}

CacheLevel::AccessResult CacheLevel::access(std::uint64_t line_addr,
                                            bool is_write) {
  BWC_ASSERT(line_addr % config_.line_bytes == 0,
             "line address must be line-aligned");
  const std::uint64_t tag = line_addr >> line_shift_;
  Line* const set =
      lines_.data() + set_index(line_addr) * static_cast<std::size_t>(ways_);
  const std::uint64_t now = ++tick_;

  AccessResult result;

  // One pass over the set finds the hit way and, failing that, the victim
  // (first invalid way if any, else LRU among the valid ways).
  Line* hit = nullptr;
  Line* invalid = nullptr;
  Line* lru = set;
  std::uint64_t oldest = ~std::uint64_t{0};
  for (std::size_t w = 0; w < ways_; ++w) {
    Line& line = set[w];
    if (!line.valid) {
      if (invalid == nullptr) invalid = &line;
      continue;
    }
    if (line.tag == tag) {
      hit = &line;
      break;
    }
    if (line.last_used < oldest) {
      oldest = line.last_used;
      lru = &line;
    }
  }

  if (hit != nullptr) {
    hit->last_used = now;
    if (is_write) {
      ++stats_.write_hits;
      if (config_.write_policy == WritePolicy::kWriteBack) hit->dirty = true;
    } else {
      ++stats_.read_hits;
    }
    result.hit = true;
    return result;
  }

  // Miss path.
  if (is_write) {
    ++stats_.write_misses;
    if (config_.allocate_policy == AllocatePolicy::kNoWriteAllocate) {
      return result;  // bypass: no fill, no eviction
    }
  } else {
    ++stats_.read_misses;
  }

  Line& line = invalid != nullptr ? *invalid : *lru;
  if (invalid == nullptr) {
    ++stats_.evictions;
    if (line.dirty) {
      ++stats_.writebacks;
      result.evicted_dirty = true;
      result.evicted_line_addr = line.tag << line_shift_;
    }
  }

  line.valid = true;
  line.tag = tag;
  line.last_used = now;
  line.dirty =
      is_write && config_.write_policy == WritePolicy::kWriteBack;
  result.filled = true;
  return result;
}

bool CacheLevel::contains(std::uint64_t line_addr) const {
  const std::uint64_t tag = tag_of(line_addr);
  const std::size_t base = set_index(line_addr) * static_cast<std::size_t>(ways_);
  for (std::size_t w = 0; w < ways_; ++w) {
    const Line& line = lines_[base + w];
    if (line.valid && line.tag == tag) return true;
  }
  return false;
}

bool CacheLevel::invalidate(std::uint64_t line_addr) {
  const std::uint64_t tag = tag_of(line_addr);
  const std::size_t base = set_index(line_addr) * static_cast<std::size_t>(ways_);
  for (std::size_t w = 0; w < ways_; ++w) {
    Line& line = lines_[base + w];
    if (line.valid && line.tag == tag) {
      const bool was_dirty = line.dirty;
      line = Line{};
      return was_dirty;
    }
  }
  return false;
}

std::uint64_t CacheLevel::valid_line_count() const {
  std::uint64_t count = 0;
  for (const Line& line : lines_)
    if (line.valid) ++count;
  return count;
}

// Ticks are unique (every access bumps the level-wide counter), so the
// oldest-to-youngest order within a set is total.
void CacheLevel::snapshot_state(ResidentState* out) const {
  out->entries.clear();
  out->set_begin.clear();
  out->set_begin.reserve(static_cast<std::size_t>(sets_) + 1);
  std::vector<const Line*> order;
  order.reserve(static_cast<std::size_t>(ways_));
  for (std::uint64_t s = 0; s < sets_; ++s) {
    out->set_begin.push_back(static_cast<std::uint32_t>(out->entries.size()));
    const Line* set = lines_.data() + s * ways_;
    order.clear();
    for (std::uint64_t w = 0; w < ways_; ++w)
      if (set[w].valid) order.push_back(&set[w]);
    std::sort(order.begin(), order.end(), [](const Line* a, const Line* b) {
      return a->last_used < b->last_used;
    });
    for (const Line* line : order)
      out->entries.push_back((line->tag << 1) |
                             static_cast<std::uint64_t>(line->dirty));
  }
  out->set_begin.push_back(static_cast<std::uint32_t>(out->entries.size()));
}

bool CacheLevel::state_equals_shifted(const ResidentState& snap,
                                      std::int64_t delta_lines) const {
  BWC_ASSERT(modulo_indexed(),
             "state translation requires modulo set indexing");
  const std::uint64_t delta = static_cast<std::uint64_t>(delta_lines);
  std::vector<const Line*> order;
  order.reserve(static_cast<std::size_t>(ways_));
  for (std::uint64_t s = 0; s < sets_; ++s) {
    // Set s's content must be snapshot set (s - delta) mod sets, shifted.
    const std::uint64_t src = (s - delta) & set_mask_;
    const std::uint32_t begin = snap.set_begin[static_cast<std::size_t>(src)];
    const std::uint32_t end = snap.set_begin[static_cast<std::size_t>(src) + 1];
    const Line* set = lines_.data() + s * ways_;
    order.clear();
    for (std::uint64_t w = 0; w < ways_; ++w)
      if (set[w].valid) order.push_back(&set[w]);
    if (order.size() != static_cast<std::size_t>(end - begin)) return false;
    std::sort(order.begin(), order.end(), [](const Line* a, const Line* b) {
      return a->last_used < b->last_used;
    });
    for (std::size_t k = 0; k < order.size(); ++k) {
      const std::uint64_t want = snap.entries[begin + k];
      const std::uint64_t have =
          (((want >> 1) + delta) << 1) | (want & 1);
      const std::uint64_t got = (order[k]->tag << 1) |
                                static_cast<std::uint64_t>(order[k]->dirty);
      if (got != have) return false;
    }
  }
  return true;
}

void CacheLevel::shift_state(std::int64_t delta_lines) {
  BWC_ASSERT(modulo_indexed(),
             "state translation requires modulo set indexing");
  const std::uint64_t delta = static_cast<std::uint64_t>(delta_lines);
  const std::uint64_t delta_sets = delta & set_mask_;
  if (delta_sets != 0) {
    // New set s takes old set (s - delta) mod sets: a right rotation of
    // the set-major line array by delta_sets whole sets.
    const auto pivot = static_cast<std::ptrdiff_t>((sets_ - delta_sets) *
                                                   ways_);
    std::rotate(lines_.begin(), lines_.begin() + pivot, lines_.end());
  }
  for (Line& line : lines_)
    if (line.valid) line.tag += delta;
}

void CacheLevel::add_stats_scaled(const CacheLevelStats& delta,
                                  std::uint64_t times) {
  stats_.read_hits += delta.read_hits * times;
  stats_.read_misses += delta.read_misses * times;
  stats_.write_hits += delta.write_hits * times;
  stats_.write_misses += delta.write_misses * times;
  stats_.writebacks += delta.writebacks * times;
  stats_.evictions += delta.evictions * times;
}

}  // namespace bwc::memsim
