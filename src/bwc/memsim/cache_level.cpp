#include "bwc/memsim/cache_level.h"

#include "bwc/support/error.h"
#include "bwc/support/prng.h"

namespace bwc::memsim {

namespace {
bool is_pow2(std::uint64_t x) { return x != 0 && (x & (x - 1)) == 0; }
}  // namespace

void CacheConfig::validate() const {
  BWC_CHECK(is_pow2(line_bytes), "line size must be a power of two");
  BWC_CHECK(is_pow2(size_bytes), "cache size must be a power of two");
  BWC_CHECK(size_bytes >= line_bytes, "cache must hold at least one line");
  const std::uint64_t lines = size_bytes / line_bytes;
  const std::uint64_t w = associativity == 0 ? lines : associativity;
  BWC_CHECK(w >= 1 && w <= lines, "associativity out of range");
  BWC_CHECK(lines % w == 0, "line count must be divisible by associativity");
  BWC_CHECK(is_pow2(lines / w), "set count must be a power of two");
}

CacheLevel::CacheLevel(CacheConfig config) : config_(std::move(config)) {
  config_.validate();
  sets_ = config_.num_sets();
  ways_ = config_.ways();
  while ((std::uint64_t{1} << line_shift_) < config_.line_bytes) ++line_shift_;
  lines_.assign(static_cast<std::size_t>(sets_ * ways_), Line{});
}

void CacheLevel::reset() {
  reset_stats();
  lines_.assign(lines_.size(), Line{});
  tick_ = 0;
}

std::size_t CacheLevel::set_index(std::uint64_t line_addr) const {
  const std::uint64_t line_id = line_addr >> line_shift_;
  if (config_.page_randomization_seed == 0) {
    return static_cast<std::size_t>(line_id & (sets_ - 1));
  }
  // Random physical page placement: the page picks a pseudo-random frame
  // slot; lines keep their order within the page (spatial locality holds).
  const std::uint64_t page = line_addr / config_.page_bytes;
  std::uint64_t state = page ^ config_.page_randomization_seed;
  const std::uint64_t hash = splitmix64(state);
  const std::uint64_t lines_per_page =
      config_.page_bytes / config_.line_bytes;
  const std::uint64_t line_in_page = line_id % lines_per_page;
  if (lines_per_page <= sets_ && sets_ % lines_per_page == 0) {
    const std::uint64_t frames = sets_ / lines_per_page;
    return static_cast<std::size_t>((hash % frames) * lines_per_page +
                                    line_in_page);
  }
  // Degenerate geometry (page larger than the cache): hash per page but
  // keep distinct lines in distinct sets.
  return static_cast<std::size_t>((line_id ^ hash) & (sets_ - 1));
}

CacheLevel::AccessResult CacheLevel::access(std::uint64_t line_addr,
                                            bool is_write) {
  BWC_ASSERT(line_addr % config_.line_bytes == 0,
             "line address must be line-aligned");
  const std::uint64_t tag = tag_of(line_addr);
  const std::size_t base = set_index(line_addr) * static_cast<std::size_t>(ways_);
  ++tick_;

  AccessResult result;

  // Hit path.
  for (std::size_t w = 0; w < ways_; ++w) {
    Line& line = lines_[base + w];
    if (line.valid && line.tag == tag) {
      line.last_used = tick_;
      if (is_write) {
        ++stats_.write_hits;
        if (config_.write_policy == WritePolicy::kWriteBack) line.dirty = true;
      } else {
        ++stats_.read_hits;
      }
      result.hit = true;
      return result;
    }
  }

  // Miss path.
  if (is_write) {
    ++stats_.write_misses;
    if (config_.allocate_policy == AllocatePolicy::kNoWriteAllocate) {
      return result;  // bypass: no fill, no eviction
    }
  } else {
    ++stats_.read_misses;
  }

  // Choose a victim: an invalid way if any, else the LRU way.
  std::size_t victim = 0;
  std::uint64_t oldest = ~std::uint64_t{0};
  bool found_invalid = false;
  for (std::size_t w = 0; w < ways_; ++w) {
    Line& line = lines_[base + w];
    if (!line.valid) {
      victim = w;
      found_invalid = true;
      break;
    }
    if (line.last_used < oldest) {
      oldest = line.last_used;
      victim = w;
    }
  }

  Line& line = lines_[base + victim];
  if (!found_invalid) {
    ++stats_.evictions;
    if (line.dirty) {
      ++stats_.writebacks;
      result.evicted_dirty = true;
      result.evicted_line_addr = line.tag << line_shift_;
    }
  }

  line.valid = true;
  line.tag = tag;
  line.last_used = tick_;
  line.dirty =
      is_write && config_.write_policy == WritePolicy::kWriteBack;
  result.filled = true;
  return result;
}

bool CacheLevel::contains(std::uint64_t line_addr) const {
  const std::uint64_t tag = tag_of(line_addr);
  const std::size_t base = set_index(line_addr) * static_cast<std::size_t>(ways_);
  for (std::size_t w = 0; w < ways_; ++w) {
    const Line& line = lines_[base + w];
    if (line.valid && line.tag == tag) return true;
  }
  return false;
}

bool CacheLevel::invalidate(std::uint64_t line_addr) {
  const std::uint64_t tag = tag_of(line_addr);
  const std::size_t base = set_index(line_addr) * static_cast<std::size_t>(ways_);
  for (std::size_t w = 0; w < ways_; ++w) {
    Line& line = lines_[base + w];
    if (line.valid && line.tag == tag) {
      const bool was_dirty = line.dirty;
      line = Line{};
      return was_dirty;
    }
  }
  return false;
}

std::uint64_t CacheLevel::valid_line_count() const {
  std::uint64_t count = 0;
  for (const Line& line : lines_)
    if (line.valid) ++count;
  return count;
}

}  // namespace bwc::memsim
