// Bandwidth-based performance prediction and tuning (the dissertation's
// "bandwidth-based performance tuning and prediction" component).
//
// Answers the planning questions the paper poses in Section 2.3:
//   "To fully utilize a processor of comparable speed ... a machine would
//    need 3.4 to 10.5 times of the 300 MB/s memory bandwidth ... 1.02 GB/s
//    to 3.15 GB/s" -- required_memory_bandwidth_mbps;
// and the per-application speedup a bandwidth upgrade would buy.
#pragma once

#include <string>
#include <vector>

#include "bwc/machine/machine_model.h"
#include "bwc/machine/timing.h"
#include "bwc/model/balance.h"

namespace bwc::model {

/// Memory bandwidth (MB/s) the machine would need for this program to be
/// able to reach full CPU utilization (all other resources unchanged).
double required_memory_bandwidth_mbps(const ProgramBalance& program,
                                      const machine::MachineModel& machine);

/// Predicted speedup from replacing the machine's memory bandwidth with
/// `new_mbps`, under the bandwidth-bound model (>= 1 when upgrading).
double speedup_from_memory_bandwidth(const machine::ExecutionProfile& profile,
                                     const machine::MachineModel& machine,
                                     double new_mbps);

/// A tuning report: per boundary, demand, supply, ratio, and whether
/// raising that boundary's bandwidth alone would speed the program up.
struct TuningAdvice {
  std::string boundary;
  double demand_bytes_per_flop = 0.0;
  double supply_bytes_per_flop = 0.0;
  double ratio = 0.0;
  bool binding = false;  // this boundary determines execution time
};

std::vector<TuningAdvice> tuning_report(
    const machine::ExecutionProfile& profile,
    const machine::MachineModel& machine);

/// Render the advice as a table.
std::string render_tuning_report(const std::vector<TuningAdvice>& advice);

}  // namespace bwc::model
