// Bandwidth-based performance prediction and tuning (the dissertation's
// "bandwidth-based performance tuning and prediction" component).
//
// Answers the planning questions the paper poses in Section 2.3:
//   "To fully utilize a processor of comparable speed ... a machine would
//    need 3.4 to 10.5 times of the 300 MB/s memory bandwidth ... 1.02 GB/s
//    to 3.15 GB/s" -- required_memory_bandwidth_mbps;
// and the per-application speedup a bandwidth upgrade would buy.
#pragma once

#include <string>
#include <vector>

#include "bwc/machine/machine_model.h"
#include "bwc/machine/timing.h"
#include "bwc/model/balance.h"

namespace bwc::model {

/// Memory bandwidth (MB/s) the machine would need for this program to be
/// able to reach full CPU utilization (all other resources unchanged).
double required_memory_bandwidth_mbps(const ProgramBalance& program,
                                      const machine::MachineModel& machine);

/// Predicted speedup from replacing the machine's memory bandwidth with
/// `new_mbps`, under the bandwidth-bound model (>= 1 when upgrading).
double speedup_from_memory_bandwidth(const machine::ExecutionProfile& profile,
                                     const machine::MachineModel& machine,
                                     double new_mbps);

/// A tuning report: per boundary, demand, supply, ratio, and whether
/// raising that boundary's bandwidth alone would speed the program up.
struct TuningAdvice {
  std::string boundary;
  double demand_bytes_per_flop = 0.0;
  double supply_bytes_per_flop = 0.0;
  double ratio = 0.0;
  bool binding = false;  // this boundary determines execution time
};

std::vector<TuningAdvice> tuning_report(
    const machine::ExecutionProfile& profile,
    const machine::MachineModel& machine);

/// Render the advice as a table.
std::string render_tuning_report(const std::vector<TuningAdvice>& advice);

// -- Multicore shared-bandwidth scaling (docs/MODEL.md section 7) ----------
//
// On a P-core machine the flop rate and the private cache boundaries
// scale with P while the memory bus is one shared resource, so
//   T(P) = max(T_scaling(1) / P, T_shared),
// where T_shared = max over shared boundaries of bytes/bandwidth. Speedup
// grows linearly until the shared bus binds and is flat afterwards; the
// knee is the saturation core count. Bandwidth optimization lowers
// T_shared, which both raises the plateau and *delays* the knee -- the
// fusion/store-elimination wins grow with core count.

/// One core count's predicted execution under the shared-bandwidth model.
struct ScalingPoint {
  int cores = 1;
  double seconds = 0.0;
  /// T(1) / T(cores).
  double speedup = 1.0;
  std::string binding_resource;
};

struct ScalingCurve {
  std::string name;
  std::vector<ScalingPoint> points;
  /// Smallest core count at which a shared boundary becomes the binding
  /// resource; 0 when no shared boundary ever binds (the curve never
  /// saturates within any core count).
  int saturation_cores = 0;
  /// Asymptotic speedup T(1) / T_shared; 0 when T_shared is 0.
  double plateau_speedup = 0.0;
};

/// Smallest core count at which the workload saturates a shared bus:
/// ceil(T_private(1) / T_shared), where T_private(1) is the larger of the
/// single-core compute time and every private boundary's transfer time.
/// Returns 0 if no shared boundary carries traffic (never saturates).
int saturation_core_count(const machine::ExecutionProfile& profile,
                          const machine::MachineModel& machine);

/// Evaluate the multicore timing model at 1..max_cores (the machine's own
/// core_count is overridden at each point) and locate the saturation knee.
ScalingCurve scaling_curve(const std::string& name,
                           const machine::ExecutionProfile& profile,
                           const machine::MachineModel& machine,
                           int max_cores);

/// Render a scaling curve as a table (cores, time, speedup, binding).
std::string render_scaling_curve(const ScalingCurve& curve);

}  // namespace bwc::model
