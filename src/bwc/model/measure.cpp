#include "bwc/model/measure.h"

#include <sstream>

#include "bwc/support/table.h"

namespace bwc::model {

Measurement measure(const ir::Program& program,
                    const machine::MachineModel& machine,
                    const MeasureOptions& options) {
  memsim::MemoryHierarchy hierarchy = machine.make_hierarchy();
  runtime::ExecOptions opts;
  opts.hierarchy = &hierarchy;
  // A multicore machine is replayed by the parallel executor at its core
  // count; traffic and checksums are bit-identical to serial (held by
  // tests/parallel_runtime_test.cpp), so this only exercises the engine
  // the machine model implies. The reference interpreter is serial-only.
  opts.cores =
      options.engine == ExecEngine::kCompiled ? machine.core_count : 1;
  opts.fast_forward = options.fast_forward;
  Measurement m;
  // Every figure/ablation that measures programs goes through here, so the
  // compiled engine is the default; the reference interpreter stays
  // selectable for debugging and differential checks.
  m.exec = options.engine == ExecEngine::kCompiled
               ? runtime::execute_compiled(program, opts)
               : runtime::execute(program, opts);
  m.profile = m.exec.profile;
  m.time = machine::predict_time(m.profile, machine);
  m.balance = ProgramBalance::from_profile(program.name(), m.profile);
  return m;
}

Measurement measure(const ir::Program& program,
                    const machine::MachineModel& machine, ExecEngine engine) {
  MeasureOptions options;
  options.engine = engine;
  return measure(program, machine, options);
}

std::vector<Measurement> measure_scaling(
    const ir::Program& program, const machine::MachineModel& machine,
    const std::vector<int>& core_counts, const MeasureOptions& options) {
  std::vector<Measurement> curve;
  curve.reserve(core_counts.size());
  for (int cores : core_counts)
    curve.push_back(measure(program, machine.with_cores(cores), options));
  return curve;
}

std::string summarize(const Measurement& m) {
  std::ostringstream os;
  os << m.balance.name << ": t=" << fmt_fixed(m.time.total_s * 1e3, 3)
     << " ms (bound: " << m.time.binding_resource
     << "), mem traffic=" << fmt_bytes(static_cast<double>(
                                 m.profile.memory_bytes()))
     << ", flops=" << m.profile.flops
     << ", checksum=" << m.exec.checksum;
  return os.str();
}

}  // namespace bwc::model
