#include "bwc/model/measure.h"

#include <sstream>

#include "bwc/support/table.h"

namespace bwc::model {

Measurement measure(const ir::Program& program,
                    const machine::MachineModel& machine,
                    const MeasureOptions& options) {
  memsim::MemoryHierarchy hierarchy = machine.make_hierarchy();
  runtime::ExecOptions opts;
  opts.hierarchy = &hierarchy;
  // A multicore machine is replayed by the parallel executor at its core
  // count; traffic and checksums are bit-identical to serial (held by
  // tests/parallel_runtime_test.cpp), so this only exercises the engine
  // the machine model implies. The reference interpreter is serial-only.
  opts.cores =
      options.engine == ExecEngine::kReference ? 1 : machine.core_count;
  opts.fast_forward = options.fast_forward;
  Measurement m;
  // Every figure/ablation that measures programs goes through here, so the
  // compiled engine is the default; the reference interpreter stays
  // selectable for debugging and differential checks, and the native
  // engine (host-compiled kernels, VM fallback) rides the same options.
  switch (options.engine) {
    case ExecEngine::kCompiled:
      m.exec = runtime::execute_compiled(program, opts);
      break;
    case ExecEngine::kNative:
      m.exec = runtime::execute_native(program, opts, options.native,
                                       options.native_report);
      break;
    case ExecEngine::kReference:
      m.exec = runtime::execute(program, opts);
      break;
  }
  m.profile = m.exec.profile;
  m.time = machine::predict_time(m.profile, machine);
  m.balance = ProgramBalance::from_profile(program.name(), m.profile);
  return m;
}

Measurement measure(const ir::Program& program,
                    const machine::MachineModel& machine, ExecEngine engine) {
  MeasureOptions options;
  options.engine = engine;
  return measure(program, machine, options);
}

std::vector<Measurement> measure_scaling(
    const ir::Program& program, const machine::MachineModel& machine,
    const std::vector<int>& core_counts, const MeasureOptions& options) {
  std::vector<Measurement> curve;
  curve.reserve(core_counts.size());
  for (int cores : core_counts)
    curve.push_back(measure(program, machine.with_cores(cores), options));
  return curve;
}

std::string summarize(const Measurement& m) {
  std::ostringstream os;
  os << m.balance.name << ": t=" << fmt_fixed(m.time.total_s * 1e3, 3)
     << " ms (bound: " << m.time.binding_resource
     << "), mem traffic=" << fmt_bytes(static_cast<double>(
                                 m.profile.memory_bytes()))
     << ", flops=" << m.profile.flops
     << ", checksum=" << m.exec.checksum;
  return os.str();
}

}  // namespace bwc::model
