// Measurement glue: run an IR program against a machine model's simulated
// hierarchy and report profile, predicted time and balance in one call.
#pragma once

#include <string>
#include <vector>

#include "bwc/ir/program.h"
#include "bwc/machine/machine_model.h"
#include "bwc/machine/timing.h"
#include "bwc/model/balance.h"
#include "bwc/runtime/codegen.h"
#include "bwc/runtime/compiled.h"

namespace bwc::model {

struct Measurement {
  runtime::ExecResult exec;
  machine::ExecutionProfile profile;
  machine::TimePrediction time;
  ProgramBalance balance;
};

/// Which replay engine performs the measurement. All are bit-identical
/// (held so by tests/compiled_runtime_test.cpp and tests/codegen_test.cpp);
/// the compiled bytecode VM is several times faster than the reference
/// interpreter and is the default everywhere. kNative compiles the
/// lowered program to host machine code (runtime/codegen.h) and falls
/// back to the VM when no host C compiler is available -- the fallback
/// reason lands in MeasureOptions::native_report.
enum class ExecEngine { kCompiled, kReference, kNative };

/// Knobs for measure(). `fast_forward` controls the compiled engines'
/// steady-state fast-forward (see runtime::ExecOptions::fast_forward);
/// measured profiles are bit-identical either way, so this is purely a
/// replay-speed / A-B-debugging toggle. The reference interpreter ignores
/// it. `native` configures the kNative engine's compile step (cache
/// directory, compiler override) and is ignored by the other engines;
/// `native_report`, when non-null, receives what the native engine
/// actually did (including the VM-fallback warning).
struct MeasureOptions {
  ExecEngine engine = ExecEngine::kCompiled;
  bool fast_forward = true;
  runtime::NativeOptions native;
  runtime::NativeReport* native_report = nullptr;
};

/// Execute `program` on the machine's simulated hierarchy (caches start
/// cold) and evaluate the bandwidth-bound timing model. A machine with
/// core_count > 1 is measured with the parallel compiled engine at that
/// core count (traffic is bit-identical to serial by construction) and
/// timed under the multicore shared-bandwidth model.
Measurement measure(const ir::Program& program,
                    const machine::MachineModel& machine,
                    const MeasureOptions& options);
Measurement measure(const ir::Program& program,
                    const machine::MachineModel& machine,
                    ExecEngine engine = ExecEngine::kCompiled);

/// Measured scaling curve: run the parallel engine at each core count in
/// `core_counts` (machine.core_count is overridden per point) and
/// evaluate the multicore timing model on each measured profile. One
/// Measurement per core count, in the given order.
std::vector<Measurement> measure_scaling(const ir::Program& program,
                                         const machine::MachineModel& machine,
                                         const std::vector<int>& core_counts,
                                         const MeasureOptions& options = {});

/// One-line summary: predicted time, binding resource, memory traffic.
std::string summarize(const Measurement& m);

}  // namespace bwc::model
