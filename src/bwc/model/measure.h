// Measurement glue: run an IR program against a machine model's simulated
// hierarchy and report profile, predicted time and balance in one call.
#pragma once

#include <string>
#include <vector>

#include "bwc/ir/program.h"
#include "bwc/machine/machine_model.h"
#include "bwc/machine/timing.h"
#include "bwc/model/balance.h"
#include "bwc/runtime/compiled.h"

namespace bwc::model {

struct Measurement {
  runtime::ExecResult exec;
  machine::ExecutionProfile profile;
  machine::TimePrediction time;
  ProgramBalance balance;
};

/// Which replay engine performs the measurement. Both are bit-identical
/// (held so by tests/compiled_runtime_test.cpp); the compiled engine is
/// several times faster and is the default everywhere. The reference
/// interpreter remains selectable for debugging and A/B checks.
enum class ExecEngine { kCompiled, kReference };

/// Knobs for measure(). `fast_forward` controls the compiled engine's
/// steady-state fast-forward (see runtime::ExecOptions::fast_forward);
/// measured profiles are bit-identical either way, so this is purely a
/// replay-speed / A-B-debugging toggle. The reference interpreter ignores
/// it.
struct MeasureOptions {
  ExecEngine engine = ExecEngine::kCompiled;
  bool fast_forward = true;
};

/// Execute `program` on the machine's simulated hierarchy (caches start
/// cold) and evaluate the bandwidth-bound timing model. A machine with
/// core_count > 1 is measured with the parallel compiled engine at that
/// core count (traffic is bit-identical to serial by construction) and
/// timed under the multicore shared-bandwidth model.
Measurement measure(const ir::Program& program,
                    const machine::MachineModel& machine,
                    const MeasureOptions& options);
Measurement measure(const ir::Program& program,
                    const machine::MachineModel& machine,
                    ExecEngine engine = ExecEngine::kCompiled);

/// Measured scaling curve: run the parallel engine at each core count in
/// `core_counts` (machine.core_count is overridden per point) and
/// evaluate the multicore timing model on each measured profile. One
/// Measurement per core count, in the given order.
std::vector<Measurement> measure_scaling(const ir::Program& program,
                                         const machine::MachineModel& machine,
                                         const std::vector<int>& core_counts,
                                         const MeasureOptions& options = {});

/// One-line summary: predicted time, binding resource, memory traffic.
std::string summarize(const Measurement& m);

}  // namespace bwc::model
