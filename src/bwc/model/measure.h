// Measurement glue: run an IR program against a machine model's simulated
// hierarchy and report profile, predicted time and balance in one call.
#pragma once

#include <string>

#include "bwc/ir/program.h"
#include "bwc/machine/machine_model.h"
#include "bwc/machine/timing.h"
#include "bwc/model/balance.h"
#include "bwc/runtime/interpreter.h"

namespace bwc::model {

struct Measurement {
  runtime::ExecResult exec;
  machine::ExecutionProfile profile;
  machine::TimePrediction time;
  ProgramBalance balance;
};

/// Execute `program` on the machine's simulated hierarchy (caches start
/// cold) and evaluate the bandwidth-bound timing model.
Measurement measure(const ir::Program& program,
                    const machine::MachineModel& machine);

/// One-line summary: predicted time, binding resource, memory traffic.
std::string summarize(const Measurement& m);

}  // namespace bwc::model
