#include "bwc/model/balance.h"

#include <algorithm>

#include "bwc/support/error.h"
#include "bwc/support/table.h"

namespace bwc::model {

ProgramBalance ProgramBalance::from_profile(
    std::string name, const machine::ExecutionProfile& p) {
  BWC_CHECK(p.flops > 0, "program executed no flops; balance undefined");
  ProgramBalance b;
  b.name = std::move(name);
  b.bytes_per_flop.reserve(p.boundaries.size());
  for (const auto& boundary : p.boundaries) {
    b.bytes_per_flop.push_back(static_cast<double>(boundary.total()) /
                               static_cast<double>(p.flops));
  }
  return b;
}

std::vector<double> demand_supply_ratios(
    const ProgramBalance& program, const machine::MachineModel& machine) {
  const std::vector<double> supply = machine.machine_balance();
  BWC_CHECK(program.bytes_per_flop.size() == supply.size(),
            "program and machine have different hierarchy depths");
  std::vector<double> ratios;
  ratios.reserve(supply.size());
  for (std::size_t i = 0; i < supply.size(); ++i)
    ratios.push_back(program.bytes_per_flop[i] / supply[i]);
  return ratios;
}

double cpu_utilization_bound(const std::vector<double>& ratios) {
  BWC_CHECK(!ratios.empty(), "no ratios");
  const double worst = *std::max_element(ratios.begin(), ratios.end());
  return worst <= 1.0 ? 1.0 : 1.0 / worst;
}

namespace {

std::vector<std::string> boundary_names(const machine::MachineModel& m) {
  // Mirror MemoryHierarchy's naming: "L1-Reg", "L2-L1", ..., "Mem-Lk".
  std::vector<std::string> names;
  if (m.caches.empty()) {
    names.push_back("Mem-Reg");
    return names;
  }
  names.push_back(m.caches.front().name + "-Reg");
  for (std::size_t i = 1; i < m.caches.size(); ++i)
    names.push_back(m.caches[i].name + "-" + m.caches[i - 1].name);
  names.push_back("Mem-" + m.caches.back().name);
  return names;
}

}  // namespace

std::string render_balance_table(const std::vector<ProgramBalance>& programs,
                                 const machine::MachineModel& machine) {
  TextTable t("Program and machine balance (bytes per flop)");
  std::vector<std::string> header = {"Program/machine"};
  for (const auto& n : boundary_names(machine)) header.push_back(n);
  t.set_header(header);
  for (const auto& p : programs) {
    std::vector<std::string> row = {p.name};
    for (double b : p.bytes_per_flop) row.push_back(fmt_fixed(b, 2));
    t.add_row(row);
  }
  t.add_rule();
  std::vector<std::string> machine_row = {machine.name};
  for (double b : machine.machine_balance())
    machine_row.push_back(fmt_fixed(b, 2));
  t.add_row(machine_row);
  return t.render();
}

std::string render_ratio_table(const std::vector<ProgramBalance>& programs,
                               const machine::MachineModel& machine) {
  TextTable t("Ratios of demand to supply (on " + machine.name + ")");
  std::vector<std::string> header = {"Application"};
  for (const auto& n : boundary_names(machine)) header.push_back(n);
  header.push_back("max CPU util");
  t.set_header(header);
  for (const auto& p : programs) {
    const auto ratios = demand_supply_ratios(p, machine);
    std::vector<std::string> row = {p.name};
    for (double r : ratios) row.push_back(fmt_fixed(r, 1));
    row.push_back(fmt_fixed(cpu_utilization_bound(ratios) * 100.0, 1) + "%");
    t.add_row(row);
  }
  return t.render();
}

}  // namespace bwc::model
