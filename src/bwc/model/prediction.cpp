#include "bwc/model/prediction.h"

#include <algorithm>
#include <cmath>

#include "bwc/support/error.h"
#include "bwc/support/table.h"

namespace bwc::model {

double required_memory_bandwidth_mbps(const ProgramBalance& program,
                                      const machine::MachineModel& machine) {
  const auto ratios = demand_supply_ratios(program, machine);
  BWC_CHECK(!ratios.empty(), "no hierarchy boundaries");
  const double mem_ratio = ratios.back();
  return machine.memory_bandwidth_mbps() * std::max(1.0, mem_ratio);
}

double speedup_from_memory_bandwidth(const machine::ExecutionProfile& profile,
                                     const machine::MachineModel& machine,
                                     double new_mbps) {
  BWC_CHECK(new_mbps > 0.0, "bandwidth must be positive");
  const double before = machine::predict_time(profile, machine).total_s;
  machine::MachineModel upgraded = machine;
  upgraded.boundary_bandwidth_mbps.back() = new_mbps;
  const double after = machine::predict_time(profile, upgraded).total_s;
  return before / after;
}

std::vector<TuningAdvice> tuning_report(
    const machine::ExecutionProfile& profile,
    const machine::MachineModel& machine) {
  const auto balance = ProgramBalance::from_profile("program", profile);
  const auto supply = machine.machine_balance();
  const auto time = machine::predict_time(profile, machine);

  std::vector<TuningAdvice> advice;
  for (std::size_t b = 0; b < supply.size(); ++b) {
    TuningAdvice a;
    a.boundary = profile.boundaries[b].name;
    a.demand_bytes_per_flop = balance.bytes_per_flop[b];
    a.supply_bytes_per_flop = supply[b];
    a.ratio = a.demand_bytes_per_flop / a.supply_bytes_per_flop;
    a.binding = time.binding_resource == a.boundary;
    advice.push_back(a);
  }
  return advice;
}

int saturation_core_count(const machine::ExecutionProfile& profile,
                          const machine::MachineModel& machine) {
  machine.validate();
  BWC_CHECK(profile.boundaries.size() ==
                machine.boundary_bandwidth_mbps.size(),
            "profile boundaries must match machine hierarchy depth");
  const double mega = 1e6;
  double shared_s = 0.0;   // per-run, core-count independent
  double private_s = 0.0;  // per-run at one core, scales as 1/P
  private_s = static_cast<double>(profile.flops) /
              (machine.peak_mflops * mega);
  for (std::size_t b = 0; b < profile.boundaries.size(); ++b) {
    const double s = static_cast<double>(profile.boundaries[b].total()) /
                     (machine.boundary_bandwidth_mbps[b] * mega);
    if (machine.is_shared(b)) {
      shared_s = std::max(shared_s, s);
    } else {
      private_s = std::max(private_s, s);
    }
  }
  if (shared_s <= 0.0) return 0;
  return static_cast<int>(std::max(1.0, std::ceil(private_s / shared_s)));
}

ScalingCurve scaling_curve(const std::string& name,
                           const machine::ExecutionProfile& profile,
                           const machine::MachineModel& machine,
                           int max_cores) {
  BWC_CHECK(max_cores >= 1, "need at least one core");
  ScalingCurve curve;
  curve.name = name;
  curve.saturation_cores = saturation_core_count(profile, machine);
  const double t1 =
      machine::predict_time(profile, machine.with_cores(1)).total_s;
  for (int p = 1; p <= max_cores; ++p) {
    const machine::TimePrediction t =
        machine::predict_time(profile, machine.with_cores(p));
    ScalingPoint point;
    point.cores = p;
    point.seconds = t.total_s;
    point.speedup = t.total_s > 0.0 ? t1 / t.total_s : 1.0;
    point.binding_resource = t.binding_resource;
    curve.points.push_back(point);
  }
  // Plateau: the shared-bus time alone (infinite cores).
  double shared_s = 0.0;
  for (std::size_t b = 0; b < profile.boundaries.size(); ++b) {
    if (!machine.is_shared(b)) continue;
    shared_s = std::max(
        shared_s, static_cast<double>(profile.boundaries[b].total()) /
                      (machine.boundary_bandwidth_mbps[b] * 1e6));
  }
  curve.plateau_speedup =
      shared_s > 0.0 ? t1 / (shared_s + machine.startup_overhead_s) : 0.0;
  return curve;
}

std::string render_scaling_curve(const ScalingCurve& curve) {
  TextTable t("Scaling of " + curve.name +
              (curve.saturation_cores > 0
                   ? " (bus saturates at " +
                         std::to_string(curve.saturation_cores) + " cores)"
                   : " (never bus-bound)"));
  t.set_header({"cores", "predicted ms", "speedup", "binding"});
  for (const auto& p : curve.points) {
    t.add_row({std::to_string(p.cores), fmt_fixed(p.seconds * 1e3, 3),
               fmt_fixed(p.speedup, 2), p.binding_resource});
  }
  return t.render();
}

std::string render_tuning_report(const std::vector<TuningAdvice>& advice) {
  TextTable t("Bandwidth tuning report");
  t.set_header({"boundary", "demand B/flop", "supply B/flop", "ratio",
                "binding?"});
  for (const auto& a : advice) {
    t.add_row({a.boundary, fmt_fixed(a.demand_bytes_per_flop, 2),
               fmt_fixed(a.supply_bytes_per_flop, 2), fmt_fixed(a.ratio, 1),
               a.binding ? "<- yes" : ""});
  }
  return t.render();
}

}  // namespace bwc::model
