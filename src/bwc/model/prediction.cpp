#include "bwc/model/prediction.h"

#include <algorithm>

#include "bwc/support/error.h"
#include "bwc/support/table.h"

namespace bwc::model {

double required_memory_bandwidth_mbps(const ProgramBalance& program,
                                      const machine::MachineModel& machine) {
  const auto ratios = demand_supply_ratios(program, machine);
  BWC_CHECK(!ratios.empty(), "no hierarchy boundaries");
  const double mem_ratio = ratios.back();
  return machine.memory_bandwidth_mbps() * std::max(1.0, mem_ratio);
}

double speedup_from_memory_bandwidth(const machine::ExecutionProfile& profile,
                                     const machine::MachineModel& machine,
                                     double new_mbps) {
  BWC_CHECK(new_mbps > 0.0, "bandwidth must be positive");
  const double before = machine::predict_time(profile, machine).total_s;
  machine::MachineModel upgraded = machine;
  upgraded.boundary_bandwidth_mbps.back() = new_mbps;
  const double after = machine::predict_time(profile, upgraded).total_s;
  return before / after;
}

std::vector<TuningAdvice> tuning_report(
    const machine::ExecutionProfile& profile,
    const machine::MachineModel& machine) {
  const auto balance = ProgramBalance::from_profile("program", profile);
  const auto supply = machine.machine_balance();
  const auto time = machine::predict_time(profile, machine);

  std::vector<TuningAdvice> advice;
  for (std::size_t b = 0; b < supply.size(); ++b) {
    TuningAdvice a;
    a.boundary = profile.boundaries[b].name;
    a.demand_bytes_per_flop = balance.bytes_per_flop[b];
    a.supply_bytes_per_flop = supply[b];
    a.ratio = a.demand_bytes_per_flop / a.supply_bytes_per_flop;
    a.binding = time.binding_resource == a.boundary;
    advice.push_back(a);
  }
  return advice;
}

std::string render_tuning_report(const std::vector<TuningAdvice>& advice) {
  TextTable t("Bandwidth tuning report");
  t.set_header({"boundary", "demand B/flop", "supply B/flop", "ratio",
                "binding?"});
  for (const auto& a : advice) {
    t.add_row({a.boundary, fmt_fixed(a.demand_bytes_per_flop, 2),
               fmt_fixed(a.supply_bytes_per_flop, 2), fmt_fixed(a.ratio, 1),
               a.binding ? "<- yes" : ""});
  }
  return t.render();
}

}  // namespace bwc::model
