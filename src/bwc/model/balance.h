// The balance-based performance model (paper Section 2.2).
//
// Program balance: bytes transferred per flop at each memory-hierarchy
// boundary. Machine balance: bytes the machine can transfer per flop at
// peak. Their ratio bounds CPU utilization: a program demanding R times
// the machine's memory balance runs at most 1/R of peak.
#pragma once

#include <string>
#include <vector>

#include "bwc/machine/machine_model.h"
#include "bwc/machine/timing.h"

namespace bwc::model {

/// Bytes per flop at each boundary (registers<->L1 first, memory last).
struct ProgramBalance {
  std::string name;
  std::vector<double> bytes_per_flop;

  static ProgramBalance from_profile(std::string name,
                                     const machine::ExecutionProfile& p);
};

/// Demand / supply at each boundary: program balance over machine balance.
std::vector<double> demand_supply_ratios(const ProgramBalance& program,
                                         const machine::MachineModel& machine);

/// Upper bound on achievable CPU utilization = 1 / max ratio (clamped to 1).
double cpu_utilization_bound(const std::vector<double>& ratios);

/// The paper's Figure 1: program rows plus the machine balance row.
/// All balances must have the same number of boundaries as the machine.
std::string render_balance_table(const std::vector<ProgramBalance>& programs,
                                 const machine::MachineModel& machine);

/// The paper's Figure 2: demand/supply ratios plus the utilization bound.
std::string render_ratio_table(const std::vector<ProgramBalance>& programs,
                               const machine::MachineModel& machine);

}  // namespace bwc::model
