// Tests for the data-layout IR dimension: the ArrayLayout declaration
// surface (printer/parser round trip, addressing resolution), the
// layout-aware traffic estimator, the three layout passes
// (transpose-layout, regroup-arrays, pad-arrays) and their legality
// proof, the per-array PassReport breakdown, the lint-conflict-stride
// diagnostic, and -- the core contract -- a differential matrix holding
// every layout pipeline bit-identical across the reference interpreter,
// the bytecode VM and the native engine, at 1 and 4 cores, with
// steady-state fast-forward both on and off.
#include <gtest/gtest.h>
#include <unistd.h>

#include <string>
#include <vector>

#include "bwc/analysis/layout_traffic.h"
#include "bwc/core/optimizer.h"
#include "bwc/ir/parser.h"
#include "bwc/ir/printer.h"
#include "bwc/ir/program.h"
#include "bwc/memsim/cache_config.h"
#include "bwc/memsim/hierarchy.h"
#include "bwc/pass/report.h"
#include "bwc/runtime/codegen.h"
#include "bwc/runtime/compiled.h"
#include "bwc/runtime/interpreter.h"
#include "bwc/transform/layout.h"
#include "bwc/verify/static_legality.h"
#include "bwc/workloads/extra_programs.h"

namespace bwc {
namespace {

using ir::ArrayId;
using ir::Program;

/// Shared object cache: each transformed program compiles natively once,
/// later matrix points are pure dlopen reuses.
runtime::NativeOptions test_native_opts() {
  static const std::string dir = ::testing::TempDir() +
                                 "bwc-layout-test-cache." +
                                 std::to_string(::getpid());
  runtime::NativeOptions opts;
  opts.cache_dir = dir;
  return opts;
}

/// Observables a pure layout change must preserve. Addresses (and hence
/// traffic bytes and array bases) legitimately move; values and
/// operation counts must not.
void expect_same_semantics(const runtime::ExecResult& ref,
                           const runtime::ExecResult& got,
                           const std::string& label) {
  SCOPED_TRACE(label);
  EXPECT_EQ(ref.checksum, got.checksum);
  EXPECT_EQ(ref.flops, got.flops);
  EXPECT_EQ(ref.loads, got.loads);
  EXPECT_EQ(ref.stores, got.stores);
  EXPECT_EQ(ref.scalars, got.scalars);
}

/// Full bit-identity between two engines executing the *same* program:
/// everything down to per-boundary traffic and simulated bases matches.
void expect_identical(const runtime::ExecResult& ref,
                      const runtime::ExecResult& got,
                      const std::string& label) {
  SCOPED_TRACE(label);
  EXPECT_EQ(ref.checksum, got.checksum);
  EXPECT_EQ(ref.flops, got.flops);
  EXPECT_EQ(ref.loads, got.loads);
  EXPECT_EQ(ref.stores, got.stores);
  EXPECT_EQ(ref.scalars, got.scalars);
  EXPECT_EQ(ref.array_bases, got.array_bases);
  ASSERT_EQ(ref.profile.boundaries.size(), got.profile.boundaries.size());
  for (std::size_t b = 0; b < ref.profile.boundaries.size(); ++b) {
    SCOPED_TRACE("boundary " + ref.profile.boundaries[b].name);
    EXPECT_EQ(ref.profile.boundaries[b].bytes_toward_cpu,
              got.profile.boundaries[b].bytes_toward_cpu);
    EXPECT_EQ(ref.profile.boundaries[b].bytes_from_cpu,
              got.profile.boundaries[b].bytes_from_cpu);
  }
}

memsim::MemoryHierarchy default_hierarchy() {
  return memsim::MemoryHierarchy({memsim::CacheConfig{}});
}

/// The differential matrix: `transformed` (some layout pipeline's output)
/// must preserve `original`'s semantics on the reference interpreter and
/// then replay bit-identically on the VM and the native engine at cores
/// {1, 4} with fast-forward on and off.
void expect_layout_equivalent(const Program& original,
                              const Program& transformed) {
  memsim::MemoryHierarchy hbase = default_hierarchy();
  runtime::ExecOptions base_opts;
  base_opts.hierarchy = &hbase;
  const runtime::ExecResult base = runtime::execute(original, base_opts);

  memsim::MemoryHierarchy href = default_hierarchy();
  runtime::ExecOptions ref_opts;
  ref_opts.hierarchy = &href;
  const runtime::ExecResult ref = runtime::execute(transformed, ref_opts);
  expect_same_semantics(base, ref, transformed.name() + " [interpreter]");

  for (const bool fast_forward : {true, false}) {
    for (const int cores : {1, 4}) {
      const std::string tag = transformed.name() + " [cores=" +
                              std::to_string(cores) +
                              ", ff=" + std::to_string(fast_forward) + "]";
      memsim::MemoryHierarchy hvm = default_hierarchy();
      runtime::ExecOptions vm_opts;
      vm_opts.hierarchy = &hvm;
      vm_opts.cores = cores;
      vm_opts.fast_forward = fast_forward;
      const runtime::ExecResult vm =
          runtime::execute_compiled(transformed, vm_opts);
      expect_identical(ref, vm, tag + " [vm]");

      memsim::MemoryHierarchy hnat = default_hierarchy();
      runtime::ExecOptions nat_opts;
      nat_opts.hierarchy = &hnat;
      nat_opts.cores = cores;
      nat_opts.fast_forward = fast_forward;
      runtime::NativeReport report;
      const runtime::ExecResult nat = runtime::execute_native(
          transformed, nat_opts, test_native_opts(), &report);
      ASSERT_TRUE(report.native) << report.warning;
      expect_identical(ref, nat, tag + " [native]");
    }
  }
}

/// Run one layout pipeline (verification on) and push the result through
/// the engine matrix.
void expect_pipeline_equivalent(const Program& p, const std::string& passes) {
  core::OptimizerOptions opts;
  opts.passes = passes;
  const core::OptimizeResult result = core::optimize(p, opts);
  expect_layout_equivalent(p, result.program);
}

// --------------------------------------------------------------------
// Differential matrix: every layout pass alone and the full pipeline.
// --------------------------------------------------------------------

TEST(LayoutEngines, TransposeOnTransposedSweep) {
  expect_pipeline_equivalent(workloads::transposed_sweep(64),
                             "transpose-layout");
}

TEST(LayoutEngines, PadOnTransposedSweep) {
  // n = 512 makes the column stride exactly 4 KiB: the conflict the pad
  // pass exists to break.
  expect_pipeline_equivalent(workloads::transposed_sweep(512), "pad-arrays");
}

TEST(LayoutEngines, FullPipelineOnTransposedSweep) {
  expect_pipeline_equivalent(workloads::transposed_sweep(64),
                             "transpose-layout,regroup-arrays,pad-arrays");
}

TEST(LayoutEngines, RegroupOnConflictStreams) {
  expect_pipeline_equivalent(workloads::conflict_streams(2048, 3),
                             "regroup-arrays");
}

TEST(LayoutEngines, FullPipelineOnConflictStreams) {
  expect_pipeline_equivalent(workloads::conflict_streams(2048, 3),
                             "transpose-layout,regroup-arrays,pad-arrays");
}

TEST(LayoutEngines, FullPipelineAfterClassicPasses) {
  // The layout family composes with the paper's pipeline: fuse first,
  // then fix the survivors' layouts.
  expect_pipeline_equivalent(
      workloads::transposed_sweep(64),
      "fuse,transpose-layout,regroup-arrays,pad-arrays");
}

// --------------------------------------------------------------------
// ArrayLayout declaration surface: round trip and addressing.
// --------------------------------------------------------------------

void expect_round_trip(const Program& p) {
  SCOPED_TRACE(p.name());
  const std::string text = ir::to_string(p);
  const Program parsed = ir::parse_program(text);
  EXPECT_TRUE(ir::equal(p, parsed)) << text;
  // The layout annotation itself must be byte-stable under a second trip.
  EXPECT_EQ(text, ir::to_string(parsed));
}

TEST(LayoutRoundTrip, HandWrittenLayouts) {
  Program p = workloads::transposed_sweep(8);
  p.mutable_array(0).layout.order = {1, 0};
  p.mutable_array(0).layout.pad = {3, 0};
  expect_round_trip(p);

  Program q = workloads::conflict_streams(16, 3);
  for (int a = 0; a < q.array_count(); ++a) q.mutable_array(a).layout.group = 2;
  expect_round_trip(q);
}

TEST(LayoutRoundTrip, EveryOrderPadGroupCombination) {
  // Property sweep over the annotation space on a 2-D + 1-D program:
  // every combination of order permutation, pad vector and group id must
  // survive print -> parse -> print.
  for (const std::vector<int>& order :
       {std::vector<int>{}, std::vector<int>{0, 1}, std::vector<int>{1, 0}}) {
    for (const std::vector<std::int64_t>& pad :
         {std::vector<std::int64_t>{}, std::vector<std::int64_t>{1, 0},
          std::vector<std::int64_t>{5, 2}}) {
      Program p = workloads::transposed_sweep(8);
      p.mutable_array(0).layout.order = order;
      p.mutable_array(0).layout.pad = pad;
      expect_round_trip(p);
    }
  }
  for (const int group : {-1, 0, 7}) {
    Program p = workloads::conflict_streams(16, 2);
    p.mutable_array(0).layout.group = group;
    p.mutable_array(1).layout.group = group;
    expect_round_trip(p);
  }
}

TEST(LayoutRoundTrip, TransformOutputs) {
  expect_round_trip(
      transform::transpose_layouts(workloads::transposed_sweep(16)).program);
  expect_round_trip(
      transform::regroup_layouts(workloads::conflict_streams(64, 3)).program);
  expect_round_trip(
      transform::pad_layouts(workloads::transposed_sweep(512)).program);
}

TEST(LayoutAddressing, PaddedArrayScalesAllocationOnly) {
  Program p("t");
  const ArrayId a = p.add_array("a", {4, 4});
  p.mutable_array(a).layout.pad = {1, 0};
  const ir::ArrayDecl& decl = p.array(a);
  EXPECT_EQ(decl.padded_extent(0), 5);
  EXPECT_EQ(decl.padded_element_count(), 20);
  const ir::ArrayAddressing addr = ir::resolve_addressing(p, a);
  EXPECT_TRUE(addr.owns_allocation);
  EXPECT_EQ(addr.owner, a);
  EXPECT_EQ(addr.addr_scale, 8u);
  EXPECT_EQ(addr.member_offset, 0u);
  EXPECT_EQ(addr.alloc_bytes, 20u * 8u);
}

TEST(LayoutAddressing, GroupMembersShareOneAllocation) {
  Program p("t");
  const ArrayId a = p.add_array("a", {16});
  const ArrayId b = p.add_array("b", {16});
  p.mutable_array(a).layout.group = 0;
  p.mutable_array(b).layout.group = 0;
  const ir::ArrayAddressing aa = ir::resolve_addressing(p, a);
  const ir::ArrayAddressing ab = ir::resolve_addressing(p, b);
  EXPECT_TRUE(aa.owns_allocation);
  EXPECT_FALSE(ab.owns_allocation);
  EXPECT_EQ(aa.owner, a);
  EXPECT_EQ(ab.owner, a);
  EXPECT_EQ(aa.addr_scale, 16u);  // two interleaved 8-byte members
  EXPECT_EQ(ab.addr_scale, 16u);
  EXPECT_EQ(aa.member_offset, 0u);
  EXPECT_EQ(ab.member_offset, 8u);
  EXPECT_EQ(aa.alloc_bytes, 2u * 16u * 8u);
}

// --------------------------------------------------------------------
// The estimator and the transforms it drives.
// --------------------------------------------------------------------

TEST(LayoutEstimator, FlagsTransposedSweepConflict) {
  const Program p = workloads::transposed_sweep(512);
  const analysis::LayoutTrafficEstimate before =
      analysis::estimate_layout_traffic(p);
  // img is swept with a 4 KiB stride: its sweeps collapse onto a few
  // sets and must be flagged.
  EXPECT_TRUE(before.of(0).conflict);
  EXPECT_EQ(before.of(0).dominant_stride_bytes, 512 * 8);

  const transform::LayoutResult t = transform::transpose_layouts(p);
  ASSERT_FALSE(t.actions.empty());
  const analysis::LayoutTrafficEstimate after =
      analysis::estimate_layout_traffic(t.program);
  EXPECT_FALSE(after.of(0).conflict);
  EXPECT_EQ(after.of(0).dominant_stride_bytes, 8);
  EXPECT_LT(after.total_line_bytes, before.total_line_bytes);
}

TEST(LayoutEstimator, FlagsCoStreamThrashAndRegroupClearsIt) {
  const Program p = workloads::conflict_streams(2048, 3);
  const analysis::LayoutTrafficEstimate before =
      analysis::estimate_layout_traffic(p);
  bool any_conflict = false;
  for (const analysis::ArrayLayoutTraffic& a : before.arrays)
    any_conflict |= a.conflict;
  EXPECT_TRUE(any_conflict);

  const transform::LayoutResult t = transform::regroup_layouts(p);
  ASSERT_FALSE(t.actions.empty());
  for (int a = 0; a < t.program.array_count(); ++a)
    EXPECT_GE(t.program.array(a).layout.group, 0);
  const analysis::LayoutTrafficEstimate after =
      analysis::estimate_layout_traffic(t.program);
  for (const analysis::ArrayLayoutTraffic& a : after.arrays)
    EXPECT_FALSE(a.conflict) << a.name;
  EXPECT_LT(after.total_line_bytes, before.total_line_bytes);
}

TEST(LayoutTransforms, PadImprovesEstimateOrDoesNothing) {
  const Program p = workloads::transposed_sweep(512);
  const analysis::LayoutTrafficEstimate before =
      analysis::estimate_layout_traffic(p);
  const transform::LayoutResult t = transform::pad_layouts(p);
  ASSERT_FALSE(t.actions.empty());
  const analysis::LayoutTrafficEstimate after =
      analysis::estimate_layout_traffic(t.program);
  EXPECT_LT(after.total_line_bytes, before.total_line_bytes);
}

TEST(LayoutTransforms, TransposeSkipsBalancedAndGroupedArrays) {
  // `out` in transposed_sweep is swept in both orders with equal weight:
  // no strictly-better order exists, so it must keep the default.
  const transform::LayoutResult t =
      transform::transpose_layouts(workloads::transposed_sweep(64));
  EXPECT_TRUE(t.program.array(1).layout.is_default());

  // A grouped array is never permuted even when its vote says otherwise.
  Program p = workloads::transposed_sweep(64);
  p.mutable_array(0).layout.group = 0;
  p.mutable_array(1).layout.group = 0;
  const transform::LayoutResult g = transform::transpose_layouts(p);
  EXPECT_TRUE(g.program.array(0).layout.order.empty());
}

// --------------------------------------------------------------------
// Legality: the pure-layout-change prover.
// --------------------------------------------------------------------

TEST(LayoutLegality, ProvesTransformOutputs) {
  const Program p = workloads::transposed_sweep(64);
  for (const transform::LayoutResult& t :
       {transform::transpose_layouts(p), transform::pad_layouts(p)}) {
    const verify::LegalityResult res =
        verify::prove_layout_change(p, t.program);
    EXPECT_EQ(res.verdict, verify::LegalityVerdict::kProven) << res.reason;
  }
  const Program q = workloads::conflict_streams(256, 3);
  const verify::LegalityResult res =
      verify::prove_layout_change(q, transform::regroup_layouts(q).program);
  EXPECT_EQ(res.verdict, verify::LegalityVerdict::kProven) << res.reason;
}

TEST(LayoutLegality, RefutesInvalidLayout) {
  const Program p = workloads::transposed_sweep(16);
  Program bad = p.clone();
  bad.mutable_array(0).layout.order = {0, 0};  // not a permutation
  const verify::LegalityResult res = verify::prove_layout_change(p, bad);
  EXPECT_EQ(res.verdict, verify::LegalityVerdict::kRefuted);
  EXPECT_EQ(res.reason.rfind("invalid-layout", 0), 0u) << res.reason;
}

TEST(LayoutLegality, UnknownWhenComputationChanged) {
  const verify::LegalityResult res = verify::prove_layout_change(
      workloads::transposed_sweep(16), workloads::transposed_sweep(32));
  EXPECT_EQ(res.verdict, verify::LegalityVerdict::kUnknown);
  EXPECT_EQ(res.reason, "not-a-pure-layout-change");
}

// --------------------------------------------------------------------
// Reporting: per-array breakdowns and the lint diagnostic.
// --------------------------------------------------------------------

TEST(LayoutReports, PerArrayBreakdownNamesTheTransposedArray) {
  core::OptimizerOptions opts;
  opts.passes = "transpose-layout,regroup-arrays,pad-arrays";
  const core::OptimizeResult result =
      core::optimize(workloads::transposed_sweep(256), opts);
  ASSERT_EQ(result.pipeline.passes.size(), 3u);
  const pass::PassReport& transpose = result.pipeline.passes.at(0);
  EXPECT_TRUE(transpose.changed);
  bool img_improved = false;
  for (const pass::ArrayTraffic& t : transpose.per_array)
    if (t.name == "img" && t.bytes_after < t.bytes_before)
      img_improved = true;
  EXPECT_TRUE(img_improved);
}

TEST(LayoutReports, LintFlagsConflictingStride) {
  core::OptimizerOptions opts;
  opts.passes = "lint";
  const core::OptimizeResult bad =
      core::optimize(workloads::transposed_sweep(512), opts);
  ASSERT_EQ(bad.pipeline.passes.size(), 1u);
  bool flagged = false;
  for (const pass::Remark& r : bad.pipeline.passes.at(0).remarks)
    if (r.code == "lint-conflict-stride" &&
        r.severity == pass::RemarkSeverity::kWarning)
      flagged = true;
  EXPECT_TRUE(flagged);

  const core::OptimizeResult good =
      core::optimize(workloads::blur_sharpen(512), opts);
  for (const pass::Remark& r : good.pipeline.passes.at(0).remarks)
    EXPECT_NE(r.code, "lint-conflict-stride");
}

}  // namespace
}  // namespace bwc
