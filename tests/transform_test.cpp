#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "bwc/analysis/liveness.h"
#include "bwc/core/optimizer.h"
#include "bwc/fusion/solvers.h"
#include "bwc/ir/dsl.h"
#include "bwc/ir/printer.h"
#include "bwc/runtime/interpreter.h"
#include "bwc/support/prng.h"
#include "bwc/transform/fuse.h"
#include "bwc/transform/rewrite.h"
#include "bwc/transform/storage_reduction.h"
#include "bwc/transform/store_elimination.h"
#include "bwc/workloads/paper_programs.h"
#include "bwc/workloads/random_programs.h"

namespace bwc::transform {
namespace {

using namespace ir::dsl;  // NOLINT
using ir::ArrayId;
using ir::Program;

void expect_same_semantics(const Program& a, const Program& b) {
  const double ca = runtime::execute(a).checksum;
  const double cb = runtime::execute(b).checksum;
  const double tolerance = 1e-9 * (std::abs(ca) + 1.0);
  EXPECT_NEAR(ca, cb, tolerance)
      << "original:\n" << ir::to_string(a) << "\ntransformed:\n"
      << ir::to_string(b);
}

// -- Rewrite utilities --------------------------------------------------------

TEST(Rewrite, RenameLoopVarsEverywhere) {
  Program p("t");
  const ArrayId a = p.add_array("a", {8});
  p.add_scalar("s");
  p.append(loop("i", 1, 8,
                when(ir::CmpOp::kLe, v("i"), k(4),
                     assign(a, {v("i")}, lvar("i") + sref("s")))));
  rename_loop_vars(p.top(), {{"i", "z"}});
  const std::string s = ir::to_string(p);
  EXPECT_EQ(s.find(" i "), std::string::npos);
  EXPECT_NE(s.find("for z = 1, 8"), std::string::npos);
  EXPECT_NE(s.find("a[z]"), std::string::npos);
  EXPECT_NE(s.find("if (z <= 4)"), std::string::npos);
}

TEST(Rewrite, FreshNameAvoidsCollisions) {
  EXPECT_EQ(fresh_name("t", {"a", "b"}), "t");
  EXPECT_EQ(fresh_name("t", {"t"}), "t_1");
  EXPECT_EQ(fresh_name("t", {"t", "t_1"}), "t_2");
}

TEST(Rewrite, ReplaceExprsSwapsMatches) {
  Program p("t");
  const ArrayId a = p.add_array("a", {8});
  p.add_scalar("s");
  p.append(loop("i", 1, 8, assign("s", sref("s") + at(a, v("i")))));
  replace_exprs(
      p.top(),
      [&](const ir::Expr& e) {
        return e.kind == ir::ExprKind::kArrayRef && e.array == a;
      },
      [](const ir::Expr&) { return lit(1.0); });
  EXPECT_DOUBLE_EQ(runtime::execute(p).scalars.at("s"), 8.0);
}

// -- Fusion code generation ------------------------------------------------------

TEST(Fuse, IdenticalBoundsConcatenatesBodies) {
  const Program p = workloads::fig7_original(64);
  const auto graph = fusion::build_fusion_graph(p);
  const auto plan = fusion::exact_enumeration(graph);
  EXPECT_EQ(plan.num_partitions, 1);
  const Program fused = apply_fusion(p, graph, plan);
  EXPECT_EQ(fused.top_loop_indices().size(), 1u);
  expect_same_semantics(p, fused);
}

TEST(Fuse, ScalarInitHoistedBeforeItsPartition) {
  const Program p = workloads::fig7_original(32);
  const Program fused = fuse_best(p);
  // sum = 0 must execute before the fused loop.
  ASSERT_GE(fused.top().size(), 2u);
  EXPECT_EQ(fused.top()[0]->kind, ir::StmtKind::kScalarAssign);
  EXPECT_EQ(fused.top()[1]->kind, ir::StmtKind::kLoop);
}

TEST(Fuse, OuterUnionInsertsGuards) {
  const Program p = workloads::fig6_original(24);
  const auto graph = fusion::build_fusion_graph(p);
  const auto plan = fusion::exact_enumeration(graph);
  EXPECT_EQ(plan.num_partitions, 1);
  const Program fused = apply_fusion(p, graph, plan);
  expect_same_semantics(p, fused);
  // The fused loop covers the union range 1..N.
  const auto loops = fused.top_loop_indices();
  ASSERT_EQ(loops.size(), 1u);
  const ir::Stmt& nest = *fused.top()[static_cast<std::size_t>(loops[0])];
  EXPECT_EQ(nest.loop->lower, 1);
  EXPECT_EQ(nest.loop->upper, 24);
}

TEST(Fuse, NoFusionPlanIsIdentityShape) {
  const Program p = workloads::fig7_original(16);
  const auto graph = fusion::build_fusion_graph(p);
  const auto plan = fusion::no_fusion(graph);
  const Program out = apply_fusion(p, graph, plan);
  EXPECT_EQ(out.top_loop_indices().size(), p.top_loop_indices().size());
  expect_same_semantics(p, out);
}

TEST(Fuse, RandomProgramsPreserveSemantics) {
  Prng rng(4242);
  for (int trial = 0; trial < 25; ++trial) {
    workloads::RandomProgramParams params;
    params.num_loops = 3 + static_cast<int>(rng.uniform(4));
    params.num_arrays = 2 + static_cast<int>(rng.uniform(3));
    params.n = 32;
    const Program p = workloads::random_program(rng, params);
    const auto graph = fusion::build_fusion_graph(p);
    using Solver = std::function<fusion::FusionPlan(const fusion::FusionGraph&)>;
    const std::vector<Solver> solvers = {
        [](const fusion::FusionGraph& g) {
          return fusion::exact_enumeration(g);
        },
        fusion::greedy_fusion, fusion::recursive_bisection};
    for (const Solver& solver : solvers) {
      const auto plan = solver(graph);
      const Program fused = apply_fusion(p, graph, plan);
      expect_same_semantics(p, fused);
    }
  }
}

// -- Store elimination ---------------------------------------------------------

TEST(StoreElim, Figure7RemovesResWritebacks) {
  const Program p = workloads::fig7_original(64);
  const Program fused = fuse_best(p);
  const StoreEliminationResult r = eliminate_stores(fused);
  ASSERT_EQ(r.eliminated.size(), 1u);
  EXPECT_EQ(r.program.array(r.eliminated[0]).name, "res");
  expect_same_semantics(p, r.program);
  // No array-assign to res remains.
  const auto live = analysis::analyze_liveness(r.program);
  EXPECT_TRUE(live[static_cast<std::size_t>(r.eliminated[0])]
                  .writing_stmts.empty());
}

TEST(StoreElim, KeepsOutputArrays) {
  Program p("t");
  const ArrayId a = p.add_array("a", {16});
  p.mark_output_array(a);
  p.append(loop("i", 1, 16, assign(a, {v("i")}, lvar("i"))));
  const StoreEliminationResult r = eliminate_stores(p);
  EXPECT_TRUE(r.eliminated.empty());
}

TEST(StoreElim, KeepsArraysReadLater) {
  Program p("t");
  const ArrayId a = p.add_array("a", {16});
  p.add_scalar("s");
  p.mark_output_scalar("s");
  p.append(loop("i", 1, 16, assign(a, {v("i")}, lvar("i"))));
  p.append(loop("i", 1, 16, assign("s", sref("s") + at(a, v("i")))));
  EXPECT_TRUE(eliminate_stores(p).eliminated.empty());
}

TEST(StoreElim, KeepsCrossIterationFlow) {
  // res[i] read at i+... different subscript tuples -> unsafe, must skip.
  Program p("t");
  const ArrayId a = p.add_array("a", {16});
  p.add_scalar("s");
  p.mark_output_scalar("s");
  p.append(loop("i", 2, 15,
                assign(a, {v("i")}, lvar("i")),
                assign("s", sref("s") + at(a, v("i", -1)))));
  EXPECT_TRUE(eliminate_stores(p).eliminated.empty());
  expect_same_semantics(p, eliminate_stores(p).program);
}

TEST(StoreElim, EliminatesWriteOnlyDeadArray) {
  Program p("t");
  const ArrayId a = p.add_array("a", {16});
  p.add_scalar("s");
  p.mark_output_scalar("s");
  p.append(loop("i", 1, 16, assign(a, {v("i")}, lvar("i") * lit(2.0))));
  p.append(assign("s", lit(1.0)));
  const StoreEliminationResult r = eliminate_stores(p);
  ASSERT_EQ(r.eliminated.size(), 1u);
  expect_same_semantics(p, r.program);
}

TEST(StoreElim, ReadsBeforeWriteKeepOldValues) {
  // sum1 collects the OLD value of a[i]; the write is then dead.
  Program p("t");
  const ArrayId a = p.add_array("a", {16});
  p.add_scalar("s");
  p.mark_output_scalar("s");
  p.append(loop("i", 1, 16,
                assign("s", sref("s") + at(a, v("i"))),
                assign(a, {v("i")}, lit(7.0))));
  const StoreEliminationResult r = eliminate_stores(p);
  EXPECT_EQ(r.eliminated.size(), 1u);
  expect_same_semantics(p, r.program);
}

// -- Storage reduction ------------------------------------------------------------

TEST(StorageReduction, ContractsIterationLocalArray) {
  Program p("t");
  const ArrayId t = p.add_array("tmp", {64});
  const ArrayId a = p.add_array("a", {64});
  p.add_scalar("s");
  p.mark_output_scalar("s");
  p.append(loop("i", 1, 64,
                assign(t, {v("i")}, at(a, v("i")) * lit(2.0)),
                assign("s", sref("s") + at(t, v("i")))));
  const StorageReductionResult r = reduce_storage(p);
  ASSERT_EQ(r.actions.size(), 1u);
  EXPECT_NE(r.actions[0].find("contracted"), std::string::npos);
  expect_same_semantics(p, r.program);
  EXPECT_LT(r.referenced_bytes_after, r.referenced_bytes_before);
}

TEST(StorageReduction, KeepsArrayReadBeforeWritten) {
  // First access is a read of initial values: cannot contract.
  Program p("t");
  const ArrayId t = p.add_array("tmp", {64});
  p.add_scalar("s");
  p.mark_output_scalar("s");
  p.append(loop("i", 1, 64,
                assign("s", sref("s") + at(t, v("i"))),
                assign(t, {v("i")}, lit(1.0))));
  EXPECT_TRUE(reduce_storage(p).actions.empty());
}

TEST(StorageReduction, KeepsOutputArrays) {
  Program p("t");
  const ArrayId t = p.add_array("tmp", {64});
  p.mark_output_array(t);
  p.append(loop("i", 1, 64, assign(t, {v("i")}, lvar("i"))));
  EXPECT_TRUE(reduce_storage(p).actions.empty());
}

TEST(StorageReduction, KeepsCrossIterationCarrier) {
  // t[i] read at i-1 in the same 1-D loop: element live range crosses
  // iterations; 1-D arrays are not shrunk by this pass.
  Program p("t");
  const ArrayId t = p.add_array("tmp", {64});
  p.add_scalar("s");
  p.mark_output_scalar("s");
  p.append(loop("i", 2, 63,
                assign(t, {v("i")}, lvar("i")),
                assign("s", sref("s") + at(t, v("i", -1)))));
  EXPECT_TRUE(reduce_storage(p).actions.empty());
  expect_same_semantics(p, reduce_storage(p).program);
}

TEST(StorageReduction, ShrinksTwoDimensionalSweep) {
  // b[i,j] written at j, read at j and j-1 (reads guarded away from j=lo):
  // the classic cur/prev shrink, no peel needed.
  Program p("t");
  const ArrayId b = p.add_array("b", {32, 32});
  p.add_scalar("s");
  p.mark_output_scalar("s");
  p.append(loop("j", 1, 32,
                loop("i", 1, 32,
                     assign(b, {v("i"), v("j")}, input2(3, v("i"), v("j"), 32, 32)),
                     when(ir::CmpOp::kGe, v("j"), k(2),
                          assign("s", sref("s") + (at(b, v("i"), v("j"))) +
                                          at(b, v("i"), v("j", -1)))))));
  const StorageReductionResult r = reduce_storage(p);
  ASSERT_FALSE(r.actions.empty());
  EXPECT_NE(r.actions[0].find("shrank"), std::string::npos);
  expect_same_semantics(p, r.program);
  // 32x32 doubles (8 KB) replaced by two 32-double buffers.
  EXPECT_LT(r.referenced_bytes_after, r.referenced_bytes_before / 4);
}

TEST(StorageReduction, Figure6FullPipeline) {
  const Program p = workloads::fig6_original(20);
  const Program fused = fuse_best(p);
  const StorageReductionResult r = reduce_storage(fused);
  expect_same_semantics(p, r.program);
  // Both N^2 arrays must be gone from the referenced set: only 1-D buffers
  // remain (3 column buffers for a; b becomes a scalar).
  EXPECT_LE(r.referenced_bytes_after, 3 * 20 * 8u);
  bool contracted_b = false, shrank_a = false;
  for (const auto& act : r.actions) {
    if (act.find("contracted array b") != std::string::npos)
      contracted_b = true;
    if (act.find("shrank array a") != std::string::npos) shrank_a = true;
  }
  EXPECT_TRUE(contracted_b);
  EXPECT_TRUE(shrank_a);
}

TEST(StorageReduction, RandomProgramsSafe) {
  // The pass must either leave random programs alone or keep semantics.
  Prng rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    const Program p = workloads::random_program(rng);
    const StorageReductionResult r = reduce_storage(p);
    expect_same_semantics(p, r.program);
  }
}

// -- Full pipeline ------------------------------------------------------------------

TEST(Optimizer, Figure7EndToEnd) {
  const Program p = workloads::fig7_original(128);
  const core::OptimizeResult r = core::optimize(p);
  expect_same_semantics(p, r.program);
  EXPECT_EQ(r.plan.num_partitions, 1);
}

TEST(Optimizer, Figure6EndToEnd) {
  const Program p = workloads::fig6_original(24);
  const core::OptimizeResult r = core::optimize(p);
  expect_same_semantics(p, r.program);
}

TEST(Optimizer, RandomProgramsEndToEnd) {
  Prng rng(20240707);
  for (int trial = 0; trial < 30; ++trial) {
    workloads::RandomProgramParams params;
    params.num_loops = 2 + static_cast<int>(rng.uniform(5));
    params.num_arrays = 2 + static_cast<int>(rng.uniform(4));
    params.n = 24;
    const Program p = workloads::random_program(rng, params);
    for (auto solver : {core::FusionSolver::kBest, core::FusionSolver::kGreedy,
                        core::FusionSolver::kEdgeWeighted}) {
      core::OptimizerOptions opts;
      opts.solver = solver;
      const core::OptimizeResult r = core::optimize(p, opts);
      expect_same_semantics(p, r.program);
    }
  }
}

TEST(Optimizer, PassesCanBeDisabled) {
  const Program p = workloads::fig7_original(32);
  core::OptimizerOptions opts;
  opts.solver = core::FusionSolver::kNone;
  opts.reduce_storage = false;
  opts.eliminate_stores = false;
  const core::OptimizeResult r = core::optimize(p, opts);
  EXPECT_TRUE(ir::equal(p, r.program));
}

}  // namespace
}  // namespace bwc::transform
