// Unit and acceptance tests for the static legality provers
// (verify/static_legality): reschedule proofs for fusion / distribution /
// interchange, store-elimination and storage-reduction certificates, the
// static-first verification modes of the pass manager, and the coverage
// acceptance bar -- at least 80% of the transform applications across the
// bundled workloads must certify statically, with no trace fallback.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "bwc/core/optimizer.h"
#include "bwc/ir/dsl.h"
#include "bwc/runtime/interpreter.h"
#include "bwc/transform/distribute.h"
#include "bwc/transform/store_elimination.h"
#include "bwc/transform/storage_reduction.h"
#include "bwc/verify/static_legality.h"
#include "bwc/workloads/extra_programs.h"
#include "bwc/workloads/paper_programs.h"

namespace bwc::verify {
namespace {

using namespace ir::dsl;  // NOLINT
using ir::ArrayId;
using ir::Program;

// -- prove_reschedule ---------------------------------------------------------

/// Producer a[i + w] in loop 1, consumer reads a[i + r] in loop 2.
Program two_loops(std::int64_t w, std::int64_t r) {
  const std::int64_t n = 40;
  Program p("pair");
  const ArrayId a = p.add_array("a", {n + 16});
  const ArrayId b = p.add_array("b", {n + 16});
  p.add_scalar("s");
  p.mark_output_scalar("s");
  p.append(loop("i", 8, n, assign(a, {v("i", w)}, at(b, v("i")) + lvar("i"))));
  p.append(loop("i", 8, n, assign("s", sref("s") + at(a, v("i", r)))));
  return p;
}

/// The same statements naively fused into one loop (no shift).
Program fused_loops(std::int64_t w, std::int64_t r) {
  const std::int64_t n = 40;
  Program p("pair");
  const ArrayId a = p.add_array("a", {n + 16});
  const ArrayId b = p.add_array("b", {n + 16});
  p.add_scalar("s");
  p.mark_output_scalar("s");
  p.append(loop("i", 8, n,
                assign(a, {v("i", w)}, at(b, v("i")) + lvar("i")),
                assign("s", sref("s") + at(a, v("i", r)))));
  return p;
}

TEST(ProveReschedule, IdentityIsProven) {
  const Program p = two_loops(0, 0);
  const LegalityResult res = prove_reschedule(p, p);
  EXPECT_EQ(res.verdict, LegalityVerdict::kProven) << res.reason;
}

TEST(ProveReschedule, LegalFusionIsProven) {
  // Read trails the write (r <= w): fusing preserves the flow order.
  for (const auto& [w, r] :
       {std::pair<int, int>{0, 0}, {0, -1}, {1, 0}, {2, -2}}) {
    const LegalityResult res =
        prove_reschedule(two_loops(w, r), fused_loops(w, r));
    EXPECT_EQ(res.verdict, LegalityVerdict::kProven)
        << "w=" << w << " r=" << r << " reason=" << res.reason;
    EXPECT_GT(res.pairs_checked, 0);
  }
}

TEST(ProveReschedule, IllegalFusionIsRefuted) {
  // Read outruns the write (r > w): naive fusion reverses the dependence.
  for (const auto& [w, r] : {std::pair<int, int>{0, 1}, {0, 2}, {-1, 0}}) {
    const LegalityResult res =
        prove_reschedule(two_loops(w, r), fused_loops(w, r));
    EXPECT_EQ(res.verdict, LegalityVerdict::kRefuted)
        << "w=" << w << " r=" << r << " reason=" << res.reason;
  }
}

TEST(ProveReschedule, DistributionIsProven) {
  const std::int64_t n = 40;
  Program p("t");
  const ArrayId a = p.add_array("a", {n + 16});
  p.add_scalar("s");
  p.mark_output_scalar("s");
  p.append(loop("i", 8, n,
                assign(a, {v("i")}, lvar("i") * lit(0.25)),
                assign("s", sref("s") + at(a, v("i")))));
  const auto result = transform::distribute_loops(p);
  ASSERT_EQ(result.loops_after, 2);
  const LegalityResult res = prove_reschedule(p, result.program);
  EXPECT_EQ(res.verdict, LegalityVerdict::kProven) << res.reason;
}

TEST(ProveReschedule, ChangedComputationIsNotProven) {
  // The "after" program computes something else: the atom matcher must
  // refuse the bijection; never certify a semantic change.
  const Program before = two_loops(0, 0);
  // Same shape, different rhs structure.
  Program other("pair");
  const ArrayId a = other.add_array("a", {56});
  const ArrayId b = other.add_array("b", {56});
  other.add_scalar("s");
  other.mark_output_scalar("s");
  other.append(loop("i", 8, 40,
                    assign(a, {v("i")}, at(b, v("i")) * lit(2.0))));
  other.append(loop("i", 8, 40, assign("s", sref("s") + at(a, v("i")))));
  const LegalityResult res = prove_reschedule(before, other);
  EXPECT_NE(res.verdict, LegalityVerdict::kProven) << res.reason;
}

TEST(ProveReschedule, ReductionReorderingIsProven) {
  // Two reduction loops into one: accumulation order changes, but the
  // common-op reduction exemption (same one the trace validator grants)
  // applies to scalar s.
  const std::int64_t n = 40;
  Program before("t");
  const ArrayId a = before.add_array("a", {n + 16});
  const ArrayId b = before.add_array("b", {n + 16});
  before.add_scalar("s");
  before.mark_output_scalar("s");
  before.append(loop("i", 8, n, assign("s", sref("s") + at(a, v("i")))));
  before.append(loop("i", 8, n, assign("s", sref("s") + at(b, v("i")))));
  Program after("t");
  const ArrayId a2 = after.add_array("a", {n + 16});
  const ArrayId b2 = after.add_array("b", {n + 16});
  after.add_scalar("s");
  after.mark_output_scalar("s");
  after.append(loop("i", 8, n,
                    assign("s", sref("s") + at(a2, v("i"))),
                    assign("s", sref("s") + at(b2, v("i")))));
  const LegalityResult res = prove_reschedule(before, after);
  EXPECT_EQ(res.verdict, LegalityVerdict::kProven) << res.reason;
}

// -- prove_store_elimination --------------------------------------------------

Program eliminable_store_program() {
  const std::int64_t n = 40;
  Program p("t");
  const ArrayId a = p.add_array("a", {n + 16});
  const ArrayId b = p.add_array("b", {n + 16});
  p.add_scalar("s");
  p.mark_output_scalar("s");
  p.append(loop("i", 8, n,
                assign(a, {v("i")}, at(b, v("i")) + lit(1.0)),
                assign("s", sref("s") + at(a, v("i")))));
  return p;
}

TEST(ProveStoreElimination, ForwardedWritebackIsProven) {
  const Program p = eliminable_store_program();
  const auto result = transform::eliminate_stores(p);
  ASSERT_FALSE(result.eliminated.empty());
  const LegalityResult res = prove_store_elimination(p, result.program);
  EXPECT_EQ(res.verdict, LegalityVerdict::kProven) << res.reason;
  // Sanity: semantics preserved (the prover certified a true fact).
  EXPECT_NEAR(runtime::execute(p).checksum,
              runtime::execute(result.program).checksum, 1e-9);
}

TEST(ProveStoreElimination, UnrelatedRewriteIsNotProven) {
  const Program p = eliminable_store_program();
  const LegalityResult res = prove_store_elimination(p, two_loops(0, 0));
  EXPECT_NE(res.verdict, LegalityVerdict::kProven) << res.reason;
}

// -- prove_storage_reduction --------------------------------------------------

Program contractible_program() {
  const std::int64_t n = 40;
  Program p("t");
  const ArrayId t = p.add_array("t", {n + 16});
  const ArrayId b = p.add_array("b", {n + 16});
  const ArrayId c = p.add_array("c", {n + 16});
  p.mark_output_array(c);
  p.append(loop("i", 8, n,
                assign(t, {v("i")}, at(b, v("i")) * lit(2.0)),
                assign(c, {v("i")}, at(t, v("i")) + lit(1.0))));
  return p;
}

TEST(ProveStorageReduction, ScalarContractionIsProven) {
  const Program p = contractible_program();
  const auto result = transform::reduce_storage(p);
  ASSERT_FALSE(result.actions.empty());
  ASSERT_LT(result.referenced_bytes_after, result.referenced_bytes_before);
  const LegalityResult res = prove_storage_reduction(p, result.program);
  EXPECT_EQ(res.verdict, LegalityVerdict::kProven) << res.reason;
  EXPECT_NEAR(runtime::execute(p).checksum,
              runtime::execute(result.program).checksum, 1e-9);
}

TEST(ProveStorageReduction, NonContractionRewriteIsUnknown) {
  // A rewrite that changes the atom count (not a pure contraction) is
  // outside this prover's model: it must answer kUnknown, never kProven.
  const Program p = contractible_program();
  const auto result = transform::distribute_loops(p);
  const LegalityResult res = prove_storage_reduction(p, result.program);
  EXPECT_NE(res.verdict, LegalityVerdict::kProven) << res.reason;
}

// -- Pass-manager integration: static-first verification ----------------------

/// Count verifier outcomes across a pipeline run: how many checks ran at
/// all, and how many of them were discharged by a static certificate.
void count_checks(const core::OptimizeResult& result, int* ran,
                  int* statically) {
  for (const auto& report : result.pipeline.passes) {
    if (!report.verify.ran) continue;
    ++*ran;
    if (report.verify.check.rfind("static-", 0) == 0) ++*statically;
  }
}

TEST(StaticFirstVerification, AcceptanceBarAcrossBundledWorkloads) {
  const struct {
    const char* name;
    Program program;
  } rows[] = {
      {"fig7", workloads::fig7_original(1000)},
      {"fig6", workloads::fig6_original(2000)},
      {"sec21", workloads::sec21_both_loops(1000)},
      {"jacobi", workloads::jacobi_chain(1000, 4)},
      {"adi", workloads::adi_like(200)},
      {"blur", workloads::blur_sharpen(1000)},
      {"cascade", workloads::reduction_cascade(1000, 3)},
  };
  int ran = 0;
  int statically = 0;
  for (const auto& row : rows) {
    core::OptimizerOptions opts;  // static-first is the default
    const core::OptimizeResult result = core::optimize(row.program, opts);
    int row_ran = 0;
    int row_static = 0;
    count_checks(result, &row_ran, &row_static);
    ran += row_ran;
    statically += row_static;
    // Every workload applies at least one verified transform.
    EXPECT_GT(row_ran, 0) << row.name;
  }
  ASSERT_GT(ran, 0);
  const double share =
      static_cast<double>(statically) / static_cast<double>(ran);
  EXPECT_GE(share, 0.8) << statically << " of " << ran
                        << " checks were static certificates";
}

TEST(StaticFirstVerification, OffModeUsesTraceValidatorOnly) {
  core::OptimizerOptions opts;
  opts.static_verify = pass::StaticVerifyMode::kOff;
  const core::OptimizeResult result =
      core::optimize(workloads::fig7_original(500), opts);
  for (const auto& report : result.pipeline.passes) {
    if (!report.verify.ran) continue;
    EXPECT_NE(report.verify.check.rfind("static-", 0), 0u)
        << report.pass << " used " << report.verify.check;
  }
}

TEST(StaticFirstVerification, OnlyModeNeverTracesAndSkipsUnknowns) {
  // fig6's storage reduction (shrink + peel) is outside the static
  // prover's model: in kOnly mode its check must be reported as skipped,
  // not silently certified and not trace-validated.
  core::OptimizerOptions opts;
  opts.static_verify = pass::StaticVerifyMode::kOnly;
  const core::OptimizeResult result =
      core::optimize(workloads::fig6_original(2000), opts);
  bool saw_skipped_unknown = false;
  for (const auto& report : result.pipeline.passes) {
    if (!report.verify.ran) continue;
    EXPECT_EQ(report.verify.check.rfind("static-", 0), 0u)
        << report.pass << " used " << report.verify.check;
    if (report.verify.skipped) saw_skipped_unknown = true;
  }
  EXPECT_TRUE(saw_skipped_unknown);
}

TEST(StaticFirstVerification, ChecksumPreservedUnderAllModes) {
  const Program p = workloads::blur_sharpen(500);
  const double before = runtime::execute(p).checksum;
  for (const auto mode :
       {pass::StaticVerifyMode::kOn, pass::StaticVerifyMode::kOff,
        pass::StaticVerifyMode::kOnly}) {
    core::OptimizerOptions opts;
    opts.static_verify = mode;
    const core::OptimizeResult result = core::optimize(p, opts);
    EXPECT_NEAR(before, runtime::execute(result.program).checksum,
                1e-9 * (std::abs(before) + 1.0))
        << pass::static_verify_mode_name(mode);
  }
}

}  // namespace
}  // namespace bwc::verify
