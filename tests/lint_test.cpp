// Tests for the bwc-lint diagnostics pass (pass/lint.h): graded findings
// for dead stores, unreachable guard arms, analysis-opaque contexts and
// loops already at the traffic lower bound, plus the severity plumbing
// through PipelineReport (error_findings, JSON rendering).
#include <gtest/gtest.h>

#include <string>

#include "bwc/core/optimizer.h"
#include "bwc/ir/dsl.h"
#include "bwc/ir/printer.h"
#include "bwc/workloads/paper_programs.h"

namespace bwc::pass {
namespace {

using namespace ir::dsl;  // NOLINT
using ir::ArrayId;
using ir::Program;

core::OptimizeResult run_lint(const Program& p) {
  core::OptimizerOptions opts;
  opts.passes = "lint";
  return core::optimize(p, opts);
}

/// The lint findings (severity, code) of a single-pass run.
const std::vector<Remark>& findings(const core::OptimizeResult& result) {
  EXPECT_EQ(result.pipeline.passes.size(), 1u);
  return result.pipeline.passes.at(0).remarks;
}

bool has_finding(const core::OptimizeResult& result, const std::string& code,
                 RemarkSeverity severity) {
  for (const Remark& r : findings(result))
    if (r.code == code && r.severity == severity) return true;
  return false;
}

TEST(Lint, DeadStoreIsAnErrorFinding) {
  const std::int64_t n = 40;
  Program p("t");
  const ArrayId d = p.add_array("dead", {n + 16});
  const ArrayId c = p.add_array("c", {n + 16});
  p.mark_output_array(c);
  p.append(loop("i", 1, n, assign(d, {v("i")}, lvar("i"))));
  p.append(loop("i", 1, n, assign(c, {v("i")}, lvar("i") * lit(2.0))));
  const core::OptimizeResult result = run_lint(p);
  EXPECT_TRUE(has_finding(result, "lint-dead-store", RemarkSeverity::kError));
  EXPECT_GT(result.pipeline.error_findings(), 0);
}

TEST(Lint, OutputArraysAreNeverDead) {
  const std::int64_t n = 40;
  Program p("t");
  const ArrayId c = p.add_array("c", {n + 16});
  p.mark_output_array(c);
  p.append(loop("i", 1, n, assign(c, {v("i")}, lvar("i"))));
  const core::OptimizeResult result = run_lint(p);
  for (const Remark& r : findings(result))
    EXPECT_NE(r.code, "lint-dead-store");
  EXPECT_EQ(result.pipeline.error_findings(), 0);
}

TEST(Lint, UnreachableGuardArmIsAWarning) {
  const std::int64_t n = 40;
  Program p("t");
  const ArrayId c = p.add_array("c", {n + 16});
  p.mark_output_array(c);
  p.append(loop("i", 1, n,
                assign(c, {v("i")}, lvar("i")),
                when(ir::CmpOp::kGe, v("i"), k(n + 100),
                     assign(c, {v("i")}, lit(0.0)))));
  const core::OptimizeResult result = run_lint(p);
  EXPECT_TRUE(has_finding(result, "lint-unreachable-guard",
                          RemarkSeverity::kWarning));
  // Warnings do not fail a lint run.
  EXPECT_EQ(result.pipeline.error_findings(), 0);
}

TEST(Lint, StreamLoopIsAtTrafficBound) {
  const std::int64_t n = 40;
  Program p("t");
  const ArrayId c = p.add_array("c", {n + 16});
  const ArrayId b = p.add_array("b", {n + 16});
  p.mark_output_array(c);
  p.append(loop("i", 1, n, assign(c, {v("i")}, at(b, v("i")) + lit(1.0))));
  const core::OptimizeResult result = run_lint(p);
  EXPECT_TRUE(has_finding(result, "lint-at-traffic-bound",
                          RemarkSeverity::kInfo));
}

TEST(Lint, RevisitingLoopIsNotAtTrafficBound) {
  const std::int64_t n = 40;
  Program p("t");
  const ArrayId c = p.add_array("c", {n + 16});
  p.mark_output_array(c);
  // c[i] reads c[i - 1]: every element is revisited by the next iteration.
  p.append(loop("i", 2, n,
                assign(c, {v("i")}, at(c, v("i", -1)) + lit(1.0))));
  const core::OptimizeResult result = run_lint(p);
  for (const Remark& r : findings(result))
    EXPECT_NE(r.code, "lint-at-traffic-bound");
}

TEST(Lint, DependenceSummaryIsAlwaysEmitted) {
  const core::OptimizeResult result =
      run_lint(workloads::fig7_original(200));
  EXPECT_TRUE(has_finding(result, "lint-dependence-summary",
                          RemarkSeverity::kInfo));
}

TEST(Lint, ProgramIsNeverModified) {
  const Program p = workloads::fig7_original(200);
  const core::OptimizeResult result = run_lint(p);
  EXPECT_EQ(ir::to_string(result.program), ir::to_string(p));
  EXPECT_FALSE(result.pipeline.passes.at(0).changed);
}

TEST(Lint, JsonRenderingCarriesSeverity) {
  const std::int64_t n = 40;
  Program p("t");
  const ArrayId d = p.add_array("dead", {n + 16});
  p.add_scalar("s");
  p.mark_output_scalar("s");
  p.append(loop("i", 1, n, assign(d, {v("i")}, lvar("i"))));
  p.append(loop("i", 1, n, assign("s", sref("s") + lvar("i"))));
  const core::OptimizeResult result = run_lint(p);
  const std::string json = result.pipeline.to_json("t", "lint");
  EXPECT_NE(json.find("\"severity\": \"error\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"severity\": \"info\""), std::string::npos) << json;
  EXPECT_NE(json.find("bwc-remarks-v1"), std::string::npos);
}

TEST(Lint, CleanWorkloadHasNoErrorFindings) {
  for (const auto* name : {"fig6", "fig7"}) {
    const Program p = std::string(name) == "fig6"
                          ? workloads::fig6_original(400)
                          : workloads::fig7_original(400);
    const core::OptimizeResult result = run_lint(p);
    EXPECT_EQ(result.pipeline.error_findings(), 0) << name;
  }
}

}  // namespace
}  // namespace bwc::pass
