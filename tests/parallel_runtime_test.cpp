// Differential test holding the parallel compiled engine bit-identical to
// the serial compiled engine and the reference interpreter at every core
// count: checksums, flop/load/store counts, final scalars, array bases,
// per-boundary traffic bytes and the hierarchy's own access counters must
// all match for cores in {1, 2, 4, 8} on every paper, extra and random
// workload. Determinism is by construction (workers record private
// traces, merged in chunk-index order -- see docs/runtime.md), and this
// file is what holds the construction honest; the CI thread-sanitizer job
// runs exactly these tests.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "bwc/core/optimizer.h"
#include "bwc/fusion/fusion_graph.h"
#include "bwc/fusion/solvers.h"
#include "bwc/machine/machine_model.h"
#include "bwc/model/measure.h"
#include "bwc/runtime/compiled.h"
#include "bwc/runtime/interpreter.h"
#include "bwc/runtime/parallel.h"
#include "bwc/support/prng.h"
#include "bwc/workloads/extra_programs.h"
#include "bwc/workloads/paper_programs.h"
#include "bwc/workloads/random_programs.h"

namespace bwc::runtime {
namespace {

using ir::Program;

constexpr int kCoreCounts[] = {1, 2, 4, 8};

void expect_identical(const ExecResult& ref, const ExecResult& got,
                      const std::string& label) {
  SCOPED_TRACE(label);
  // Bitwise-equal checksums: chunked workers evaluate the same
  // floating-point operations on the same elements as the serial sweep
  // (writes are disjoint, reductions stay serial).
  EXPECT_EQ(ref.checksum, got.checksum);
  EXPECT_EQ(ref.flops, got.flops);
  EXPECT_EQ(ref.loads, got.loads);
  EXPECT_EQ(ref.stores, got.stores);
  EXPECT_EQ(ref.scalars, got.scalars);
  EXPECT_EQ(ref.array_bases, got.array_bases);
  EXPECT_EQ(ref.profile.flops, got.profile.flops);
  ASSERT_EQ(ref.profile.boundaries.size(), got.profile.boundaries.size());
  for (std::size_t b = 0; b < ref.profile.boundaries.size(); ++b) {
    SCOPED_TRACE("boundary " + ref.profile.boundaries[b].name);
    EXPECT_EQ(ref.profile.boundaries[b].bytes_toward_cpu,
              got.profile.boundaries[b].bytes_toward_cpu);
    EXPECT_EQ(ref.profile.boundaries[b].bytes_from_cpu,
              got.profile.boundaries[b].bytes_from_cpu);
  }
}

/// Run `p` at every core count on the given machine's hierarchy and
/// require all observables to match the reference interpreter and the
/// serial compiled engine, with coalescing both on and off.
void expect_parallel_identical(const Program& p,
                               const machine::MachineModel& machine) {
  memsim::MemoryHierarchy href = machine.make_hierarchy();
  ExecOptions ref_opts;
  ref_opts.hierarchy = &href;
  const ExecResult ref = execute(p, ref_opts);

  // Full cross of {coalescing} x {steady-state fast-forward}: both are
  // exactness-preserving replay accelerations and must be invisible in
  // every observable, serial or parallel.
  for (const bool coalesce : {true, false}) {
    for (const bool fast_forward : {true, false}) {
      const std::string tag = ", coalesce=" + std::to_string(coalesce) +
                              ", ff=" + std::to_string(fast_forward) + "]";
      memsim::MemoryHierarchy hser = machine.make_hierarchy();
      ExecOptions ser_opts;
      ser_opts.hierarchy = &hser;
      ser_opts.coalesce_accesses = coalesce;
      ser_opts.fast_forward = fast_forward;
      const ExecResult serial = execute_compiled(p, ser_opts);
      expect_identical(ref, serial, p.name() + " [serial" + tag);

      for (const int cores : kCoreCounts) {
        memsim::MemoryHierarchy hpar = machine.make_hierarchy();
        ExecOptions par_opts;
        par_opts.hierarchy = &hpar;
        par_opts.coalesce_accesses = coalesce;
        par_opts.cores = cores;
        par_opts.fast_forward = fast_forward;
        const ExecResult par = execute_compiled(p, par_opts);
        expect_identical(ref, par,
                         p.name() + " [parallel, cores=" +
                             std::to_string(cores) + tag);
        // The simulator's own access counters agree with the serial run:
        // chunk-order merge preserves the access stream, not just totals.
        EXPECT_EQ(hser.load_count(), hpar.load_count()) << p.name();
        EXPECT_EQ(hser.store_count(), hpar.store_count()) << p.name();
      }
    }
  }
}

void expect_parallel_identical(const Program& p) {
  expect_parallel_identical(p, machine::origin2000_r10k().scaled(16));
}

TEST(ParallelEngine, PaperPrograms) {
  expect_parallel_identical(workloads::sec21_write_loop(4096));
  expect_parallel_identical(workloads::sec21_read_loop(4096));
  expect_parallel_identical(workloads::sec21_both_loops(4096));
  expect_parallel_identical(workloads::fig6_original(48));
  expect_parallel_identical(workloads::fig7_original(4096));
}

TEST(ParallelEngine, ExtraPrograms) {
  expect_parallel_identical(workloads::jacobi_chain(512, 4));
  expect_parallel_identical(workloads::adi_like(48));
  expect_parallel_identical(workloads::blur_sharpen(1024));
  // Reductions are not parallelizable (FP fold order); they must run
  // serially inside the parallel engine and still match bit-for-bit.
  expect_parallel_identical(workloads::reduction_cascade(512, 5));
}

TEST(ParallelEngine, OptimizedPrograms) {
  // The fused/store-eliminated output of the optimizer is what a
  // multicore measurement actually replays; hold it identical too.
  expect_parallel_identical(
      core::optimize(workloads::fig7_original(4096)).program);
  expect_parallel_identical(
      core::optimize(workloads::sec21_both_loops(4096)).program);
}

TEST(ParallelEngine, AllMachinePresets) {
  for (const auto& m : machine::all_presets()) {
    SCOPED_TRACE(m.name);
    expect_parallel_identical(workloads::fig6_original(32), m.scaled(16));
    expect_parallel_identical(workloads::sec21_both_loops(2048),
                              m.scaled(16));
  }
}

TEST(ParallelEngine, RandomPrograms1D) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    Prng rng(seed);
    expect_parallel_identical(workloads::random_program(rng));
  }
}

TEST(ParallelEngine, RandomPrograms2D) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    Prng rng(seed);
    expect_parallel_identical(workloads::random_program_2d(rng, 16, 3));
  }
}

TEST(ParallelEngine, NoHierarchy) {
  // cores > 1 without a simulator: workers skip trace recording entirely
  // but the computation must still match.
  const Program p = workloads::fig7_original(2048);
  const ExecResult ref = execute(p);
  ExecOptions opts;
  opts.cores = 4;
  const ExecResult par = execute_compiled(p, opts);
  EXPECT_EQ(ref.checksum, par.checksum);
  EXPECT_EQ(ref.flops, par.flops);
  EXPECT_EQ(ref.loads, par.loads);
  EXPECT_EQ(ref.stores, par.stores);
  EXPECT_EQ(ref.scalars, par.scalars);
}

TEST(ParallelEngine, SchedulerActuallyChunks) {
  // Observability: fig7's stream loops are parallelizable, so the
  // scheduler must chunk at least one of them at 4 cores.
  const LoweredProgram lowered = lower(workloads::fig7_original(4096));
  ExecOptions opts;
  opts.cores = 4;
  ParallelScheduler sched(/*cores=*/4, /*record_runs=*/false,
                          /*coalesce=*/true, /*min_parallel_trips=*/2,
                          /*fast_forward=*/true);
  const ExecResult par = execute_lowered_with_scheduler(lowered, opts,
                                                        &sched);
  EXPECT_GT(sched.parallel_loops(), 0u);
  EXPECT_EQ(par.checksum, execute_lowered(lowered).checksum);
}

TEST(ParallelEngine, MinTripsGateForcesSerial) {
  const LoweredProgram lowered = lower(workloads::fig7_original(4096));
  ExecOptions opts;
  opts.cores = 4;
  ParallelScheduler sched(/*cores=*/4, /*record_runs=*/false,
                          /*coalesce=*/true,
                          /*min_parallel_trips=*/1 << 30,
                          /*fast_forward=*/true);
  const ExecResult par = execute_lowered_with_scheduler(lowered, opts,
                                                        &sched);
  EXPECT_EQ(sched.parallel_loops(), 0u);
  EXPECT_EQ(par.checksum, execute_lowered(lowered).checksum);
}

TEST(ParallelEngine, MeasureHonorsMachineCores) {
  // model::measure on a multicore machine runs the parallel engine;
  // traffic must equal the single-core measurement, and the multicore
  // prediction can only be faster.
  const Program p = workloads::fig7_original(4096);
  const machine::MachineModel m1 = machine::origin2000_r10k().scaled(16);
  const machine::MachineModel m4 = m1.with_cores(4);
  const model::Measurement serial = model::measure(p, m1);
  const model::Measurement par = model::measure(p, m4);
  EXPECT_EQ(serial.exec.checksum, par.exec.checksum);
  EXPECT_EQ(serial.profile.memory_bytes(), par.profile.memory_bytes());
  EXPECT_LE(par.time.total_s, serial.time.total_s);
}

// -- >12-loop exact-solver capacity fallback on the multicore path --------

TEST(ParallelFusionFallback, ExactSolverThrowsBeyondCapacity) {
  // 14 sweeps + a norm reduction: beyond exact_enumeration's 12-node cap.
  const Program p = workloads::jacobi_chain(256, 14);
  const fusion::FusionGraph graph = fusion::build_fusion_graph(p);
  ASSERT_GT(graph.node_count(), 12);
  try {
    fusion::exact_enumeration(graph);
    FAIL() << "expected FusionCapacityError";
  } catch (const fusion::FusionCapacityError& e) {
    EXPECT_EQ(e.loop_count(), graph.node_count());
    EXPECT_EQ(e.max_nodes(), 12);
    EXPECT_EQ(e.suggested_solver(), "bisection");
  }
}

TEST(ParallelFusionFallback, MulticoreOptimizeDegradesToHeuristic) {
  // Asking the multicore pipeline for kExact on a >12-loop program is a
  // structured failure...
  const Program p = workloads::jacobi_chain(256, 14);
  core::OptimizerOptions exact;
  exact.solver = core::FusionSolver::kExact;
  exact.cores = 4;
  EXPECT_THROW(core::optimize(p, exact), fusion::FusionCapacityError);

  // ...while kBest degrades to the suggested heuristic and the result
  // stays bit-identical under parallel replay at every core count
  // (docs/TRANSFORMS.md documents this fallback).
  core::OptimizerOptions best;
  best.solver = core::FusionSolver::kBest;
  best.cores = 4;
  const core::OptimizeResult result = core::optimize(p, best);
  EXPECT_EQ(result.plan.solver.rfind("best(", 0), 0u) << result.plan.solver;
  expect_parallel_identical(result.program);
}

}  // namespace
}  // namespace bwc::runtime
