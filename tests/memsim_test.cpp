#include <gtest/gtest.h>

#include "bwc/memsim/hierarchy.h"
#include "bwc/support/error.h"

namespace bwc::memsim {
namespace {

CacheConfig tiny_l1() {
  return {.name = "L1",
          .size_bytes = 256,
          .line_bytes = 32,
          .associativity = 2};
}

TEST(CacheConfig, ValidatesGeometry) {
  CacheConfig c = tiny_l1();
  EXPECT_NO_THROW(c.validate());
  c.line_bytes = 24;  // not a power of two
  EXPECT_THROW(c.validate(), Error);
  c = tiny_l1();
  c.associativity = 3;  // 8 lines not divisible... 8/3
  EXPECT_THROW(c.validate(), Error);
  c = tiny_l1();
  EXPECT_EQ(c.num_lines(), 8u);
  EXPECT_EQ(c.num_sets(), 4u);
}

TEST(CacheLevel, ColdMissThenHit) {
  CacheLevel l1(tiny_l1());
  auto r = l1.access(0, false);
  EXPECT_FALSE(r.hit);
  EXPECT_TRUE(r.filled);
  r = l1.access(0, false);
  EXPECT_TRUE(r.hit);
  EXPECT_EQ(l1.stats().read_misses, 1u);
  EXPECT_EQ(l1.stats().read_hits, 1u);
}

TEST(CacheLevel, LruEvictionOrder) {
  // 2-way sets; three lines mapping to the same set evict the least
  // recently used.
  CacheLevel l1(tiny_l1());  // 4 sets, set = (addr/32) % 4
  const std::uint64_t a = 0;        // set 0
  const std::uint64_t b = 4 * 32;   // set 0
  const std::uint64_t c = 8 * 32;   // set 0
  l1.access(a, false);
  l1.access(b, false);
  l1.access(a, false);  // a most recent
  l1.access(c, false);  // evicts b
  EXPECT_TRUE(l1.contains(a));
  EXPECT_FALSE(l1.contains(b));
  EXPECT_TRUE(l1.contains(c));
}

TEST(CacheLevel, WriteBackMarksDirtyAndReportsVictim) {
  CacheLevel l1(tiny_l1());
  l1.access(0, true);  // write miss, allocate, dirty
  l1.access(4 * 32, false);
  auto r = l1.access(8 * 32, false);  // evicts line 0 (dirty)
  EXPECT_TRUE(r.evicted_dirty);
  EXPECT_EQ(r.evicted_line_addr, 0u);
  EXPECT_EQ(l1.stats().writebacks, 1u);
}

TEST(CacheLevel, CleanEvictionNoWriteback) {
  CacheLevel l1(tiny_l1());
  l1.access(0, false);
  l1.access(4 * 32, false);
  auto r = l1.access(8 * 32, false);
  EXPECT_FALSE(r.evicted_dirty);
  EXPECT_EQ(l1.stats().writebacks, 0u);
  EXPECT_EQ(l1.stats().evictions, 1u);
}

TEST(CacheLevel, NoWriteAllocateBypasses) {
  CacheConfig c = tiny_l1();
  c.allocate_policy = AllocatePolicy::kNoWriteAllocate;
  CacheLevel l1(c);
  auto r = l1.access(0, true);
  EXPECT_FALSE(r.hit);
  EXPECT_FALSE(r.filled);
  EXPECT_FALSE(l1.contains(0));
}

TEST(CacheLevel, WriteThroughNeverDirty) {
  CacheConfig c = tiny_l1();
  c.write_policy = WritePolicy::kWriteThrough;
  CacheLevel l1(c);
  l1.access(0, true);
  l1.access(4 * 32, false);
  auto r = l1.access(8 * 32, false);  // evicts line 0
  EXPECT_FALSE(r.evicted_dirty);
}

TEST(CacheLevel, InvalidateReportsDirty) {
  CacheLevel l1(tiny_l1());
  l1.access(0, true);
  EXPECT_TRUE(l1.invalidate(0));
  EXPECT_FALSE(l1.contains(0));
  EXPECT_FALSE(l1.invalidate(0));
}

TEST(CacheLevel, DirectMappedConflicts) {
  CacheConfig c = tiny_l1();
  c.associativity = 1;  // 8 sets
  CacheLevel l1(c);
  // Two addresses 256 bytes apart map to the same set and ping-pong.
  for (int i = 0; i < 4; ++i) {
    l1.access(0, false);
    l1.access(256, false);
  }
  EXPECT_EQ(l1.stats().read_misses, 8u);  // never a hit
}

TEST(CacheLevel, FullyAssociativeNoConflicts) {
  CacheConfig c = tiny_l1();
  c.associativity = 0;  // fully associative: 8 lines
  CacheLevel l1(c);
  for (int rep = 0; rep < 3; ++rep) {
    for (std::uint64_t i = 0; i < 8; ++i) l1.access(i * 256, false);
  }
  EXPECT_EQ(l1.stats().read_misses, 8u);
  EXPECT_EQ(l1.stats().read_hits, 16u);
}

// -- MemoryHierarchy -----------------------------------------------------------

std::vector<CacheConfig> two_level() {
  return {
      {.name = "L1", .size_bytes = 256, .line_bytes = 32, .associativity = 2},
      {.name = "L2", .size_bytes = 1024, .line_bytes = 64, .associativity = 2},
  };
}

TEST(Hierarchy, BoundaryNames) {
  MemoryHierarchy h(two_level());
  ASSERT_EQ(h.boundaries().size(), 3u);
  EXPECT_EQ(h.boundaries()[0].name, "L1-Reg");
  EXPECT_EQ(h.boundaries()[1].name, "L2-L1");
  EXPECT_EQ(h.boundaries()[2].name, "Mem-L2");
}

TEST(Hierarchy, RegisterTrafficCountsAccessBytes) {
  MemoryHierarchy h(two_level());
  h.load(0, 8);
  h.store(8, 8);
  EXPECT_EQ(h.register_traffic_bytes(), 16u);
  EXPECT_EQ(h.load_count(), 1u);
  EXPECT_EQ(h.store_count(), 1u);
}

TEST(Hierarchy, ColdReadPullsLinesThroughBothLevels) {
  MemoryHierarchy h(two_level());
  h.load(0, 8);
  // L1 miss: 32B from L2; L2 miss: 64B from memory.
  EXPECT_EQ(h.boundaries()[1].bytes_toward_cpu, 32u);
  EXPECT_EQ(h.boundaries()[2].bytes_toward_cpu, 64u);
  // Second load in same L1 line: everything hits.
  h.load(8, 8);
  EXPECT_EQ(h.boundaries()[1].bytes_toward_cpu, 32u);
  EXPECT_EQ(h.boundaries()[2].bytes_toward_cpu, 64u);
}

TEST(Hierarchy, SpatialLocalityWithinL2Line) {
  MemoryHierarchy h(two_level());
  h.load(0, 8);   // misses both
  h.load(32, 8);  // misses L1, hits L2 (same 64B L2 line)
  EXPECT_EQ(h.boundaries()[1].bytes_toward_cpu, 64u);
  EXPECT_EQ(h.boundaries()[2].bytes_toward_cpu, 64u);
}

TEST(Hierarchy, StreamingWriteTrafficIsReadPlusWriteback) {
  MemoryHierarchy h(two_level());
  // Stream-write 4 KB: every line is fetched (write-allocate) and later
  // written back when evicted. Flush by streaming a second region.
  const std::uint64_t n = 4096;
  for (std::uint64_t a = 0; a < n; a += 8) h.store(a, 8);
  for (std::uint64_t a = 100000; a < 100000 + n; a += 8) h.load(a, 8);
  const auto& mem = h.boundaries()[2];
  // Reads: 4KB (write region) + 4KB (flush region), plus at most a couple
  // of lines re-fetched when a straggler L1 writeback misses in L2.
  EXPECT_GE(mem.bytes_toward_cpu, 2 * n);
  EXPECT_LE(mem.bytes_toward_cpu, 2 * n + 128);
  // Writebacks: the whole dirty write region (allow the tail still cached).
  EXPECT_GE(mem.bytes_from_cpu, n - 1024);
  EXPECT_LE(mem.bytes_from_cpu, n);
}

TEST(Hierarchy, ReadOnlyStreamNoWritebacks) {
  MemoryHierarchy h(two_level());
  for (std::uint64_t a = 0; a < 8192; a += 8) h.load(a, 8);
  EXPECT_EQ(h.boundaries()[2].bytes_from_cpu, 0u);
  EXPECT_EQ(h.boundaries()[2].bytes_toward_cpu, 8192u);
}

TEST(Hierarchy, WritebackPropagatesToL2Counter) {
  MemoryHierarchy h(two_level());
  h.store(0, 8);  // dirty line in L1
  // Evict it by filling set 0 of L1 (4 sets of 32B lines; set stride 128).
  h.load(128, 8);
  h.load(256, 8);
  // L1->L2 boundary must show the 32B writeback.
  EXPECT_GE(h.boundaries()[1].bytes_from_cpu, 32u);
}

TEST(Hierarchy, AccessStraddlingLines) {
  MemoryHierarchy h(two_level());
  h.load(28, 8);  // crosses the 32B boundary: touches two L1 lines
  EXPECT_EQ(h.level(0).stats().read_misses, 2u);
}

TEST(Hierarchy, CachelessMachineAllTrafficToMemory) {
  MemoryHierarchy h({});
  h.load(0, 8);
  h.store(0, 8);
  ASSERT_EQ(h.boundaries().size(), 1u);
  EXPECT_EQ(h.boundaries()[0].name, "Mem-Reg");
  EXPECT_EQ(h.memory_traffic_bytes(), 16u);
}

TEST(Hierarchy, ResetStatsKeepsContents) {
  MemoryHierarchy h(two_level());
  h.load(0, 8);
  h.reset_stats();
  EXPECT_EQ(h.memory_traffic_bytes(), 0u);
  h.load(0, 8);  // still cached: no new memory traffic
  EXPECT_EQ(h.boundaries()[2].bytes_toward_cpu, 0u);
}

TEST(Hierarchy, FullResetDropsContents) {
  MemoryHierarchy h(two_level());
  h.load(0, 8);
  h.reset();
  h.load(0, 8);
  EXPECT_EQ(h.boundaries()[2].bytes_toward_cpu, 64u);  // cold again
}

TEST(Hierarchy, DiscardDirtyRangeSuppressesWriteback) {
  MemoryHierarchy h(two_level());
  for (std::uint64_t a = 0; a < 256; a += 8) h.store(a, 8);
  h.discard_dirty_range(0, 256);
  // Stream something else through; no writebacks should appear.
  for (std::uint64_t a = 100000; a < 110000; a += 8) h.load(a, 8);
  EXPECT_EQ(h.boundaries()[2].bytes_from_cpu, 0u);
  EXPECT_EQ(h.boundaries()[1].bytes_from_cpu, 0u);
}

TEST(Hierarchy, DescribeMentionsLevelsAndBoundaries) {
  MemoryHierarchy h(two_level());
  h.load(0, 8);
  const std::string d = describe(h);
  EXPECT_NE(d.find("L1"), std::string::npos);
  EXPECT_NE(d.find("Mem-L2"), std::string::npos);
}

}  // namespace
}  // namespace bwc::memsim
