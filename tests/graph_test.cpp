#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "bwc/graph/digraph.h"
#include "bwc/graph/flow_network.h"
#include "bwc/graph/hyper_cut.h"
#include "bwc/graph/hypergraph.h"
#include "bwc/graph/random_graphs.h"
#include "bwc/graph/undirected_graph.h"
#include "bwc/graph/vertex_cut.h"
#include "bwc/support/error.h"
#include "bwc/support/prng.h"

namespace bwc::graph {
namespace {

// -- FlowNetwork ------------------------------------------------------------

TEST(FlowNetwork, SingleEdge) {
  FlowNetwork net(2);
  net.add_edge(0, 1, 5);
  EXPECT_EQ(net.max_flow(0, 1), 5);
}

TEST(FlowNetwork, ParallelAndSeries) {
  FlowNetwork net(3);
  net.add_edge(0, 1, 3);
  net.add_edge(0, 1, 4);  // parallel: 7 into node 1
  net.add_edge(1, 2, 5);  // series bottleneck
  EXPECT_EQ(net.max_flow(0, 2), 5);
}

TEST(FlowNetwork, ClassicDiamond) {
  FlowNetwork net(4);
  net.add_edge(0, 1, 10);
  net.add_edge(0, 2, 10);
  net.add_edge(1, 3, 10);
  net.add_edge(2, 3, 10);
  net.add_edge(1, 2, 1);
  EXPECT_EQ(net.max_flow(0, 3), 20);
}

TEST(FlowNetwork, DisconnectedIsZero) {
  FlowNetwork net(4);
  net.add_edge(0, 1, 3);
  net.add_edge(2, 3, 3);
  EXPECT_EQ(net.max_flow(0, 3), 0);
  EXPECT_TRUE(net.source_side()[0]);
  EXPECT_TRUE(net.source_side()[1]);
  EXPECT_FALSE(net.source_side()[3]);
}

TEST(FlowNetwork, MinCutEdgesAreSaturatedAndSeparate) {
  FlowNetwork net(4);
  net.add_edge(0, 1, 2);
  net.add_edge(0, 2, 3);
  net.add_edge(1, 3, 4);
  net.add_edge(2, 3, 1);
  const auto flow = net.max_flow(0, 3);
  EXPECT_EQ(flow, 3);  // cut {0->1 (2), 2->3 (1)}
  Capacity cut_weight = 0;
  for (int e : net.min_cut_edges()) {
    // After max flow, cut edges have zero residual.
    EXPECT_EQ(net.edge(e).capacity, 0);
    cut_weight += 0;  // capacities recorded below via re-derivation
  }
  EXPECT_EQ(net.min_cut_edges().size(), 2u);
}

TEST(FlowNetwork, RerunResetsFlow) {
  FlowNetwork net(2);
  net.add_edge(0, 1, 5);
  EXPECT_EQ(net.max_flow(0, 1), 5);
  EXPECT_EQ(net.max_flow(0, 1), 5);  // must not accumulate
}

TEST(FlowNetwork, RejectsBadArguments) {
  FlowNetwork net(2);
  EXPECT_THROW(net.add_edge(0, 5, 1), Error);
  EXPECT_THROW(net.add_edge(0, 1, -1), Error);
  net.add_edge(0, 1, 1);
  EXPECT_THROW(net.max_flow(0, 0), Error);
}

// Max-flow equals min-cut on random graphs (weak duality check: any
// partition's crossing capacity >= flow; source-side partition achieves it).
TEST(FlowNetwork, MaxFlowMinCutDualityRandom) {
  Prng rng(123);
  for (int trial = 0; trial < 30; ++trial) {
    const int n = 6;
    FlowNetwork net(n);
    struct E {
      int u, v;
      Capacity c;
    };
    std::vector<E> edges;
    for (int u = 0; u < n; ++u) {
      for (int v = 0; v < n; ++v) {
        if (u != v && rng.chance(0.4)) {
          const Capacity c = rng.uniform_in(1, 9);
          net.add_edge(u, v, c);
          edges.push_back({u, v, c});
        }
      }
    }
    const Capacity flow = net.max_flow(0, n - 1);
    const auto& side = net.source_side();
    Capacity crossing = 0;
    for (const auto& e : edges) {
      if (side[static_cast<std::size_t>(e.u)] &&
          !side[static_cast<std::size_t>(e.v)])
        crossing += e.c;
    }
    EXPECT_EQ(crossing, flow) << "trial " << trial;
  }
}

// -- UndirectedGraph ----------------------------------------------------------

TEST(UndirectedGraph, BasicsAndComponents) {
  UndirectedGraph g(5);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(3, 4);
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_FALSE(g.has_edge(0, 3));
  EXPECT_TRUE(g.connected(0, 2));
  EXPECT_FALSE(g.connected(0, 4));
  const auto comp = g.components();
  EXPECT_EQ(comp[0], comp[2]);
  EXPECT_NE(comp[0], comp[3]);
}

TEST(UndirectedGraph, RejectsSelfLoop) {
  UndirectedGraph g(2);
  EXPECT_THROW(g.add_edge(1, 1), Error);
}

// -- Digraph ------------------------------------------------------------------

TEST(Digraph, TopologicalOrderOfDag) {
  Digraph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(0, 3);
  g.add_edge(3, 2);
  const auto order = g.topological_order();
  ASSERT_TRUE(order.has_value());
  std::vector<int> pos(4);
  for (int i = 0; i < 4; ++i) pos[static_cast<std::size_t>((*order)[i])] = i;
  EXPECT_LT(pos[0], pos[1]);
  EXPECT_LT(pos[1], pos[2]);
  EXPECT_LT(pos[3], pos[2]);
}

TEST(Digraph, DetectsCycle) {
  Digraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 0);
  EXPECT_FALSE(g.is_acyclic());
}

TEST(Digraph, Reachability) {
  Digraph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  const auto r = g.reachable_from(0);
  EXPECT_TRUE(r[1]);
  EXPECT_TRUE(r[2]);
  EXPECT_FALSE(r[3]);
  EXPECT_FALSE(r[0]);  // no self-cycle
}

TEST(Digraph, DeduplicatesEdges) {
  Digraph g(2);
  g.add_edge(0, 1);
  g.add_edge(0, 1);
  EXPECT_EQ(g.successors(0).size(), 1u);
}

// -- Vertex cut ----------------------------------------------------------------

TEST(VertexCut, PathGraphCutsMiddle) {
  // 0 - 1 - 2: only vertex 1 separates 0 from 2.
  UndirectedGraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  const auto cut = min_vertex_cut(g, 0, 2);
  EXPECT_EQ(cut.cut_weight, 1);
  ASSERT_EQ(cut.cut_vertices.size(), 1u);
  EXPECT_EQ(cut.cut_vertices[0], 1);
}

TEST(VertexCut, TwoDisjointPaths) {
  // 0-1-3 and 0-2-3: need both middles.
  UndirectedGraph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 3);
  g.add_edge(0, 2);
  g.add_edge(2, 3);
  const auto cut = min_vertex_cut(g, 0, 3);
  EXPECT_EQ(cut.cut_weight, 2);
  EXPECT_EQ(cut.cut_vertices.size(), 2u);
}

TEST(VertexCut, WeightedPrefersCheaperVertex) {
  // Two parallel 2-hop paths, one expensive and one cheap.
  UndirectedGraph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 3);
  g.add_edge(0, 2);
  g.add_edge(2, 3);
  const auto cut = min_vertex_cut(g, 0, 3, {0, 10, 3, 0});
  EXPECT_EQ(cut.cut_weight, 13);  // must cut both paths
}

TEST(VertexCut, AdjacentTerminalsThrow) {
  UndirectedGraph g(2);
  g.add_edge(0, 1);
  EXPECT_THROW(min_vertex_cut(g, 0, 1), Error);
}

TEST(VertexCut, DisconnectedTerminalsZeroCut) {
  UndirectedGraph g(2);
  const auto cut = min_vertex_cut(g, 0, 1);
  EXPECT_EQ(cut.cut_weight, 0);
  EXPECT_TRUE(cut.cut_vertices.empty());
}

TEST(VertexCut, RemovalDisconnectsProperty) {
  Prng rng(99);
  for (int trial = 0; trial < 25; ++trial) {
    UndirectedGraph g = random_undirected(rng, 8, 0.35);
    if (g.has_edge(0, 7)) continue;
    const auto cut = min_vertex_cut(g, 0, 7);
    // Rebuild without cut vertices; 0 and 7 must be disconnected.
    std::set<int> removed(cut.cut_vertices.begin(), cut.cut_vertices.end());
    UndirectedGraph h(g.node_count());
    for (int e = 0; e < g.edge_count(); ++e) {
      if (removed.count(g.edge_u(e)) || removed.count(g.edge_v(e))) continue;
      h.add_edge(g.edge_u(e), g.edge_v(e));
    }
    EXPECT_FALSE(h.connected(0, 7)) << "trial " << trial;
  }
}

// -- Hypergraph ------------------------------------------------------------------

TEST(Hypergraph, PinsAndIncidence) {
  Hypergraph g(4);
  const int e0 = g.add_edge({0, 1, 2}, 2, "A");
  const int e1 = g.add_edge({2, 3});
  EXPECT_EQ(g.pins(e0).size(), 3u);
  EXPECT_EQ(g.weight(e0), 2);
  EXPECT_EQ(g.label(e0), "A");
  EXPECT_TRUE(g.edge_contains(e0, 1));
  EXPECT_FALSE(g.edge_contains(e1, 0));
  EXPECT_TRUE(g.edges_overlap(e0, e1));
  EXPECT_EQ(g.incident_edges(2).size(), 2u);
  EXPECT_EQ(g.total_weight(), 3);
}

TEST(Hypergraph, DeduplicatesPins) {
  Hypergraph g(3);
  const int e = g.add_edge({1, 1, 2, 2});
  EXPECT_EQ(g.pins(e).size(), 2u);
}

TEST(Hypergraph, ConnectivityThroughHyperedges) {
  Hypergraph g(5);
  g.add_edge({0, 1});
  g.add_edge({1, 2, 3});
  EXPECT_TRUE(g.connected(0, 3));
  EXPECT_FALSE(g.connected(0, 4));
  // Removing the bridging edge disconnects.
  std::vector<bool> removed = {false, true};
  EXPECT_FALSE(g.connected(0, 3, removed));
}

TEST(Hypergraph, PartitionCostIsTotalEdgeLength) {
  Hypergraph g(4);
  g.add_edge({0, 1, 2, 3});  // spans both partitions: length 2
  g.add_edge({0, 1});        // inside partition 0: length 1
  g.add_edge({3});           // singleton: length 1
  const std::vector<int> assignment = {0, 0, 1, 1};
  EXPECT_EQ(partition_cost(g, assignment), 4);
}

TEST(Hypergraph, PartitionCostWeighted) {
  Hypergraph g(2);
  g.add_edge({0, 1}, 5);
  EXPECT_EQ(partition_cost(g, {0, 1}), 10);
  EXPECT_EQ(partition_cost(g, {0, 0}), 5);
}

// -- Hyper-edge min cut (the paper's Figure 5 algorithm) -------------------------

TEST(HyperCut, SimpleBridge) {
  Hypergraph g(3);
  g.add_edge({0, 1});
  g.add_edge({1, 2});
  const auto cut = min_hyperedge_cut(g, 0, 2);
  EXPECT_EQ(cut.cut_weight, 1);
  EXPECT_EQ(cut.cut_edges.size(), 1u);
}

TEST(HyperCut, SharedEdgeContainingBothTerminals) {
  Hypergraph g(3);
  g.add_edge({0, 1, 2});  // contains both s and t: must be cut
  const auto cut = min_hyperedge_cut(g, 0, 2);
  EXPECT_EQ(cut.cut_weight, 1);
  ASSERT_EQ(cut.cut_edges.size(), 1u);
  EXPECT_EQ(cut.cut_edges[0], 0);
}

TEST(HyperCut, DisconnectedTerminals) {
  Hypergraph g(4);
  g.add_edge({0, 1});
  g.add_edge({2, 3});
  const auto cut = min_hyperedge_cut(g, 0, 3);
  EXPECT_EQ(cut.cut_weight, 0);
  EXPECT_TRUE(cut.cut_edges.empty());
}

TEST(HyperCut, WeightsRespected) {
  // Two routes 0->2: one via a weight-1 edge pair, one heavy hyperedge.
  Hypergraph g(4);
  g.add_edge({0, 1}, 1);
  g.add_edge({1, 2}, 1);
  g.add_edge({0, 3, 2}, 5);
  const auto cut = min_hyperedge_cut(g, 0, 2);
  // Best: cut one light edge (1) + the heavy one must also be cut since it
  // directly connects 0 and 2 -> weight 6; check against brute force.
  const auto ref = min_hyperedge_cut_bruteforce(g, 0, 2);
  EXPECT_EQ(cut.cut_weight, ref.cut_weight);
}

TEST(HyperCut, CutSeparatesAndMatchesPartitionCost) {
  Prng rng(2024);
  for (int trial = 0; trial < 40; ++trial) {
    Hypergraph g = random_hypergraph(rng, 7, 9, 2, 4);
    const auto cut = min_hyperedge_cut(g, 0, 6);
    // Removing the cut edges disconnects the terminals.
    std::vector<bool> removed(static_cast<std::size_t>(g.edge_count()), false);
    for (int e : cut.cut_edges) removed[static_cast<std::size_t>(e)] = true;
    EXPECT_FALSE(g.connected(0, 6, removed)) << "trial " << trial;
    // Sides partition the node set.
    EXPECT_EQ(cut.source_side.size() + cut.sink_side.size(),
              static_cast<std::size_t>(g.node_count()));
  }
}

// The headline property: the polynomial Figure 5 algorithm is exact.
TEST(HyperCut, MatchesBruteForceRandom) {
  Prng rng(555);
  for (int trial = 0; trial < 60; ++trial) {
    const int nodes = 3 + static_cast<int>(rng.uniform(5));  // 3..7
    const int edges = 2 + static_cast<int>(rng.uniform(8));  // 2..9
    Hypergraph g = random_hypergraph(rng, nodes, edges, 1,
                                     std::min(nodes, 4),
                                     /*max_weight=*/4);
    const auto fast = min_hyperedge_cut(g, 0, nodes - 1);
    const auto ref = min_hyperedge_cut_bruteforce(g, 0, nodes - 1);
    EXPECT_EQ(fast.cut_weight, ref.cut_weight) << "trial " << trial;
  }
}

TEST(RandomGraphs, RespectParameters) {
  Prng rng(1);
  const Hypergraph h = random_hypergraph(rng, 10, 5, 2, 3);
  EXPECT_EQ(h.node_count(), 10);
  EXPECT_EQ(h.edge_count(), 5);
  for (int e = 0; e < h.edge_count(); ++e) {
    EXPECT_GE(h.pins(e).size(), 2u);
    EXPECT_LE(h.pins(e).size(), 3u);
  }
  const Digraph d = random_dag(rng, 12, 0.3);
  EXPECT_TRUE(d.is_acyclic());
}

}  // namespace
}  // namespace bwc::graph
