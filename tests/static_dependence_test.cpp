// Unit tests for the symbolic dependence engine (verify/static_dependence):
// the bounded-linear-system solver and its classical refutation tests,
// pairwise conflict systems with scheduling constraints, guard-refined
// site/reference collection, the program-level dependence summary, and the
// byte-linear parallel-safety certificate for stream loops.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "bwc/ir/dsl.h"
#include "bwc/verify/static_dependence.h"
#include "bwc/workloads/paper_programs.h"

namespace bwc::verify {
namespace {

using namespace ir::dsl;  // NOLINT
using ir::ArrayId;
using ir::Program;

// -- solve_system -------------------------------------------------------------

TEST(SolveSystem, EmptyDomainIsIndependent) {
  VarDomain d = VarDomain::range(5, 10);
  d.clip(20, 30);  // leaves no legal value
  const Feasibility f = solve_system({d}, {{{{0, 1}}, 0}});
  EXPECT_EQ(f.verdict, Verdict::kIndependent);
  EXPECT_STREQ(f.decided_by, "empty-domain");
}

TEST(SolveSystem, ZivRefutesConstantContradiction) {
  // No variables: 0 + 3 == 0 is false.
  const Feasibility f = solve_system({}, {{{}, 3}});
  EXPECT_EQ(f.verdict, Verdict::kIndependent);
}

TEST(SolveSystem, GcdRefutesParityConflict) {
  // 2i - 4j + 1 == 0: gcd(2, 4) = 2 does not divide 1.
  const Feasibility f =
      solve_system({VarDomain::range(0, 100), VarDomain::range(0, 100)},
                   {{{{0, 2}, {1, -4}}, 1}});
  EXPECT_EQ(f.verdict, Verdict::kIndependent);
}

TEST(SolveSystem, BanerjeeRefutesOutOfRangeConstant) {
  // i - j + 100 == 0 with i, j in [0, 9]: i - j ranges over [-9, 9].
  const Feasibility f =
      solve_system({VarDomain::range(0, 9), VarDomain::range(0, 9)},
                   {{{{0, 1}, {1, -1}}, 100}});
  EXPECT_EQ(f.verdict, Verdict::kIndependent);
}

TEST(SolveSystem, WitnessSearchFindsInDomainSolution) {
  // i - j == 0 with i in [0, 9], j in [5, 20]: solutions i = j in [5, 9].
  const Feasibility f =
      solve_system({VarDomain::range(0, 9), VarDomain::range(5, 20)},
                   {{{{0, 1}, {1, -1}}, 0}});
  ASSERT_EQ(f.verdict, Verdict::kDependent);
  ASSERT_EQ(f.witness.size(), 2u);
  EXPECT_EQ(f.witness[0], f.witness[1]);
  EXPECT_GE(f.witness[0], 5);
  EXPECT_LE(f.witness[0], 9);
}

TEST(SolveSystem, WitnessRespectsDomainHoles) {
  // i == j, i in [0, 4] u [8, 9], j in [5, 8]: only i = j = 8 works.
  VarDomain holes;
  holes.ranges = {{0, 4}, {8, 9}};
  const Feasibility f = solve_system({holes, VarDomain::range(5, 8)},
                                     {{{{0, 1}, {1, -1}}, 0}});
  ASSERT_EQ(f.verdict, Verdict::kDependent);
  EXPECT_EQ(f.witness[0], 8);
  EXPECT_EQ(f.witness[1], 8);
}

TEST(SolveSystem, UnconstrainedSystemIsDependent) {
  // No equations: any domain point is a witness.
  const Feasibility f = solve_system({VarDomain::range(3, 7)}, {});
  ASSERT_EQ(f.verdict, Verdict::kDependent);
  EXPECT_GE(f.witness[0], 3);
  EXPECT_LE(f.witness[0], 7);
}

// -- VarDomain ----------------------------------------------------------------

TEST(VarDomainTest, UnionBookkeeping) {
  VarDomain d;
  d.ranges = {{0, 4}, {10, 12}};
  EXPECT_FALSE(d.empty());
  EXPECT_EQ(d.size(), 8);
  EXPECT_TRUE(d.contains(4));
  EXPECT_FALSE(d.contains(5));
  EXPECT_TRUE(d.contains(10));
  EXPECT_EQ(d.hull().lo, 0);
  EXPECT_EQ(d.hull().hi, 12);
  d.clip(3, 11);
  EXPECT_EQ(d.size(), 4);  // {3, 4} u {10, 11}
  EXPECT_FALSE(d.contains(12));
}

// -- PairSystem ---------------------------------------------------------------

AffineRef array_ref(const std::string& array, std::int64_t coeff,
                    std::int64_t offset, std::int64_t lo, std::int64_t hi,
                    bool write) {
  AffineRef r;
  r.loop_vars = {"i"};
  r.domains = {VarDomain::range(lo, hi)};
  r.subscripts = {ir::Affine::var("i", coeff, offset)};
  r.array = array;
  r.write = write;
  return r;
}

TEST(PairSystemTest, DisjointOffsetRangesAreIndependent) {
  // write a[i], i in [0, 9] vs read a[i + 10], i in [0, 9].
  const AffineRef w = array_ref("a", 1, 0, 0, 9, true);
  const AffineRef r = array_ref("a", 1, 10, 0, 9, false);
  PairSystem sys(w, r);
  EXPECT_EQ(sys.solve().verdict, Verdict::kIndependent);
}

TEST(PairSystemTest, StrideParityIsIndependent) {
  // write a[2i] vs read a[2i + 1]: even vs odd elements.
  const AffineRef w = array_ref("a", 2, 0, 0, 99, true);
  const AffineRef r = array_ref("a", 2, 1, 0, 99, false);
  PairSystem sys(w, r);
  EXPECT_EQ(sys.solve().verdict, Verdict::kIndependent);
}

TEST(PairSystemTest, OverlapYieldsWitness) {
  // write a[i] vs read a[i - 1]: element 5 written at i=5, read at i=6.
  const AffineRef w = array_ref("a", 1, 0, 0, 9, true);
  const AffineRef r = array_ref("a", 1, -1, 0, 9, false);
  PairSystem sys(w, r);
  const Feasibility f = sys.solve();
  ASSERT_EQ(f.verdict, Verdict::kDependent);
  ASSERT_GE(f.witness.size(), 2u);
  EXPECT_EQ(f.witness[0], f.witness[1] - 1);
}

TEST(PairSystemTest, BoundDifferenceCutsSameSubscriptPairs) {
  // Same subscript forces i_a == i_b; additionally requiring
  // i_b - i_a >= 1 makes the system infeasible.
  const AffineRef w = array_ref("a", 1, 0, 0, 9, true);
  const AffineRef r = array_ref("a", 1, 0, 0, 9, false);
  PairSystem sys(w, r);
  sys.bound_difference(sys.a_var(0), 0, sys.b_var(0), 0,
                       {1, std::int64_t{1} << 40});
  EXPECT_EQ(sys.solve().verdict, Verdict::kIndependent);
}

TEST(PairSystemTest, DimensionMismatchIsUnknown) {
  AffineRef w = array_ref("a", 1, 0, 0, 9, true);
  AffineRef r = array_ref("a", 1, 0, 0, 9, false);
  r.subscripts.push_back(ir::Affine::constant(0));
  PairSystem sys(w, r);
  EXPECT_FALSE(sys.well_formed());
  EXPECT_EQ(sys.solve().verdict, Verdict::kUnknown);
}

TEST(PairSystemTest, InexactDomainsDisableDependenceProofs) {
  // Over-approximated domains keep independence sound but must not
  // produce a dependence witness.
  AffineRef w = array_ref("a", 1, 0, 0, 9, true);
  w.exact_domain = false;
  const AffineRef r = array_ref("a", 1, -1, 0, 9, false);
  PairSystem sys(w, r);
  EXPECT_NE(sys.solve().verdict, Verdict::kDependent);
}

// -- collect_assign_sites / collect_refs --------------------------------------

TEST(CollectSites, GuardRefinesLoopDomain) {
  Program p("t");
  const ArrayId a = p.add_array("a", {100});
  p.append(loop("i", 0, 99,
                when(ir::CmpOp::kGe, v("i"), k(50),
                     assign(a, {v("i")}, lvar("i")))));
  const SiteWalk walk = collect_assign_sites(*p.top()[0]);
  ASSERT_EQ(walk.sites.size(), 1u);
  const AssignSite& site = walk.sites[0];
  ASSERT_EQ(site.domains.size(), 1u);
  EXPECT_EQ(site.domains[0].hull().lo, 50);
  EXPECT_EQ(site.domains[0].hull().hi, 99);
  EXPECT_TRUE(site.exact_domain);
  EXPECT_EQ(walk.unreachable_guards, 0);
}

TEST(CollectSites, EmptyGuardArmIsUnreachable) {
  Program p("t");
  const ArrayId a = p.add_array("a", {100});
  p.append(loop("i", 0, 99,
                when(ir::CmpOp::kGe, v("i"), k(500),
                     assign(a, {v("i")}, lvar("i")))));
  const SiteWalk walk = collect_assign_sites(*p.top()[0]);
  EXPECT_TRUE(walk.sites.empty());
  EXPECT_EQ(walk.unreachable_guards, 1);
}

TEST(CollectRefs, ReductionShapeIsDetected) {
  Program p("t");
  const ArrayId a = p.add_array("a", {64});
  p.add_scalar("s");
  p.mark_output_scalar("s");
  p.append(loop("i", 0, 63, assign("s", sref("s") + at(a, v("i")))));
  const RefSet refs = collect_refs(p, *p.top()[0]);
  bool saw_reduction_write = false;
  for (const AffineRef& r : refs.refs) {
    if (r.scalar == "s" && r.write) {
      saw_reduction_write = true;
      EXPECT_TRUE(r.reduction);
      EXPECT_EQ(r.reduction_op, ir::BinOp::kAdd);
    }
  }
  EXPECT_TRUE(saw_reduction_write);
}

// -- summarize_dependences ----------------------------------------------------

TEST(SummarizeDependences, Fig7PairsAreDecided) {
  const DependenceSummary s =
      summarize_dependences(workloads::fig7_original(1000));
  EXPECT_GT(s.pairs.size(), 0u);
  EXPECT_EQ(s.unknown, 0);
  EXPECT_EQ(s.inexact_refs, 0);
  // The producer/consumer pair on `res` must be recognized as dependent.
  bool res_dependent = false;
  for (const StmtDependence& d : s.pairs)
    res_dependent = res_dependent ||
                    (d.array == "res" && d.verdict == Verdict::kDependent);
  EXPECT_TRUE(res_dependent);
}

TEST(SummarizeDependences, DisjointLoopsAreIndependent) {
  Program p("t");
  const ArrayId a = p.add_array("a", {200});
  p.mark_output_array(a);
  // Two loops writing disjoint halves of one array.
  p.append(loop("i", 0, 99, assign(a, {v("i")}, lvar("i"))));
  p.append(loop("i", 0, 99, assign(a, {v("i", 100)}, lvar("i"))));
  const DependenceSummary s = summarize_dependences(p);
  for (const StmtDependence& d : s.pairs) {
    if (d.stmt_a == 0 && d.stmt_b == 1)
      EXPECT_EQ(d.verdict, Verdict::kIndependent) << d.array;
  }
  EXPECT_EQ(s.unknown, 0);
}

// -- certify_parallel_accesses ------------------------------------------------

LinearAccess acc(bool write, std::int64_t base, std::int64_t coeff,
                 std::int64_t elem = 8, int space = 0) {
  LinearAccess a;
  a.write = write;
  a.base = base;
  a.coeff = coeff;
  a.elem_bytes = elem;
  a.space = space;
  return a;
}

TEST(ParallelCertificate, DisjointSpacesAreSafe) {
  // y[i] = x[i]: write and read in different arrays.
  const Verdict v = certify_parallel_accesses(
      {acc(true, 0, 8, 8, 0), acc(false, 0, 8, 8, 1)}, 0, 999);
  EXPECT_EQ(v, Verdict::kIndependent);
}

TEST(ParallelCertificate, UnitStrideWriteIsSafe) {
  // Distinct iterations write distinct bytes.
  const Verdict v = certify_parallel_accesses({acc(true, 0, 8)}, 0, 999);
  EXPECT_EQ(v, Verdict::kIndependent);
}

TEST(ParallelCertificate, BroadcastWriteIsUnsafe) {
  // coeff == 0: every iteration writes the same bytes.
  const Verdict v = certify_parallel_accesses({acc(true, 0, 0)}, 0, 999);
  EXPECT_EQ(v, Verdict::kDependent);
}

TEST(ParallelCertificate, ShiftedReadOfWrittenArrayIsUnsafe) {
  // a[i] = f(a[i + 1]): iteration i reads what iteration i + 1 writes.
  const Verdict v = certify_parallel_accesses(
      {acc(true, 0, 8, 8, 0), acc(false, 8, 8, 8, 0)}, 0, 999);
  EXPECT_EQ(v, Verdict::kDependent);
}

TEST(ParallelCertificate, StridedWritesLeaveGaps) {
  // 8-byte writes with a 16-byte stride never collide across iterations.
  const Verdict v = certify_parallel_accesses({acc(true, 0, 16)}, 0, 999);
  EXPECT_EQ(v, Verdict::kIndependent);
}

TEST(ParallelCertificate, ReadOnlyLoopIsSafe) {
  const Verdict v = certify_parallel_accesses(
      {acc(false, 0, 8, 8, 0), acc(false, 0, 8, 8, 0)}, 0, 999);
  EXPECT_EQ(v, Verdict::kIndependent);
}

}  // namespace
}  // namespace bwc::verify
