// Seed-corpus generator for the frame fuzz harness: dumps framed wire
// images of real protocol traffic -- valid requests over every op,
// malformed JSON, truncated frames, oversized prefixes -- so the fuzzer
// starts from inputs that already reach deep protocol states.
//
//   make_frame_corpus <dir>
//
// Each file starts with one chunk-selector byte (frame_fuzz.cpp) before
// the wire bytes.
#include <fstream>
#include <iostream>
#include <string>

#include "bwc/ir/printer.h"
#include "bwc/server/frame.h"
#include "bwc/server/protocol.h"
#include "bwc/workloads/paper_programs.h"

namespace {

int write_seed(const std::string& dir, const std::string& name,
               const std::string& wire) {
  const std::string path = dir + "/" + name + ".wire";
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::cerr << "cannot write " << path << "\n";
    return 1;
  }
  out << '\x03' << wire;  // selector 3: feed everything in one chunk
  std::cout << path << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::cerr << "usage: make_frame_corpus <dir>\n";
    return 2;
  }
  using bwc::server::encode_frame;
  using bwc::server::render_request;
  using bwc::server::Request;
  const std::string dir = argv[1];
  int rc = 0;

  Request ping;
  ping.op = Request::Op::kPing;
  rc |= write_seed(dir, "ping", encode_frame(render_request(ping)));

  Request stats;
  stats.op = Request::Op::kStats;
  rc |= write_seed(dir, "stats", encode_frame(render_request(stats)));

  Request optimize;
  optimize.op = Request::Op::kOptimize;
  optimize.program = bwc::ir::to_string(bwc::workloads::fig7_original(64));
  rc |= write_seed(dir, "optimize", encode_frame(render_request(optimize)));

  Request tuned = optimize;
  tuned.pipeline = "interchange,fuse(solver=exact),reduce-storage";
  tuned.machine = "exemplar";
  tuned.cores = 4;
  tuned.scale = 8;
  tuned.engine = "reference";
  tuned.measure = false;
  tuned.timeout_ms = 1000;
  rc |= write_seed(dir, "optimize_tuned",
                   encode_frame(render_request(tuned)));

  rc |= write_seed(dir, "two_frames", encode_frame(render_request(ping)) +
                                          encode_frame(render_request(stats)));
  rc |= write_seed(dir, "empty_frame", encode_frame(""));
  rc |= write_seed(dir, "bad_json", encode_frame("{not json"));
  rc |= write_seed(dir, "bad_schema",
                   encode_frame(R"({"op":"optimize","cores":-1})"));
  rc |= write_seed(dir, "unicode",
                   encode_frame("\"\\ud83d\\ude00 caf\xc3\xa9\""));
  rc |= write_seed(dir, "truncated",
                   encode_frame(render_request(ping)).substr(0, 9));
  rc |= write_seed(dir, "oversized", std::string("\xff\xff\xff\xff", 4));
  rc |= write_seed(dir, "deep_nest",
                   encode_frame("[[[[[[[[[[[[[[[[[[[[1]]]]]]]]]]]]]]]]]]]]"));
  return rc;
}
