// libFuzzer harness for the PipelineSpec parser (pass/pipeline_spec.h).
//
// The autotuner treats spec strings as its genome and the daemon accepts
// them over the wire, so the parser must never crash, hang, or trip a
// sanitizer: malformed input has exactly one legal outcome, a thrown
// bwc::Error. When the input does parse, the render/parse round trip is
// checked too: to_string of the parsed spec must itself parse, reproduce
// the same spec, and re-render to a fixpoint. (A parsed spec is always
// representable -- values cannot contain the grammar's delimiters -- so
// to_string throwing here is a bug, caught by the abort.)
//
// Built behind -DBWC_FUZZ=ON (see tests/CMakeLists.txt). With a Clang
// toolchain the target links libFuzzer; other compilers get a standalone
// driver that replays corpus files as a regression check.
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <string>

#include "bwc/pass/pipeline_spec.h"
#include "bwc/support/error.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size > 1 << 14) return 0;  // parse time is linear; keep inputs small
  const std::string text(reinterpret_cast<const char*>(data), size);
  try {
    const bwc::pass::PipelineSpec spec =
        bwc::pass::parse_pipeline_spec(text);
    // Accepted input: canonical rendering must reach a fixpoint.
    const std::string rendered = spec.to_string();
    const bwc::pass::PipelineSpec reparsed =
        bwc::pass::parse_pipeline_spec(rendered);
    if (reparsed.to_string() != rendered) std::abort();
    if (reparsed.passes.size() != spec.passes.size()) std::abort();
  } catch (const bwc::Error&) {
    // Malformed input: rejection via bwc::Error is the contract.
  }
  return 0;
}

#ifdef BWC_FUZZ_STANDALONE
// Non-Clang builds: replay corpus files one by one instead of fuzzing.
#include <fstream>
#include <iostream>
#include <sstream>

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::ifstream in(argv[i], std::ios::binary);
    if (!in) {
      std::cerr << "cannot open " << argv[i] << "\n";
      return 2;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string text = buffer.str();
    LLVMFuzzerTestOneInput(
        reinterpret_cast<const std::uint8_t*>(text.data()), text.size());
    std::cout << "ok: " << argv[i] << " (" << text.size() << " bytes)\n";
  }
  return 0;
}
#endif
