// libFuzzer harness for the bwcd wire surface: frame reassembly
// (server/frame.h), JSON parsing (server/json.h), and request schema
// validation (server/protocol.h) -- the exact byte path an untrusted
// client drives. The contracts under fuzz:
//
//   - FrameReader never crashes, hangs, or reads out of bounds, no
//     matter how the input is chunked; kOversized is sticky.
//   - parse_request has exactly two outcomes: a valid Request or a
//     thrown bwc::Error ("[bad-json]" / "[bad-request]").
//   - An accepted request re-renders and re-parses to the same request
//     (render_request/parse_request round trip), and a response built
//     from it renders and parses cleanly -- so nothing a client can
//     send produces bytes the daemon cannot answer.
//
// Built behind -DBWC_FUZZ=ON (see tests/CMakeLists.txt). With Clang the
// target links libFuzzer; other compilers get a standalone driver that
// replays corpus files, so the seed corpus doubles as a regression
// suite.
#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <string>

#include "bwc/server/frame.h"
#include "bwc/server/protocol.h"
#include "bwc/support/error.h"

namespace {

/// The first input byte picks the feed chunking, so the fuzzer explores
/// reassembly boundaries as well as payload contents.
std::size_t chunk_size(std::uint8_t selector, std::size_t size) {
  switch (selector & 3) {
    case 0: return 1;
    case 1: return 7;
    case 2: return 4096;
    default: return size > 0 ? size : 1;
  }
}

void check_request_payload(const std::string& payload) {
  using bwc::server::Request;
  try {
    const Request request = bwc::server::parse_request(payload);
    // Accepted: the render/parse round trip must reach a fixpoint.
    const std::string rendered = bwc::server::render_request(request);
    const Request reparsed = bwc::server::parse_request(rendered);
    if (bwc::server::render_request(reparsed) != rendered) std::abort();
    // And a response carrying this payload as its error detail must
    // render and parse cleanly (escaping torture).
    bwc::server::Response response;
    response.status = "error";
    response.error = payload.substr(0, 256);
    const bwc::server::Response back =
        bwc::server::parse_response(bwc::server::render_response(response));
    if (back.error != response.error) std::abort();
  } catch (const bwc::Error&) {
    // Malformed input: rejection via bwc::Error is the contract.
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size == 0 || size > (1 << 18)) return 0;
  const std::size_t chunk = chunk_size(data[0], size - 1);
  const char* bytes = reinterpret_cast<const char*>(data + 1);
  const std::size_t wire_size = size - 1;

  bwc::server::FrameReader reader;
  bool poisoned = false;
  std::size_t fed = 0;
  while (fed < wire_size) {
    const std::size_t n = std::min(chunk, wire_size - fed);
    reader.feed(bytes + fed, n);
    fed += n;
    std::string payload;
    while (true) {
      const bwc::server::FrameStatus status = reader.next(&payload);
      if (status == bwc::server::FrameStatus::kNeedMore) break;
      if (status == bwc::server::FrameStatus::kOversized) {
        poisoned = true;
        break;
      }
      check_request_payload(payload);
    }
    if (poisoned) {
      // Sticky: every further probe must keep reporting kOversized.
      if (reader.next(&payload) != bwc::server::FrameStatus::kOversized)
        std::abort();
      break;
    }
  }
  return 0;
}

#ifdef BWC_FUZZ_STANDALONE
// Non-Clang builds: replay corpus files one by one instead of fuzzing.
#include <fstream>
#include <iostream>
#include <sstream>

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::ifstream in(argv[i], std::ios::binary);
    if (!in) {
      std::cerr << "cannot open " << argv[i] << "\n";
      return 2;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string text = buffer.str();
    LLVMFuzzerTestOneInput(
        reinterpret_cast<const std::uint8_t*>(text.data()), text.size());
    std::cout << "ok: " << argv[i] << " (" << text.size() << " bytes)\n";
  }
  return 0;
}
#endif
