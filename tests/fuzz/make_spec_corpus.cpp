// Seed-corpus generator for the PipelineSpec fuzz harness: dumps the
// autotuner's gene pool, the default pipeline, and a spread of mutated /
// crossed-over genomes, so the fuzzer starts from inputs covering the
// whole grammar (params, multi-pass lists, every registered pass name).
//
//   make_spec_corpus <dir>
#include <fstream>
#include <iostream>
#include <string>

#include "bwc/core/optimizer.h"
#include "bwc/support/prng.h"
#include "bwc/tune/search_space.h"

namespace {

int write_seed(const std::string& dir, const std::string& name,
               const std::string& spec) {
  const std::string path = dir + "/" + name + ".spec";
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::cerr << "cannot write " << path << "\n";
    return 1;
  }
  out << spec;
  std::cout << path << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::cerr << "usage: make_spec_corpus <dir>\n";
    return 2;
  }
  const std::string dir = argv[1];
  int rc = 0;
  int n = 0;
  for (const std::string& gene : bwc::tune::gene_pool())
    rc |= write_seed(dir, "gene" + std::to_string(n++), gene);
  rc |= write_seed(dir, "default",
                   bwc::core::default_pipeline(bwc::core::OptimizerOptions{}));
  bwc::Prng rng(1);
  const std::vector<std::string>& pool = bwc::tune::gene_pool();
  std::string spec = pool[0];
  for (int i = 0; i < 12; ++i) {
    spec = (i % 3 == 2)
               ? bwc::tune::crossover_specs(
                     spec, pool[rng.uniform(pool.size())], rng)
               : bwc::tune::mutate_spec(spec, rng);
    rc |= write_seed(dir, "genome" + std::to_string(i), spec);
  }
  return rc;
}
