// libFuzzer harness for the IR text parser (ir/parser.h).
//
// The parser is the one bwc surface that consumes untrusted bytes, so it
// must never crash, hang, or trip a sanitizer: malformed input has exactly
// one legal outcome, a thrown bwc::Error. When the input does parse, the
// printer/parser round-trip contract is checked as well: printing the
// parsed program and parsing it again must succeed and reach a print
// fixpoint (to_string is idempotent across a re-parse).
//
// Built behind -DBWC_FUZZ=ON (see tests/CMakeLists.txt). With a Clang
// toolchain the target links libFuzzer (-fsanitize=fuzzer); other
// compilers get a standalone driver that replays files given on the
// command line, so the seed corpus doubles as a regression suite.
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <string>

#include "bwc/ir/parser.h"
#include "bwc/ir/printer.h"
#include "bwc/support/error.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  // Cap the input: parse time is linear, but gigantic inputs only slow
  // the fuzzer down without reaching new parser states.
  if (size > 1 << 16) return 0;
  const std::string text(reinterpret_cast<const char*>(data), size);
  try {
    const bwc::ir::Program program = bwc::ir::parse_program(text);
    // Accepted input: the print/parse round trip must hold.
    const std::string printed = bwc::ir::to_string(program);
    const bwc::ir::Program reparsed = bwc::ir::parse_program(printed);
    if (bwc::ir::to_string(reparsed) != printed) std::abort();
  } catch (const bwc::Error&) {
    // Malformed input: rejection via bwc::Error is the contract.
  }
  return 0;
}

#ifdef BWC_FUZZ_STANDALONE
// Non-Clang builds: replay corpus files one by one instead of fuzzing.
#include <fstream>
#include <iostream>
#include <sstream>

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::ifstream in(argv[i], std::ios::binary);
    if (!in) {
      std::cerr << "cannot open " << argv[i] << "\n";
      return 2;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string text = buffer.str();
    LLVMFuzzerTestOneInput(
        reinterpret_cast<const std::uint8_t*>(text.data()), text.size());
    std::cout << "ok: " << argv[i] << " (" << text.size() << " bytes)\n";
  }
  return 0;
}
#endif
