// Seed-corpus generator for the parser fuzz harness: dumps the text form
// of every bundled workload into a directory, so the fuzzer starts from
// inputs that exercise the full grammar (loops, guards, reductions,
// intrinsics, input streams) instead of discovering it byte by byte.
//
//   make_seed_corpus <dir>
#include <fstream>
#include <iostream>
#include <string>

#include "bwc/ir/printer.h"
#include "bwc/ir/program.h"
#include "bwc/workloads/extra_programs.h"
#include "bwc/workloads/paper_programs.h"

namespace {

int write_seed(const std::string& dir, const std::string& name,
               const bwc::ir::Program& program) {
  const std::string path = dir + "/" + name + ".bwc";
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::cerr << "cannot write " << path << "\n";
    return 1;
  }
  out << bwc::ir::to_string(program);
  std::cout << path << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::cerr << "usage: make_seed_corpus <dir>\n";
    return 2;
  }
  const std::string dir = argv[1];
  int rc = 0;
  rc |= write_seed(dir, "fig6", bwc::workloads::fig6_original(64));
  rc |= write_seed(dir, "fig7", bwc::workloads::fig7_original(64));
  rc |= write_seed(dir, "sec21", bwc::workloads::sec21_both_loops(64));
  rc |= write_seed(dir, "sec21_write", bwc::workloads::sec21_write_loop(64));
  rc |= write_seed(dir, "sec21_read", bwc::workloads::sec21_read_loop(64));
  rc |= write_seed(dir, "jacobi", bwc::workloads::jacobi_chain(64, 4));
  rc |= write_seed(dir, "adi", bwc::workloads::adi_like(32));
  rc |= write_seed(dir, "blur", bwc::workloads::blur_sharpen(64));
  rc |= write_seed(dir, "cascade", bwc::workloads::reduction_cascade(64, 3));
  // Layout-annotated seed: a transposed + padded 2-D array and an
  // interleave group, so the fuzzer starts with the layout(...) grammar.
  bwc::ir::Program lay = bwc::workloads::transposed_sweep(16);
  lay.mutable_array(0).layout.order = {1, 0};
  lay.mutable_array(0).layout.pad = {3, 0};
  bwc::ir::Program grp = bwc::workloads::conflict_streams(32, 3);
  for (int a = 0; a < grp.array_count(); ++a)
    grp.mutable_array(a).layout.group = 0;
  rc |= write_seed(dir, "layout", lay);
  rc |= write_seed(dir, "layout_group", grp);
  return rc;
}
