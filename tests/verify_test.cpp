// bwc::verify tests: structural validation, translation validation of the
// scheduling passes, observability certification of the storage passes,
// seeded-bug rejection, and the static traffic lower-bound invariant
// (bound <= memsim-measured memory<->L2 traffic on every workload,
// original and optimized).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "bwc/core/optimizer.h"
#include "bwc/fusion/solvers.h"
#include "bwc/ir/dsl.h"
#include "bwc/machine/machine_model.h"
#include "bwc/model/measure.h"
#include "bwc/support/error.h"
#include "bwc/support/prng.h"
#include "bwc/transform/distribute.h"
#include "bwc/transform/fuse.h"
#include "bwc/transform/interchange.h"
#include "bwc/verify/verify.h"
#include "bwc/workloads/extra_programs.h"
#include "bwc/workloads/paper_programs.h"
#include "bwc/workloads/random_programs.h"

namespace bwc {
namespace {

using namespace ir::dsl;  // NOLINT
using ir::ArrayId;
using ir::CmpOp;
using ir::Program;

bool has_code(const verify::Report& report, const std::string& code) {
  for (const auto& d : report.diags) {
    if (d.severity == verify::Severity::kError && d.code == code) return true;
  }
  return false;
}

/// Workloads small enough for full instance-level verification.
std::vector<std::pair<std::string, Program>> small_workloads() {
  std::vector<std::pair<std::string, Program>> w;
  w.emplace_back("fig6", workloads::fig6_original(20));
  w.emplace_back("fig7", workloads::fig7_original(512));
  w.emplace_back("sec21", workloads::sec21_both_loops(512));
  w.emplace_back("jacobi", workloads::jacobi_chain(128, 4));
  w.emplace_back("adi", workloads::adi_like(20));
  w.emplace_back("blur", workloads::blur_sharpen(256));
  w.emplace_back("cascade", workloads::reduction_cascade(256, 4));
  return w;
}

// ---------------------------------------------------------------------------
// Structural validation
// ---------------------------------------------------------------------------

TEST(Structure, AcceptsAllWorkloads) {
  for (const auto& [name, p] : small_workloads()) {
    const verify::Report r = verify::validate_structure(p);
    EXPECT_TRUE(r.ok()) << name << ":\n" << r.render();
  }
}

TEST(Structure, RejectsOutOfBoundsSubscript) {
  Program p("t");
  const ArrayId a = p.add_array("a", {16});
  p.mark_output_array(a);
  p.append(loop("i", 1, 16, assign(a, {v("i", 1)}, lvar("i"))));  // a[17]!
  const verify::Report r = verify::validate_structure(p);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(has_code(r, "subscript-out-of-bounds")) << r.render();
  EXPECT_NE(r.first_error().find("[2, 17]"), std::string::npos) << r.render();
}

TEST(Structure, RejectsShrunkArrayDeclaration) {
  // The "shrunk live array" bug class: the code still addresses elements
  // the (reduced) declaration no longer provides.
  Program p("t");
  const ArrayId a = p.add_array("a", {15});  // one element short
  p.add_scalar("s");
  p.mark_output_scalar("s");
  p.append(loop("i", 1, 16, assign("s", sref("s") + at(a, v("i")))));
  const verify::Report r = verify::validate_structure(p);
  EXPECT_TRUE(has_code(r, "subscript-out-of-bounds")) << r.render();
}

TEST(Structure, GuardRefinementAcceptsShiftedBodies) {
  // a[i-1] under `if (i >= 2)` never leaves [1, n]; without guard
  // refinement interval arithmetic would flag i-1 = 0.
  Program p("t");
  const ArrayId a = p.add_array("a", {16});
  p.mark_output_array(a);
  p.append(loop("i", 1, 16,
                when(CmpOp::kGe, v("i"), k(2),
                     assign(a, {v("i", -1)}, lvar("i")))));
  const verify::Report r = verify::validate_structure(p);
  EXPECT_TRUE(r.ok()) << r.render();
}

TEST(Structure, GuardRefinementStillSeesViolations) {
  // The guard admits i = 17, so a[i] can fault even under a guard.
  Program p("t");
  const ArrayId a = p.add_array("a", {16});
  p.mark_output_array(a);
  p.append(loop("i", 1, 17,
                when(CmpOp::kGe, v("i"), k(17), assign(a, {v("i")}, lit(1)))));
  const verify::Report r = verify::validate_structure(p);
  EXPECT_TRUE(has_code(r, "subscript-out-of-bounds")) << r.render();
}

TEST(Structure, RejectsUndeclaredScalarAndInvalidSlot) {
  Program p("t");
  p.add_scalar("s");
  p.append(loop("i", 1, 4, assign("s", sref("missing"))));
  p.append(loop("i", 1, 4, assign(7, {v("i")}, lit(0))));  // no array 7
  const verify::Report r = verify::validate_structure(p);
  EXPECT_TRUE(has_code(r, "scalar-undeclared")) << r.render();
  EXPECT_TRUE(has_code(r, "array-slot-invalid")) << r.render();
}

// ---------------------------------------------------------------------------
// Translation validation: acceptance
// ---------------------------------------------------------------------------

core::FusionSolver kAllSolvers[] = {
    core::FusionSolver::kBest, core::FusionSolver::kExact,
    core::FusionSolver::kGreedy, core::FusionSolver::kBisection,
    core::FusionSolver::kEdgeWeighted};

TEST(Translation, CertifiesFusionAcrossWorkloadsAndSolvers) {
  for (const auto& [name, p] : small_workloads()) {
    for (const core::FusionSolver solver : kAllSolvers) {
      const fusion::FusionGraph g = fusion::build_fusion_graph(p);
      fusion::FusionPlan plan;
      switch (solver) {
        case core::FusionSolver::kBest: plan = fusion::best_fusion(g); break;
        case core::FusionSolver::kExact:
          plan = fusion::exact_enumeration(g);
          break;
        case core::FusionSolver::kGreedy:
          plan = fusion::greedy_fusion(g);
          break;
        case core::FusionSolver::kBisection:
          plan = fusion::recursive_bisection(g);
          break;
        case core::FusionSolver::kEdgeWeighted:
          plan = fusion::edge_weighted_baseline(g);
          break;
        case core::FusionSolver::kNone: continue;
      }
      const Program fused = transform::apply_fusion(p, g, plan);
      const verify::Report r = verify::validate_translation(p, fused);
      EXPECT_TRUE(r.ok() && !r.skipped)
          << name << " via " << plan.solver << ":\n" << r.render();
    }
  }
}

TEST(Translation, CertifiesShiftedFusion) {
  // Consumer reads a[i+2]: fusable only with a delay of 2.
  Program p("t");
  const ArrayId a = p.add_array("a", {56});
  const ArrayId b = p.add_array("b", {56});
  p.add_scalar("s");
  p.mark_output_scalar("s");
  p.append(loop("i", 8, 40, assign(a, {v("i")}, at(b, v("i")) + lvar("i"))));
  p.append(loop("i", 8, 40, assign("s", sref("s") + at(a, v("i", 2)))));
  fusion::FusionGraphOptions opts;
  opts.allow_shifted_fusion = true;
  const fusion::FusionGraph g = fusion::build_fusion_graph(p, opts);
  const fusion::FusionPlan plan = fusion::best_fusion(g);
  ASSERT_EQ(plan.num_partitions, 1);
  const Program fused = transform::apply_fusion(p, g, plan);
  const verify::Report r = verify::validate_translation(p, fused);
  EXPECT_TRUE(r.ok() && !r.skipped) << r.render();
}

TEST(Translation, CertifiesInterchange) {
  Program p("t");
  const ArrayId a = p.add_array("a", {24, 24});
  p.add_scalar("s");
  p.mark_output_scalar("s");
  p.append(loop("i", 1, 24,
                loop("j", 1, 24, assign("s", sref("s") + at(a, v("i"), v("j"))))));
  transform::InterchangeResult ir = transform::auto_interchange(p);
  ASSERT_FALSE(ir.interchanged.empty());
  const verify::Report r = verify::validate_translation(p, ir.program);
  EXPECT_TRUE(r.ok() && !r.skipped) << r.render();
}

TEST(Translation, CertifiesDistribution) {
  Program p("t");
  const ArrayId a = p.add_array("a", {40});
  p.add_scalar("s");
  p.mark_output_scalar("s");
  p.append(loop("i", 4, 36,
                assign(a, {v("i")}, lvar("i") * lit(0.5)),
                assign("s", sref("s") + at(a, v("i", -1)))));
  const transform::DistributionResult d = transform::distribute_loops(p);
  ASSERT_EQ(d.loops_after, 2);
  const verify::Report r = verify::validate_translation(p, d.program);
  EXPECT_TRUE(r.ok() && !r.skipped) << r.render();
}

// ---------------------------------------------------------------------------
// Translation validation: seeded bugs must be rejected with a diagnostic
// naming the violated dependence.
// ---------------------------------------------------------------------------

/// Producer loop writing a, consumer loop reducing it.
Program producer_consumer() {
  Program p("t");
  const ArrayId a = p.add_array("a", {40});
  const ArrayId b = p.add_array("b", {40});
  p.add_scalar("s");
  p.mark_output_scalar("s");
  p.append(loop("i", 1, 32, assign(a, {v("i")}, at(b, v("i")) + lvar("i"))));
  p.append(loop("i", 1, 32, assign("s", sref("s") * at(a, v("i")))));
  return p;
}

TEST(Translation, RejectsReorderedStatements) {
  const Program p = producer_consumer();
  Program bad("t");
  const ArrayId a = bad.add_array("a", {40});
  const ArrayId b = bad.add_array("b", {40});
  bad.add_scalar("s");
  bad.mark_output_scalar("s");
  // Consumer scheduled before its producer: every flow dependence on a[i]
  // is reversed.
  bad.append(loop("i", 1, 32, assign("s", sref("s") * at(a, v("i")))));
  bad.append(loop("i", 1, 32, assign(a, {v("i")}, at(b, v("i")) + lvar("i"))));
  const verify::Report r = verify::validate_translation(p, bad);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(has_code(r, "flow-dependence-reversed")) << r.render();
  // The diagnostic names the violated dependence's location.
  EXPECT_NE(r.first_error().find("a["), std::string::npos) << r.render();
}

TEST(Translation, RejectsDroppedWriteback) {
  const Program p = producer_consumer();
  Program bad("t");
  const ArrayId a = bad.add_array("a", {40});
  bad.add_array("b", {40});
  bad.add_scalar("s");
  bad.mark_output_scalar("s");
  // Producer loop dropped entirely.
  bad.append(loop("i", 1, 32, assign("s", sref("s") * at(a, v("i")))));
  const verify::Report r = verify::validate_translation(p, bad);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(has_code(r, "instance-missing")) << r.render();
}

TEST(Translation, RejectsAlteredComputation) {
  const Program p = producer_consumer();
  Program bad = p.clone();
  // Same shape, different arithmetic: b[i] - i instead of b[i] + i.
  bad.top()[0] = loop(
      "i", 1, 32,
      assign(0, {v("i")}, at(1, v("i")) - lvar("i")));
  const verify::Report r = verify::validate_translation(p, bad);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(has_code(r, "instance-missing")) << r.render();
}

TEST(Translation, RejectsDuplicatedInstances) {
  const Program p = producer_consumer();
  Program bad = p.clone();
  bad.append(loop("i", 1, 32,
                  assign(0, {v("i")}, at(1, v("i")) + lvar("i"))));
  const verify::Report r = verify::validate_translation(p, bad);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(has_code(r, "instance-extra")) << r.render();
}

TEST(Translation, RejectsReversedOutputDependence) {
  Program p("t");
  const ArrayId a = p.add_array("a", {16});
  p.mark_output_array(a);
  p.append(loop("i", 1, 16, assign(a, {v("i")}, lit(1.0))));
  p.append(loop("i", 1, 16, assign(a, {v("i")}, lit(2.0))));
  Program bad("t");
  const ArrayId a2 = bad.add_array("a", {16});
  bad.mark_output_array(a2);
  bad.append(loop("i", 1, 16, assign(a2, {v("i")}, lit(2.0))));
  bad.append(loop("i", 1, 16, assign(a2, {v("i")}, lit(1.0))));
  const verify::Report r = verify::validate_translation(p, bad);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(has_code(r, "output-dependence-reversed")) << r.render();
}

TEST(Translation, RejectsChangedOutputs) {
  const Program p = producer_consumer();
  Program bad = p.clone();
  bad.mark_output_array(0);  // adds array a to the observable outputs
  const verify::Report r = verify::validate_translation(p, bad);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(has_code(r, "outputs-changed")) << r.render();
}

TEST(Translation, AcceptsReductionInterleavingButNotPartialReads) {
  // Two reduction loops into s: fusing interleaves the updates -- legal.
  Program p("t");
  const ArrayId a = p.add_array("a", {40});
  const ArrayId b = p.add_array("b", {40});
  p.add_scalar("s");
  p.mark_output_scalar("s");
  p.append(loop("i", 1, 32, assign("s", sref("s") + at(a, v("i")))));
  p.append(loop("i", 1, 32, assign("s", sref("s") + at(b, v("i")))));
  Program fused("t");
  const ArrayId fa = fused.add_array("a", {40});
  const ArrayId fb = fused.add_array("b", {40});
  fused.add_scalar("s");
  fused.mark_output_scalar("s");
  fused.append(loop("i", 1, 32,
                    assign("s", sref("s") + at(fa, v("i"))),
                    assign("s", sref("s") + at(fb, v("i")))));
  const verify::Report r = verify::validate_translation(p, fused);
  EXPECT_TRUE(r.ok()) << r.render();

  // But a non-reduction read of s moved across updates sees a partial sum.
  Program p2 = p.clone();
  const ArrayId c = p2.add_array("c", {40});
  p2.mark_output_array(c);
  p2.append(loop("i", 1, 32, assign(c, {v("i")}, sref("s"))));
  Program bad("t");
  const ArrayId ba = bad.add_array("a", {40});
  const ArrayId bb = bad.add_array("b", {40});
  bad.add_scalar("s");
  bad.mark_output_scalar("s");
  const ArrayId bc = bad.add_array("c", {40});
  bad.mark_output_array(bc);
  bad.append(loop("i", 1, 32, assign("s", sref("s") + at(ba, v("i")))));
  bad.append(loop("i", 1, 32, assign(bc, {v("i")}, sref("s"))));  // too early
  bad.append(loop("i", 1, 32, assign("s", sref("s") + at(bb, v("i")))));
  const verify::Report r2 = verify::validate_translation(p2, bad);
  EXPECT_FALSE(r2.ok());
  EXPECT_TRUE(has_code(r2, "reduction-read-partial")) << r2.render();
}

TEST(Translation, SkipsOversizedTraces) {
  const Program p = workloads::fig7_original(400000);
  verify::TranslationOptions opts;
  opts.max_events = 1000;
  const verify::Report r = verify::validate_translation(p, p, opts);
  EXPECT_TRUE(r.skipped);
  EXPECT_TRUE(r.ok()) << r.render();
}

// ---------------------------------------------------------------------------
// Observability certification of the storage passes
// ---------------------------------------------------------------------------

/// pre: t[i] produced and consumed in the same iteration; c is the output.
Program store_elim_pre(bool second_loop_reads_t, bool t_is_output) {
  Program p("t");
  const ArrayId t = p.add_array("t", {40});
  const ArrayId b = p.add_array("b", {40});
  const ArrayId c = p.add_array("c", {40});
  p.mark_output_array(c);
  if (t_is_output) p.mark_output_array(t);
  p.append(loop("i", 1, 32,
                assign(t, {v("i")}, at(b, v("i")) * lit(2.0)),
                assign(c, {v("i")}, at(t, v("i")) + lit(1.0))));
  if (second_loop_reads_t) {
    p.append(loop("i", 1, 32,
                  assign(c, {v("i")}, at(c, v("i")) + at(t, v("i")))));
  }
  return p;
}

/// post: the store to t forwarded through the scalar t_t.
Program store_elim_post() {
  Program p("t");
  p.add_array("t", {40});
  const ArrayId b = p.add_array("b", {40});
  const ArrayId c = p.add_array("c", {40});
  p.mark_output_array(c);
  p.add_scalar("t_t");
  p.append(loop("i", 1, 32,
                assign("t_t", at(b, v("i")) * lit(2.0)),
                assign(c, {v("i")}, sref("t_t") + lit(1.0))));
  return p;
}

TEST(Observability, CertifiesStoreElimination) {
  const verify::Report r = verify::validate_store_elimination(
      store_elim_pre(false, false), store_elim_post());
  EXPECT_TRUE(r.ok() && !r.skipped) << r.render();
}

TEST(Observability, RejectsEliminatingOutputArrayStores) {
  Program pre = store_elim_pre(false, true);  // t is observable!
  const verify::Report r =
      verify::validate_store_elimination(pre, store_elim_post());
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(has_code(r, "store-elim-output")) << r.render();
}

TEST(Observability, RejectsEliminatingEscapingStores) {
  // A second loop observes t: the store's value escapes its iteration.
  Program pre = store_elim_pre(true, false);
  Program post = store_elim_post();
  post.append(loop("i", 1, 32,
                   assign(2, {v("i")}, at(2, v("i")) + at(0, v("i")))));
  const verify::Report r = verify::validate_store_elimination(pre, post);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(has_code(r, "store-elim-observed")) << r.render();
}

TEST(Observability, CertifiesStorageReduction) {
  // t contracted to the scalar tt: one value live at a time.
  Program pre("t");
  const ArrayId t = pre.add_array("t", {40});
  const ArrayId b = pre.add_array("b", {40});
  const ArrayId c = pre.add_array("c", {40});
  pre.mark_output_array(c);
  pre.append(loop("i", 1, 32,
                  assign(t, {v("i")}, at(b, v("i")) + lit(3.0)),
                  assign(c, {v("i")}, at(t, v("i")) * lit(0.5))));
  Program post("t");
  post.add_array("t", {40});
  const ArrayId pb = post.add_array("b", {40});
  const ArrayId pc = post.add_array("c", {40});
  post.mark_output_array(pc);
  post.add_scalar("tt");
  post.append(loop("i", 1, 32,
                   assign("tt", at(pb, v("i")) + lit(3.0)),
                   assign(pc, {v("i")}, sref("tt") * lit(0.5))));
  const verify::Report r = verify::validate_storage_reduction(pre, post);
  EXPECT_TRUE(r.ok() && !r.skipped) << r.render();
}

TEST(Observability, RejectsShrinkingBelowPeakLiveSet) {
  // c[i] needs t[i] and t[i-1]: two values live at once; a single scalar
  // (8 bytes) cannot hold the 16-byte peak live set.
  Program pre("t");
  const ArrayId t = pre.add_array("t", {40});
  const ArrayId b = pre.add_array("b", {40});
  const ArrayId c = pre.add_array("c", {40});
  pre.mark_output_array(c);
  pre.append(loop("i", 1, 32, assign(t, {v("i")}, at(b, v("i")) + lit(3.0))));
  pre.append(loop("i", 2, 32,
                  assign(c, {v("i")}, at(t, v("i")) + at(t, v("i", -1)))));
  Program post("t");
  post.add_array("t", {40});
  const ArrayId pb = post.add_array("b", {40});
  const ArrayId pc = post.add_array("c", {40});
  post.mark_output_array(pc);
  post.add_scalar("tt");
  post.append(loop("i", 2, 32,
                   assign("tt", at(pb, v("i")) + lit(3.0)),
                   assign(pc, {v("i")}, sref("tt") + sref("tt"))));
  const verify::Report r = verify::validate_storage_reduction(pre, post);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(has_code(r, "storage-reduction-capacity")) << r.render();
}

TEST(Observability, RejectsReducingOutputArray) {
  Program pre("t");
  const ArrayId t = pre.add_array("t", {40});
  const ArrayId b = pre.add_array("b", {40});
  pre.mark_output_array(t);
  pre.append(loop("i", 1, 32, assign(t, {v("i")}, at(b, v("i")))));
  Program post("t");
  const ArrayId pt = post.add_array("t", {40});
  post.add_array("b", {40});
  post.mark_output_array(pt);
  post.add_scalar("tt");
  post.append(loop("i", 1, 32, assign("tt", lit(0.0))));
  const verify::Report r = verify::validate_storage_reduction(pre, post);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(has_code(r, "storage-reduction-output")) << r.render();
}

// ---------------------------------------------------------------------------
// Pipeline integration: the verifier runs inside core::optimize
// ---------------------------------------------------------------------------

TEST(Pipeline, VerifierCertifiesEveryPass) {
  core::OptimizerOptions opts;
  opts.allow_shifted_fusion = true;
  opts.auto_interchange = true;
  opts.scalar_replacement = true;
  const core::OptimizeResult result =
      core::optimize(workloads::blur_sharpen(256), opts);
  int verified_passes = 0;
  for (const auto& report : result.pipeline.passes) {
    if (report.verify.ran) {
      ++verified_passes;
      EXPECT_TRUE(report.changed) << report.pass;
      EXPECT_FALSE(report.verify.check.empty()) << report.pass;
    }
  }
  EXPECT_GE(verified_passes, 2) << core::render_log(result);
}

TEST(Pipeline, VerifyOffProducesNoVerifyLines) {
  core::OptimizerOptions opts;
  opts.verify = false;
  const core::OptimizeResult result =
      core::optimize(workloads::blur_sharpen(256), opts);
  for (const auto& report : result.pipeline.passes) {
    EXPECT_FALSE(report.verify.ran) << report.pass;
  }
}

TEST(Pipeline, OversizedProgramsDegradeToStructuralChecks) {
  core::OptimizerOptions opts;
  opts.verify_max_events = 1000;
  // The static prover certifies fig7's transforms without replaying events;
  // force trace-only verification so the event budget is actually exercised.
  opts.static_verify = pass::StaticVerifyMode::kOff;
  const core::OptimizeResult result =
      core::optimize(workloads::fig7_original(400000), opts);
  bool skipped = false;
  for (const auto& report : result.pipeline.passes) {
    if (report.verify.ran && report.verify.skipped) {
      skipped = true;
      EXPECT_FALSE(report.verify.skip_reason.empty()) << report.pass;
    }
  }
  EXPECT_TRUE(skipped) << core::render_log(result);
}

// ---------------------------------------------------------------------------
// Static traffic lower bound vs. measured traffic
// ---------------------------------------------------------------------------

void expect_bound_holds(const std::string& name, const Program& p,
                        const machine::MachineModel& machine) {
  const verify::TrafficBound bound = verify::compute_traffic_bound(p);
  const model::Measurement m = model::measure(p, machine);
  EXPECT_LE(static_cast<std::uint64_t>(bound.lower_bound_bytes),
            m.profile.memory_bytes())
      << name << ":\n" << bound.render();
  EXPECT_GE(static_cast<std::uint64_t>(bound.flops_upper_bound),
            m.profile.flops)
      << name << ":\n" << bound.render();
}

TEST(TrafficBound, HoldsOnAllWorkloadsOriginalAndOptimized) {
  const machine::MachineModel machine = machine::origin2000_r10k().scaled(16);
  core::OptimizerOptions opts;
  opts.allow_shifted_fusion = true;
  opts.auto_interchange = true;
  for (const auto& [name, p] : small_workloads()) {
    expect_bound_holds(name, p, machine);
    const core::OptimizeResult result = core::optimize(p, opts);
    expect_bound_holds(name + " (optimized)", result.program, machine);
  }
}

TEST(TrafficBound, HoldsOnRandomPrograms) {
  const machine::MachineModel machine = machine::origin2000_r10k().scaled(16);
  core::OptimizerOptions opts;
  opts.allow_shifted_fusion = true;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    Prng rng(seed);
    const Program p = workloads::random_program(rng);
    expect_bound_holds("random/" + std::to_string(seed), p, machine);
    const core::OptimizeResult result = core::optimize(p, opts);
    expect_bound_holds("random/" + std::to_string(seed) + " (optimized)",
                       result.program, machine);
    Prng rng2(seed);
    const Program p2 = workloads::random_program_2d(rng2, 12, 3);
    expect_bound_holds("random2d/" + std::to_string(seed), p2, machine);
    const core::OptimizeResult r2 = core::optimize(p2, opts);
    expect_bound_holds("random2d/" + std::to_string(seed) + " (optimized)",
                       r2.program, machine);
  }
}

TEST(TrafficBound, ExactOnSimpleReduction) {
  const std::int64_t n = 64;
  Program p("t");
  const ArrayId a = p.add_array("a", {n});
  p.add_scalar("s");
  p.mark_output_scalar("s");
  p.append(loop("i", 1, n, assign("s", sref("s") + at(a, v("i")))));
  const verify::TrafficBound bound = verify::compute_traffic_bound(p);
  EXPECT_EQ(bound.lower_bound_bytes, n * 8);
  EXPECT_EQ(bound.flops_upper_bound, n);
  ASSERT_EQ(bound.arrays.size(), 1u);
  EXPECT_TRUE(bound.arrays[0].exact);
  EXPECT_EQ(bound.arrays[0].distinct_elements, n);
}

TEST(TrafficBound, UnionOfBoxesMergesOverlappingStencilRefs) {
  // a[i-1], a[i], a[i+1] over i in [2, 31]: the union is [1, 32], not 3x30.
  Program p("t");
  const ArrayId a = p.add_array("a", {40});
  p.add_scalar("s");
  p.mark_output_scalar("s");
  p.append(loop("i", 2, 31,
                assign("s", sref("s") + at(a, v("i", -1)) + at(a, v("i")) +
                                at(a, v("i", 1)))));
  const verify::TrafficBound bound = verify::compute_traffic_bound(p);
  ASSERT_EQ(bound.arrays.size(), 1u);
  EXPECT_EQ(bound.arrays[0].distinct_elements, 32);
  EXPECT_TRUE(bound.arrays[0].exact);
}

TEST(TrafficBound, GuardedRefsRefineThroughSingleVarGuards) {
  // Promotion-style guard: the ref executes on exactly one iteration.
  Program p("t");
  const ArrayId a = p.add_array("a", {40});
  p.add_scalar("s");
  p.mark_output_scalar("s");
  p.append(loop("i", 1, 32,
                when(CmpOp::kEq, v("i"), k(7),
                     assign("s", sref("s") + at(a, v("i"))))));
  const verify::TrafficBound bound = verify::compute_traffic_bound(p);
  ASSERT_EQ(bound.arrays.size(), 1u);
  EXPECT_EQ(bound.arrays[0].distinct_elements, 1);
  EXPECT_TRUE(bound.arrays[0].exact);
}

}  // namespace
}  // namespace bwc
