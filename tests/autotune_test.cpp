// Tests for the parallel pipeline autotuner (tune/autotune.h).
//
// The acceptance bar from the autotuner's introduction: on the bundled
// paper workloads the winner's memsim-measured traffic is never worse
// than the default core::optimize pipeline, strictly better on at least
// one workload, and a within-gap lower-bound optimality certificate is
// earned on at least two. Determinism is pinned separately: a fixed
// seed replays the identical search -- winner, certificate and
// validation set -- at any thread-pool width.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "bwc/machine/machine_model.h"
#include "bwc/model/measure.h"
#include "bwc/pass/pipeline_spec.h"
#include "bwc/pass/report.h"
#include "bwc/support/error.h"
#include "bwc/support/prng.h"
#include "bwc/tune/autotune.h"
#include "bwc/tune/search_space.h"
#include "bwc/verify/traffic_bound.h"
#include "bwc/workloads/extra_programs.h"
#include "bwc/workloads/paper_programs.h"

namespace bwc::tune {
namespace {

machine::MachineModel test_machine(std::uint64_t scale) {
  return machine::origin2000_r10k().scaled(scale).with_cores(1);
}

TuneOptions small_options(std::uint64_t scale) {
  TuneOptions o;
  o.budget = parse_budget("small");
  o.threads = 2;
  o.machine = test_machine(scale);
  return o;
}

std::uint64_t measured_bytes(const ir::Program& program,
                             const machine::MachineModel& machine) {
  return model::measure(program, machine, model::MeasureOptions{})
      .profile.memory_bytes();
}

TEST(AutotuneHelpers, ParsesStrategiesAndBudgets) {
  EXPECT_EQ(parse_strategy("beam"), Strategy::kBeam);
  EXPECT_EQ(parse_strategy("genetic"), Strategy::kGenetic);
  EXPECT_THROW(parse_strategy("annealing"), Error);
  EXPECT_EQ(parse_budget("small"), 16);
  EXPECT_EQ(parse_budget("medium"), 48);
  EXPECT_EQ(parse_budget("large"), 128);
  EXPECT_EQ(parse_budget("7"), 7);
  EXPECT_THROW(parse_budget("0"), Error);
  EXPECT_THROW(parse_budget("tiny"), Error);
}

TEST(AutotuneHelpers, StrategyNamesRoundTrip) {
  EXPECT_EQ(parse_strategy(strategy_name(Strategy::kBeam)), Strategy::kBeam);
  EXPECT_EQ(parse_strategy(strategy_name(Strategy::kGenetic)),
            Strategy::kGenetic);
}

// The data-movement floor chain the certificate rests on:
//   floor <= static bound <= memsim-measured traffic
// on a workload whose arrays are whole L2 lines (n = 128 doubles =
// 1 KB), so line quantization cannot open an artificial gap.
TEST(AutotuneFloor, ChainHoldsOnPaperWorkloads) {
  struct Case {
    const char* name;
    ir::Program program;
  };
  std::vector<Case> cases;
  cases.push_back({"fig7", workloads::fig7_original(128)});
  cases.push_back({"sec21", workloads::sec21_both_loops(128)});
  cases.push_back({"blur", workloads::blur_sharpen(128)});
  const machine::MachineModel machine = test_machine(16);
  for (const Case& c : cases) {
    const verify::DataFloor floor = verify::compute_data_floor(c.program);
    const verify::TrafficBound bound =
        verify::compute_traffic_bound(c.program);
    const std::uint64_t measured = measured_bytes(c.program, machine);
    EXPECT_GT(floor.floor_bytes, 0) << c.name;
    EXPECT_LE(floor.floor_bytes, bound.lower_bound_bytes) << c.name;
    EXPECT_LE(static_cast<std::uint64_t>(bound.lower_bound_bytes), measured)
        << c.name;
  }
}

// Fixed seed => identical search whatever the thread count, and across
// repeated runs. Everything observable must match: the winner, the
// certificate, the counters, and the whole validation set.
TEST(AutotuneSearch, DeterministicAcrossRunsAndThreadCounts) {
  const ir::Program program = workloads::transposed_sweep(128);
  std::vector<TuneResult> results;
  for (const int threads : {1, 4, 1}) {
    TuneOptions o = small_options(128);
    o.threads = threads;
    o.seed = 7;
    results.push_back(tune(program, o));
  }
  const TuneResult& a = results[0];
  for (std::size_t i = 1; i < results.size(); ++i) {
    const TuneResult& b = results[i];
    EXPECT_EQ(a.winner_spec, b.winner_spec);
    EXPECT_EQ(a.winner_predicted_bytes, b.winner_predicted_bytes);
    EXPECT_EQ(a.winner_measured_bytes, b.winner_measured_bytes);
    EXPECT_EQ(a.default_spec, b.default_spec);
    EXPECT_EQ(a.default_measured_bytes, b.default_measured_bytes);
    EXPECT_EQ(a.evaluated, b.evaluated);
    EXPECT_EQ(a.infeasible, b.infeasible);
    EXPECT_EQ(a.early_stop, b.early_stop);
    EXPECT_EQ(a.certificate.within_gap, b.certificate.within_gap);
    EXPECT_EQ(a.certificate.floor_bytes, b.certificate.floor_bytes);
    EXPECT_EQ(a.certificate.measured_bytes, b.certificate.measured_bytes);
    EXPECT_DOUBLE_EQ(a.certificate.gap_percent, b.certificate.gap_percent);
    ASSERT_EQ(a.validated.size(), b.validated.size());
    for (std::size_t j = 0; j < a.validated.size(); ++j) {
      EXPECT_EQ(a.validated[j].spec, b.validated[j].spec);
      EXPECT_EQ(a.validated[j].predicted_bytes,
                b.validated[j].predicted_bytes);
      EXPECT_EQ(a.validated[j].measured_bytes, b.validated[j].measured_bytes);
    }
  }
  // Different seeds are allowed to (and here do) explore differently;
  // at minimum the search still ran.
  EXPECT_GT(a.evaluated, 0);
}

TEST(AutotuneSearch, GeneticStrategyIsDeterministicToo) {
  const ir::Program program = workloads::blur_sharpen(128);
  TuneResult results[2];
  for (TuneResult& r : results) {
    TuneOptions o = small_options(16);
    o.strategy = Strategy::kGenetic;
    o.seed = 11;
    o.threads = (&r == &results[0]) ? 1 : 3;
    r = tune(program, o);
  }
  EXPECT_EQ(results[0].winner_spec, results[1].winner_spec);
  EXPECT_EQ(results[0].winner_measured_bytes,
            results[1].winner_measured_bytes);
  EXPECT_EQ(results[0].evaluated, results[1].evaluated);
}

// The acceptance sweep: winner <= default everywhere, strictly better
// somewhere, certified within the gap on at least two workloads.
TEST(AutotuneSearch, WinnerBeatsOrMatchesDefaultWithCertificates) {
  struct Case {
    const char* name;
    ir::Program program;
    std::uint64_t scale;
  };
  std::vector<Case> cases;
  cases.push_back({"fig7", workloads::fig7_original(128), 16});
  cases.push_back({"sec21", workloads::sec21_both_loops(128), 16});
  cases.push_back({"blur", workloads::blur_sharpen(128), 16});
  cases.push_back({"cascade", workloads::reduction_cascade(128, 3), 16});
  // The transposed sweep is the strict-win workload: its default
  // pipeline leaves a column-major scan whose traffic interchange
  // removes, which only the search discovers.
  cases.push_back({"stride", workloads::transposed_sweep(256), 512});

  int strictly_better = 0;
  int certificates = 0;
  for (const Case& c : cases) {
    const TuneOptions o = small_options(c.scale);
    const TuneResult result = tune(c.program, o);
    EXPECT_LE(result.winner_measured_bytes, result.default_measured_bytes)
        << c.name;
    // The chain the certificate is built on holds unconditionally.
    EXPECT_LE(result.floor.floor_bytes, result.winner_predicted_bytes)
        << c.name;
    EXPECT_LE(result.winner_predicted_bytes, result.winner_measured_bytes)
        << c.name;
    if (result.winner_measured_bytes < result.default_measured_bytes)
      ++strictly_better;
    if (result.certificate.within_gap) {
      ++certificates;
      EXPECT_LE(static_cast<double>(result.certificate.measured_bytes),
                static_cast<double>(result.certificate.floor_bytes) *
                    (1.0 + result.certificate.tolerance_percent / 100.0))
          << c.name;
    }
  }
  EXPECT_GE(strictly_better, 1);
  EXPECT_GE(certificates, 2);
}

// The winner's report renders as bwc-remarks-v1 records: the synthetic
// "tune" pass carries the certificate remark and the per-array floor
// breakdown under distinct keys.
TEST(AutotuneSearch, ReportCarriesCertificateAndFloorBreakdown) {
  const TuneResult result =
      tune(workloads::fig7_original(128), small_options(16));
  const pass::PassReport report = result.report();
  EXPECT_EQ(report.pass, "tune");
  bool saw_certificate = false;
  bool saw_breakdown = false;
  for (const pass::Remark& remark : report.remarks) {
    if (remark.code == "tune-certificate" ||
        remark.code == "tune-no-certificate") {
      saw_certificate = true;
      bool has_floor = false;
      bool has_gap = false;
      for (const auto& arg : remark.args) {
        has_floor = has_floor || arg.first == "floor_bytes";
        has_gap = has_gap || arg.first == "gap_percent";
      }
      EXPECT_TRUE(has_floor);
      EXPECT_TRUE(has_gap);
    }
    if (remark.code == "tune-floor-breakdown") {
      saw_breakdown = true;
      // Distinct per-array keys, one per floor region.
      EXPECT_EQ(remark.args.size(), result.floor.arrays.size());
      for (const auto& arg : remark.args)
        EXPECT_EQ(arg.first.rfind("array.", 0), 0u) << arg.first;
    }
  }
  EXPECT_TRUE(saw_certificate);
  EXPECT_TRUE(saw_breakdown);
}

// Seed specs steer the search but never break it: malformed or illegal
// entries are ignored, well-formed ones join the starting population.
TEST(AutotuneSearch, MalformedSeedSpecsAreIgnored) {
  TuneOptions o = small_options(16);
  o.seed_specs = {"fuse(solver=", "definitely-not-a-pass",
                  "interchange,fuse(solver=greedy)"};
  const TuneResult result = tune(workloads::sec21_both_loops(128), o);
  EXPECT_LE(result.winner_measured_bytes, result.default_measured_bytes);
  EXPECT_GT(result.evaluated, 0);
}

TEST(AutotuneSearch, RejectsUnusableOptions) {
  TuneOptions o = small_options(16);
  o.budget = 0;
  EXPECT_THROW(tune(workloads::fig7_original(64), o), Error);
  o = small_options(16);
  o.gap_percent = -1.0;
  EXPECT_THROW(tune(workloads::fig7_original(64), o), Error);
}

// The mutation/crossover space never renders an unparseable genome.
TEST(AutotuneSearchSpace, GenomesStayWithinTheGrammar) {
  Prng rng(3);
  std::vector<std::string> population = gene_pool();
  for (int step = 0; step < 200; ++step) {
    const std::string& a = population[rng.uniform(population.size())];
    const std::string& b = population[rng.uniform(population.size())];
    std::string child =
        (step % 2 == 0) ? mutate_spec(a, rng) : crossover_specs(a, b, rng);
    child = canonical_spec(child);
    EXPECT_NO_THROW(pass::parse_pipeline_spec(child)) << child;
    if (!child.empty()) population.push_back(child);
  }
}

}  // namespace
}  // namespace bwc::tune
