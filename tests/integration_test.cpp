// Cross-module integration tests: each one walks a full paper experiment
// end-to-end at reduced size and asserts the paper's qualitative result
// (the "shape": who wins, by roughly what factor).
#include <gtest/gtest.h>

#include <cmath>

#include "bwc/core/optimizer.h"
#include "bwc/machine/machine_model.h"
#include "bwc/machine/timing.h"
#include "bwc/model/balance.h"
#include "bwc/model/measure.h"
#include "bwc/runtime/recorder.h"
#include "bwc/support/stats.h"
#include "bwc/workloads/kernels.h"
#include "bwc/workloads/paper_programs.h"
#include "bwc/workloads/sp_proxy.h"
#include "bwc/workloads/stride_kernels.h"
#include "bwc/workloads/stream.h"

namespace bwc {
namespace {

const machine::MachineModel& o2k_scaled() {
  static const machine::MachineModel m = machine::origin2000_r10k().scaled(16);
  return m;
}

// Section 2.1: the write loop takes about twice as long as the read loop.
TEST(Integration, Sec21WriteLoopTwiceAsSlow) {
  const auto rw = model::measure(workloads::sec21_write_loop(200000),
                                 o2k_scaled());
  const auto ro = model::measure(workloads::sec21_read_loop(200000),
                                 o2k_scaled());
  const double ratio = rw.time.total_s / ro.time.total_s;
  EXPECT_GT(ratio, 1.8);
  EXPECT_LT(ratio, 2.2);
  EXPECT_EQ(rw.time.binding_resource, "Mem-L2");
}

// Figure 1/2 shape: the memory boundary is the worst-provisioned level for
// a bandwidth-hungry kernel, and its ratio exceeds the cache levels'.
TEST(Integration, MemoryIsTheWorstLevelForDmxpy) {
  workloads::AddressSpace space;
  workloads::Dmxpy dmxpy(60000, 16, space);
  memsim::MemoryHierarchy h(o2k_scaled().caches);
  runtime::Recorder rec(&h);
  dmxpy.run(rec);
  const auto balance =
      model::ProgramBalance::from_profile("dmxpy", rec.profile());
  const auto ratios =
      model::demand_supply_ratios(balance, machine::origin2000_r10k());
  ASSERT_EQ(ratios.size(), 3u);
  EXPECT_GT(ratios[2], ratios[0]);
  EXPECT_GT(ratios[2], ratios[1]);
  EXPECT_GT(ratios[2], 3.0);  // the paper reports 3.4..10.5 across apps
  EXPECT_LT(model::cpu_utilization_bound(ratios), 0.25);
}

// Figure 1's mm(-O2) vs mm(-O3): blocking collapses the memory balance.
TEST(Integration, BlockingCollapsesMatMulMemoryBalance) {
  workloads::AddressSpace space;
  workloads::MatMul mm(192, space);  // arrays larger than the scaled L2
  memsim::MemoryHierarchy h1(o2k_scaled().caches);
  runtime::Recorder r1(&h1);
  mm.run_jki(r1);
  const auto naive =
      model::ProgramBalance::from_profile("mm-jki", r1.profile());

  mm.reset_c();
  memsim::MemoryHierarchy h2(o2k_scaled().caches);
  runtime::Recorder r2(&h2);
  mm.run_blocked(r2, 16);
  const auto blocked =
      model::ProgramBalance::from_profile("mm-blocked", r2.profile());

  EXPECT_GT(naive.bytes_per_flop[2], 5.0 * blocked.bytes_per_flop[2]);
}

// Figure 3 shape: stride-1 kernels all saturate the memory bandwidth on
// the (set-associative) Origin2000; spread is small.
TEST(Integration, KernelsSaturateMemoryBandwidth) {
  std::vector<double> effective;
  for (const auto& spec : workloads::figure3_kernels()) {
    workloads::AddressSpace space;
    // Arrays several times the scaled L2, like the paper's 16 MB arrays
    // against a 4 MB cache: no reuse across passes.
    workloads::StrideKernel kernel(spec, 150000, space);
    memsim::MemoryHierarchy h(o2k_scaled().caches);
    {
      runtime::Recorder warmup(&h);
      kernel.run(warmup);  // reach steady state (writebacks in flight)
    }
    h.reset_stats();
    runtime::Recorder rec(&h);
    kernel.run(rec);
    const auto t = machine::predict_time(rec.profile(),
                                         machine::origin2000_r10k());
    effective.push_back(machine::effective_bandwidth_mbps(
        kernel.useful_bytes(), t.total_s));
  }
  const Summary s = summarize(effective);
  // All near the 320 MB/s machine limit, within ~25%.
  EXPECT_GT(s.min, 0.75 * 320.0);
  EXPECT_LE(s.max, 320.0 * 1.01);
  EXPECT_LT(relative_spread(effective), 0.35);
}

// Section 2.3: most SP subroutines run at >= 84% memory-bandwidth
// utilization; the flop-heavy line solves sit below.
TEST(Integration, SpSubroutineUtilizationShape) {
  workloads::AddressSpace space;
  workloads::SpProxy sp(12, space);
  int saturated = 0;
  for (int s = 0; s < workloads::SpProxy::kSubroutines; ++s) {
    memsim::MemoryHierarchy h(o2k_scaled().caches);
    runtime::Recorder rec(&h);
    sp.run_subroutine(s, rec);
    const double util = machine::memory_bandwidth_utilization(
        rec.profile(), machine::origin2000_r10k());
    if (util >= 0.84) ++saturated;
  }
  EXPECT_GE(saturated, 4);
  EXPECT_LE(saturated, 6);  // the x/y solves must NOT saturate
}

// Figure 8: fusion alone helps; store elimination stacks to ~2x total.
TEST(Integration, Fig8StoreEliminationStacksToTwoX) {
  const ir::Program original = workloads::fig7_original(150000);

  core::OptimizerOptions fusion_only;
  fusion_only.reduce_storage = false;
  fusion_only.eliminate_stores = false;
  const auto fused = core::optimize(original, fusion_only);
  const auto full = core::optimize(original);

  const auto t0 = model::measure(original, o2k_scaled()).time.total_s;
  const auto t1 = model::measure(fused.program, o2k_scaled()).time.total_s;
  const auto t2 = model::measure(full.program, o2k_scaled()).time.total_s;

  EXPECT_LT(t1, t0);            // fusion helps
  EXPECT_LT(t2, t1);            // store elimination helps further
  EXPECT_NEAR(t0 / t2, 2.0, 0.25);  // combined ~2x (paper: 0.32 -> 0.16 s)
}

// STREAM against the simulated machine recovers the machine's memory
// bandwidth (footnote 2's measurement protocol).
TEST(Integration, StreamMeasuresMachineBandwidth) {
  workloads::AddressSpace space;
  workloads::Stream stream(100000, space);
  memsim::MemoryHierarchy h(o2k_scaled().caches);
  {
    runtime::Recorder warmup(&h);
    stream.run(workloads::StreamOp::kTriad, warmup);
  }
  h.reset_stats();
  runtime::Recorder rec(&h);
  stream.run(workloads::StreamOp::kTriad, rec);
  const auto t =
      machine::predict_time(rec.profile(), machine::origin2000_r10k());
  const double bw = machine::effective_bandwidth_mbps(
      stream.useful_bytes(workloads::StreamOp::kTriad), t.total_s);
  // STREAM counts 24 bytes per triad element while a write-allocate cache
  // moves 32 (the target line is fetched before being overwritten), so the
  // reported number sits at ~3/4 of the raw machine bandwidth -- exactly
  // the gap real STREAM shows on write-allocate machines.
  const double ratio = bw / machine::origin2000_r10k().memory_bandwidth_mbps();
  EXPECT_GT(ratio, 0.70);
  EXPECT_LE(ratio, 1.01);
}

// The full pipeline keeps Figure 6 semantics while slashing both footprint
// and predicted time.
TEST(Integration, Fig6PipelineReducesTrafficAndTime) {
  const ir::Program p = workloads::fig6_original(200);
  const auto opt = core::optimize(p);
  const auto before = model::measure(p, o2k_scaled());
  const auto after = model::measure(opt.program, o2k_scaled());
  EXPECT_NEAR(before.exec.checksum, after.exec.checksum,
              1e-9 * std::abs(before.exec.checksum));
  EXPECT_LT(after.profile.memory_bytes(),
            before.profile.memory_bytes() / 10);
  EXPECT_LT(after.time.total_s, before.time.total_s / 2);
}

}  // namespace
}  // namespace bwc
