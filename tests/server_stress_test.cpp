// End-to-end stress test for bwcd: one daemon, many concurrent clients,
// mixed randomized workloads. The pinned contracts:
//
//   1. Every optimize response is BIT-FOR-BIT identical to a fresh
//      in-process Service::compute_result_body run for the same request
//      -- cold, cached, any thread interleaving.
//   2. Repeats hit the compile cache (hit count > 0) and a cache hit
//      never re-runs the pass pipeline (pipeline_runs stays flat).
//   3. Nothing wedges: every request gets exactly one response.
//
// The test names match the 'Server' clause of the TSan CI regex, so the
// whole daemon -- reader threads, dispatcher batches, thread-pool
// workers, stop() -- runs under TSan in CI.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <chrono>
#include <thread>
#include <vector>

#include "bwc/ir/printer.h"
#include "bwc/server/client.h"
#include "bwc/server/daemon.h"
#include "bwc/server/json.h"
#include "bwc/server/protocol.h"
#include "bwc/server/service.h"
#include "bwc/support/prng.h"
#include "bwc/workloads/extra_programs.h"
#include "bwc/workloads/paper_programs.h"

namespace bwc::server {
namespace {

class TempDir {
 public:
  explicit TempDir(const char* tag) {
    char buf[256];
    std::snprintf(buf, sizeof buf, "/tmp/bwc-server-stress-%s-%d", tag,
                  static_cast<int>(::getpid()));
    path_ = buf;
    std::system(("rm -rf " + path_).c_str());
  }
  ~TempDir() { std::system(("rm -rf " + path_).c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// The mixed workload pool: distinct (program, pipeline, machine, cores,
/// measure) combinations, small enough that the whole pool optimizes in
/// well under a second.
std::vector<Request> workload_pool() {
  std::vector<Request> pool;
  auto add = [&pool](ir::Program program, const std::string& pipeline,
                     const std::string& machine, int cores, bool measure) {
    Request r;
    r.op = Request::Op::kOptimize;
    r.program = ir::to_string(program);
    r.pipeline = pipeline;
    r.machine = machine;
    r.cores = cores;
    r.measure = measure;
    pool.push_back(r);
  };
  add(workloads::fig7_original(512), "", "o2k", 1, true);
  add(workloads::fig7_original(513), "", "o2k", 1, true);  // near-dup key
  add(workloads::fig7_original(512), "", "exemplar", 1, true);
  add(workloads::fig7_original(512), "", "o2k", 4, true);
  add(workloads::fig7_original(512), "fuse(solver=greedy)", "o2k", 1, true);
  add(workloads::sec21_both_loops(400), "", "o2k", 1, true);
  add(workloads::jacobi_chain(300, 4), "", "modern", 1, true);
  add(workloads::blur_sharpen(256), "", "o2k", 1, false);
  add(workloads::reduction_cascade(200, 3), "", "o2k", 2, true);
  add(workloads::fig6_original(40), "", "o2k", 1, true);
  return pool;
}

TEST(ServerStress, ConcurrentMixedClientsMatchReferenceBitForBit) {
  TempDir cache_dir("cache");
  DaemonOptions options;
  options.threads = 4;
  options.queue_max = 128;
  options.service.cache_dir = cache_dir.path();
  Daemon daemon(options);
  daemon.start();
  ASSERT_GT(daemon.port(), 0);

  // Reference bodies computed fresh, in-process, single-threaded.
  const std::vector<Request> pool = workload_pool();
  std::vector<std::string> expected;
  expected.reserve(pool.size());
  for (const Request& request : pool)
    expected.push_back(Service::compute_result_body(request));

  constexpr int kClients = 8;
  constexpr int kRequestsPerClient = 14;
  std::atomic<int> ok_count{0};
  std::atomic<int> mismatch_count{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Prng rng(0x5eed + static_cast<std::uint64_t>(c));
      Client client("127.0.0.1", daemon.port());
      for (int i = 0; i < kRequestsPerClient; ++i) {
        // Mostly optimize ops; sprinkle pings and stats through the same
        // connections to shake the inline reader path.
        const std::uint64_t roll = rng.uniform(10);
        if (roll == 0) {
          Request ping;
          ping.op = Request::Op::kPing;
          const Response response = client.call(ping);
          EXPECT_EQ(response.status, "ok");
          continue;
        }
        if (roll == 1) {
          Request stats;
          stats.op = Request::Op::kStats;
          const Response response = client.call(stats);
          EXPECT_EQ(response.status, "ok");
          continue;
        }
        const std::size_t pick = rng.uniform(pool.size());
        const Response response = client.call(pool[pick]);
        if (response.status != "ok") {
          ADD_FAILURE() << "status " << response.status << ": "
                        << response.error;
          continue;
        }
        ++ok_count;
        if (response.result_json != expected[pick]) ++mismatch_count;
      }
    });
  }
  for (std::thread& t : clients) t.join();

  EXPECT_EQ(mismatch_count.load(), 0)
      << "daemon responses diverged from in-process optimize";
  EXPECT_GT(ok_count.load(), kClients * kRequestsPerClient / 2);

  // With 8x14 requests over a 10-entry pool, repeats are guaranteed.
  const Service::Stats stats = daemon.service().stats();
  EXPECT_GT(stats.cache_hits, 0u) << "no cache hit across repeats";
  EXPECT_LE(stats.pipeline_runs, static_cast<std::uint64_t>(pool.size()))
      << "a repeated request re-ran the pipeline";

  daemon.stop();
}

TEST(ServerStress, RepeatedIdenticalRequestServedFromCacheUnchanged) {
  TempDir cache_dir("repeat");
  DaemonOptions options;
  options.threads = 2;
  options.service.cache_dir = cache_dir.path();
  Daemon daemon(options);
  daemon.start();

  Request request;
  request.op = Request::Op::kOptimize;
  request.program = ir::to_string(workloads::fig7_original(600));

  Client client("127.0.0.1", daemon.port());
  const Response cold = client.call(request);
  ASSERT_EQ(cold.status, "ok") << cold.error;
  EXPECT_FALSE(cold.cache_hit);
  const std::uint64_t runs_after_cold = daemon.service().stats().pipeline_runs;
  EXPECT_EQ(runs_after_cold, 1u);

  for (int i = 0; i < 5; ++i) {
    const Response warm = client.call(request);
    ASSERT_EQ(warm.status, "ok") << warm.error;
    EXPECT_TRUE(warm.cache_hit) << "repeat " << i << " missed the cache";
    EXPECT_EQ(warm.result_json, cold.result_json)
        << "cached response not bit-identical on repeat " << i;
  }
  // The acceptance gate: repeats never re-ran the pass pipeline.
  EXPECT_EQ(daemon.service().stats().pipeline_runs, runs_after_cold);
  EXPECT_EQ(daemon.service().stats().cache_hits, 5u);

  daemon.stop();
}

TEST(ServerStress, CachePersistsAcrossDaemonRestart) {
  TempDir cache_dir("restart");
  Request request;
  request.op = Request::Op::kOptimize;
  request.program = ir::to_string(workloads::sec21_both_loops(300));

  std::string cold_body;
  {
    DaemonOptions options;
    options.service.cache_dir = cache_dir.path();
    Daemon daemon(options);
    daemon.start();
    Client client("127.0.0.1", daemon.port());
    const Response cold = client.call(request);
    ASSERT_EQ(cold.status, "ok") << cold.error;
    cold_body = cold.result_json;
    daemon.stop();
  }
  {
    DaemonOptions options;
    options.service.cache_dir = cache_dir.path();
    Daemon daemon(options);
    daemon.start();
    Client client("127.0.0.1", daemon.port());
    const Response warm = client.call(request);
    ASSERT_EQ(warm.status, "ok") << warm.error;
    EXPECT_TRUE(warm.cache_hit) << "fresh daemon missed the on-disk entry";
    EXPECT_EQ(warm.result_json, cold_body);
    EXPECT_EQ(daemon.service().stats().pipeline_runs, 0u);
    daemon.stop();
  }
}

TEST(ServerStress, GracefulStopAnswersEverythingQueued) {
  // Queue a burst of slow requests, stop() mid-flight, and require that
  // every request already accepted got its answer (ok), while requests
  // sent after the drain began get "[shutting-down]" or a transport
  // error -- never a hang.
  DaemonOptions options;
  options.threads = 2;
  options.queue_max = 64;
  options.service.debug_delay_ms = 20;
  Daemon daemon(options);
  daemon.start();

  Request request;
  request.op = Request::Op::kOptimize;
  request.program = ir::to_string(workloads::fig7_original(550));
  request.measure = false;

  constexpr int kClients = 4;
  std::atomic<int> answered{0};
  std::atomic<int> rejected{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      try {
        Client client("127.0.0.1", daemon.port(), /*timeout_ms=*/10'000);
        for (int i = 0; i < 6; ++i) {
          const Response response = client.call(request);
          if (response.status == "ok")
            ++answered;
          else
            ++rejected;
        }
      } catch (const std::exception&) {
        // Connection torn down by the drain: acceptable for requests
        // sent after stop(), and counted as rejected work.
        ++rejected;
      }
    });
  }
  // Let some requests land, then drain while clients are still sending.
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  daemon.stop();
  for (std::thread& t : clients) t.join();

  EXPECT_GT(answered.load(), 0) << "drain answered nothing";
  // Everything was either answered or visibly rejected; the joins above
  // completing at all proves no client hung.
  EXPECT_EQ(answered.load() + rejected.load() >= kClients, true);
}

}  // namespace
}  // namespace bwc::server
