// Fault-injection tests for bwcd: every abuse in the protocol's threat
// model gets a structured error or a clean eviction -- never a crash, a
// wedge, or a wrong answer. Test names match the 'Server' clause of the
// TSan CI regex so the failure paths run under TSan too.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bwc/ir/printer.h"
#include "bwc/server/cache.h"
#include "bwc/server/client.h"
#include "bwc/server/daemon.h"
#include "bwc/server/frame.h"
#include "bwc/server/protocol.h"
#include "bwc/server/service.h"
#include "bwc/support/error.h"
#include "bwc/workloads/paper_programs.h"

namespace bwc::server {
namespace {

class TempDir {
 public:
  explicit TempDir(const char* tag) {
    char buf[256];
    std::snprintf(buf, sizeof buf, "/tmp/bwc-server-fault-%s-%d", tag,
                  static_cast<int>(::getpid()));
    path_ = buf;
    std::system(("rm -rf " + path_).c_str());
    std::system(("mkdir -p " + path_).c_str());
  }
  ~TempDir() {
    std::system(("chmod -R u+w " + path_ + " 2>/dev/null").c_str());
    std::system(("rm -rf " + path_).c_str());
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

Request small_request() {
  Request r;
  r.op = Request::Op::kOptimize;
  r.program = ir::to_string(workloads::fig7_original(500));
  r.measure = false;
  return r;
}

TEST(ServerFault, GarbageJsonGetsErrorAndConnectionSurvives) {
  Daemon daemon(DaemonOptions{});
  daemon.start();
  Client client("127.0.0.1", daemon.port());

  // Garbage JSON in a well-formed frame: structured error, same
  // connection keeps working.
  const std::string raw = client.call_raw("{not json at all");
  const Response error = parse_response(raw);
  EXPECT_EQ(error.status, "error");
  EXPECT_NE(error.error.find("[bad-json]"), std::string::npos) << error.error;

  // Schema violations likewise.
  const Response bad = parse_response(client.call_raw(R"({"op":"nope"})"));
  EXPECT_EQ(bad.status, "error");
  EXPECT_NE(bad.error.find("[bad-request]"), std::string::npos) << bad.error;

  // And the connection is still synchronized: a real request succeeds.
  const Response ok = client.call(small_request());
  EXPECT_EQ(ok.status, "ok") << ok.error;

  EXPECT_GE(daemon.counters().malformed_frames, 2u);
  daemon.stop();
}

TEST(ServerFault, EmptyFrameIsIgnored) {
  Daemon daemon(DaemonOptions{});
  daemon.start();
  Client client("127.0.0.1", daemon.port());
  // A zero-length frame is legal no-op padding; the next real frame on
  // the same connection is answered normally.
  client.send_bytes(encode_frame(""));
  const Response ok = client.call(small_request());
  EXPECT_EQ(ok.status, "ok") << ok.error;
  daemon.stop();
}

TEST(ServerFault, OversizedLengthPrefixGetsErrorThenClose) {
  Daemon daemon(DaemonOptions{});
  daemon.start();
  Client client("127.0.0.1", daemon.port());
  client.send_bytes(std::string("\xff\xff\xff\xff", 4));
  const Response error = parse_response(client.read_frame());
  EXPECT_EQ(error.status, "error");
  EXPECT_NE(error.error.find("[frame-too-large]"), std::string::npos)
      << error.error;
  // The stream is unsynchronized, so the daemon closes: the next read
  // sees EOF (or a reset), never a hang.
  EXPECT_THROW(client.read_frame(), Error);
  // The daemon itself is fine.
  Client fresh("127.0.0.1", daemon.port());
  Request ping;
  ping.op = Request::Op::kPing;
  EXPECT_EQ(fresh.call(ping).status, "ok");
  daemon.stop();
}

TEST(ServerFault, TruncatedFrameOnDisconnectIsCounted) {
  Daemon daemon(DaemonOptions{});
  daemon.start();
  {
    Client client("127.0.0.1", daemon.port());
    // A length prefix promising 100 bytes, then only 3, then EOF.
    client.send_bytes(std::string("\x00\x00\x00\x64", 4) + "abc");
  }  // destructor closes mid-frame
  // The daemon notices on its next poll tick; spin briefly.
  for (int i = 0; i < 100 && daemon.counters().truncated_frames == 0; ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_EQ(daemon.counters().truncated_frames, 1u);
  // Still serving.
  Client fresh("127.0.0.1", daemon.port());
  EXPECT_EQ(fresh.call(small_request()).status, "ok");
  daemon.stop();
}

TEST(ServerFault, MidRequestDisconnectLosesOnlyThatResponse) {
  DaemonOptions options;
  options.service.debug_delay_ms = 50;
  Daemon daemon(options);
  daemon.start();
  {
    // Send a full optimize request, then vanish before the (delayed)
    // response can be written.
    Client client("127.0.0.1", daemon.port());
    client.send_bytes(encode_frame(render_request(small_request())));
  }
  // The daemon must finish the job, fail the write, and keep serving.
  Client fresh("127.0.0.1", daemon.port());
  const Response ok = fresh.call(small_request());
  EXPECT_EQ(ok.status, "ok") << ok.error;
  daemon.stop();
  // The abandoned request still ran (or was answered into the void);
  // either way it reached the service and nothing leaked or crashed.
  EXPECT_GE(daemon.service().stats().requests, 1u);
}

TEST(ServerFault, FullQueueAnswersOverloadedImmediately) {
  DaemonOptions options;
  options.threads = 1;
  options.batch_max = 1;
  options.queue_max = 1;
  options.service.debug_delay_ms = 150;
  Daemon daemon(options);
  daemon.start();

  constexpr int kClients = 6;
  std::atomic<int> ok{0};
  std::atomic<int> overloaded{0};
  std::atomic<int> other{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      Client client("127.0.0.1", daemon.port(), /*timeout_ms=*/10'000);
      const Response response = client.call(small_request());
      if (response.status == "ok") {
        ++ok;
      } else if (response.status == "overloaded") {
        EXPECT_NE(response.error.find("[overloaded]"), std::string::npos);
        ++overloaded;
      } else {
        ++other;
      }
    });
  }
  for (std::thread& t : clients) t.join();  // joining at all = no hang

  EXPECT_EQ(ok.load() + overloaded.load() + other.load(), kClients);
  EXPECT_GT(ok.load(), 0);
  EXPECT_GT(overloaded.load(), 0) << "queue pressure never triggered";
  EXPECT_EQ(other.load(), 0);
  EXPECT_GT(daemon.counters().overloaded, 0u);
  daemon.stop();
}

TEST(ServerFault, StaleQueuedRequestTimesOutWithoutRunning) {
  DaemonOptions options;
  options.threads = 1;
  options.batch_max = 1;
  options.queue_max = 8;
  options.service.debug_delay_ms = 250;
  Daemon daemon(options);
  daemon.start();

  // Two requests pipelined on one connection: the first occupies the
  // only worker for 250ms; the second carries a 1ms deadline and must
  // be answered "timeout" at dispatch -- without running.
  Request slow = small_request();
  Request stale = small_request();
  stale.timeout_ms = 1;
  Client client("127.0.0.1", daemon.port(), /*timeout_ms=*/10'000);
  client.send_bytes(encode_frame(render_request(slow)) +
                    encode_frame(render_request(stale)));
  const Response first = parse_response(client.read_frame());
  const Response second = parse_response(client.read_frame());
  EXPECT_EQ(first.status, "ok") << first.error;
  EXPECT_EQ(second.status, "timeout");
  EXPECT_NE(second.error.find("[timeout]"), std::string::npos)
      << second.error;
  EXPECT_EQ(daemon.counters().timeouts, 1u);
  // The stale request never reached the pipeline.
  EXPECT_EQ(daemon.service().stats().pipeline_runs, 1u);
  daemon.stop();
}

TEST(ServerFault, CorruptedCacheEntryIsEvictedAndRecomputedIdentically) {
  TempDir cache_dir("corrupt");
  DaemonOptions options;
  options.service.cache_dir = cache_dir.path();
  Daemon daemon(options);
  daemon.start();
  Client client("127.0.0.1", daemon.port());

  const Request request = small_request();
  const Response cold = client.call(request);
  ASSERT_EQ(cold.status, "ok") << cold.error;

  // Flip bytes in every .val file in the cache directory.
  std::system(("for f in " + cache_dir.path() +
               "/*.val; do printf 'XXXX' | dd of=$f bs=1 seek=40 conv=notrunc "
               "2>/dev/null; done")
                  .c_str());

  const Response again = client.call(request);
  ASSERT_EQ(again.status, "ok") << again.error;
  EXPECT_FALSE(again.cache_hit) << "served a corrupted entry";
  EXPECT_EQ(again.result_json, cold.result_json)
      << "recomputed result diverged";
  EXPECT_GE(daemon.service().stats().cache_evictions, 1u);

  // The evicted entry was re-published: third time hits again.
  const Response warm = client.call(request);
  EXPECT_TRUE(warm.cache_hit);
  EXPECT_EQ(warm.result_json, cold.result_json);
  daemon.stop();
}

TEST(ServerFault, ReadOnlyCacheDirDegradesToUncached) {
  if (::geteuid() == 0)
    GTEST_SKIP() << "root ignores directory permissions";
  TempDir cache_dir("readonly");
  std::system(("chmod 0500 " + cache_dir.path()).c_str());
  DaemonOptions options;
  options.service.cache_dir = cache_dir.path();
  Daemon daemon(options);
  daemon.start();
  Client client("127.0.0.1", daemon.port());

  const Response first = client.call(small_request());
  EXPECT_EQ(first.status, "ok") << first.error;
  const Response second = client.call(small_request());
  EXPECT_EQ(second.status, "ok") << second.error;
  EXPECT_FALSE(second.cache_hit);
  EXPECT_GE(daemon.service().stats().cache_store_failures, 1u);
  daemon.stop();
}

TEST(ServerFault, CacheDirBlockedByRegularFileDegradesToUncached) {
  // Variant of the read-only test that works under root too: the cache
  // path's parent is a regular file, so mkdir/rename can never succeed.
  TempDir dir("blocked");
  { std::ofstream out(dir.path() + "/occupied"); out << "x"; }
  DaemonOptions options;
  options.service.cache_dir = dir.path() + "/occupied/cache";
  Daemon daemon(options);
  daemon.start();
  Client client("127.0.0.1", daemon.port());

  const Response first = client.call(small_request());
  EXPECT_EQ(first.status, "ok") << first.error;
  const Response second = client.call(small_request());
  EXPECT_EQ(second.status, "ok") << second.error;
  EXPECT_FALSE(second.cache_hit);
  EXPECT_GE(daemon.service().stats().cache_store_failures, 1u);
  daemon.stop();
}

TEST(ServerFault, ConnectionCapRejectsTheOverflowConnection) {
  DaemonOptions options;
  options.max_connections = 2;
  Daemon daemon(options);
  daemon.start();
  Client a("127.0.0.1", daemon.port());
  Client b("127.0.0.1", daemon.port());
  Request ping;
  ping.op = Request::Op::kPing;
  EXPECT_EQ(a.call(ping).status, "ok");
  EXPECT_EQ(b.call(ping).status, "ok");

  // The third connection gets a structured rejection frame, then EOF.
  Client c("127.0.0.1", daemon.port());
  const Response rejected = parse_response(c.read_frame());
  EXPECT_EQ(rejected.status, "overloaded");
  EXPECT_NE(rejected.error.find("[overloaded]"), std::string::npos)
      << rejected.error;
  EXPECT_GE(daemon.counters().connections_rejected, 1u);
  daemon.stop();
}

}  // namespace
}  // namespace bwc::server
