// Pipeline tests over realistic multi-loop programs (Jacobi chains, ADI
// sweeps, image chains): fusion legality in the presence of stencil
// offsets, full-pipeline semantics, and profitability.
#include <gtest/gtest.h>

#include <cmath>

#include "bwc/analysis/liveness.h"
#include "bwc/core/optimizer.h"
#include "bwc/fusion/solvers.h"
#include "bwc/ir/printer.h"
#include "bwc/model/measure.h"
#include "bwc/runtime/interpreter.h"
#include "bwc/transform/fuse.h"
#include "bwc/workloads/extra_programs.h"

namespace bwc {
namespace {

void expect_preserved(const ir::Program& a, const ir::Program& b) {
  const double ca = runtime::execute(a).checksum;
  const double cb = runtime::execute(b).checksum;
  EXPECT_NEAR(ca, cb, 1e-9 * (std::abs(ca) + 1.0))
      << "transformed:\n" << ir::to_string(b);
}

// -- Jacobi chain ---------------------------------------------------------------

TEST(JacobiChain, StencilOffsetsBlockAdjacentSweepFusion) {
  const ir::Program p = workloads::jacobi_chain(64, 4);
  const auto g = fusion::build_fusion_graph(p);
  // Sweep s+1 reads sweep s's output at offsets -1/0/+1; the +1 read makes
  // fusing adjacent sweeps illegal.
  ASSERT_GE(g.node_count(), 5);
  EXPECT_TRUE(g.is_preventing(0, 1));
  EXPECT_TRUE(g.is_preventing(1, 2));
  // Sweeps two apart write different arrays from what they read... they
  // share arrays with offset reads too; what must hold is plan validity.
  const auto plan = fusion::best_fusion(g);
  EXPECT_TRUE(fusion::plan_is_valid(g, plan.assignment));
}

TEST(JacobiChain, PipelinePreservesSemantics) {
  const ir::Program p = workloads::jacobi_chain(64, 4);
  const auto r = core::optimize(p);
  expect_preserved(p, r.program);
}

TEST(JacobiChain, NormLoopFusesWithLastSweep) {
  // The final norm reduction reads u at offset 0 only: it can fuse with
  // the last sweep that writes u.
  const ir::Program p = workloads::jacobi_chain(64, 4);
  const auto g = fusion::build_fusion_graph(p);
  const int last_sweep = 3;
  const int norm_loop = 4;
  EXPECT_FALSE(g.is_preventing(last_sweep, norm_loop));
  const auto plan = fusion::best_fusion(g);
  EXPECT_EQ(plan.assignment[static_cast<std::size_t>(last_sweep)],
            plan.assignment[static_cast<std::size_t>(norm_loop)]);
}

// -- ADI-like -------------------------------------------------------------------

TEST(AdiLike, RowAndColumnSweepsCannotFuse) {
  const ir::Program p = workloads::adi_like(16);
  const auto g = fusion::build_fusion_graph(p);
  // The row sweep's i-recurrence vs the column sweep's j-recurrence on the
  // same array reverse a dependence under any alignment.
  EXPECT_TRUE(g.is_preventing(0, 1));
}

TEST(AdiLike, ChecksumFusesWithColumnSweep) {
  const ir::Program p = workloads::adi_like(16);
  const auto g = fusion::build_fusion_graph(p);
  const auto plan = fusion::best_fusion(g);
  EXPECT_TRUE(fusion::plan_is_valid(g, plan.assignment));
  EXPECT_LT(plan.num_partitions, g.node_count());  // something fused
  const ir::Program fused = transform::apply_fusion(p, g, plan);
  expect_preserved(p, fused);
}

TEST(AdiLike, FullPipelineSemantics) {
  const ir::Program p = workloads::adi_like(20);
  for (auto solver : {core::FusionSolver::kBest, core::FusionSolver::kGreedy,
                      core::FusionSolver::kBisection}) {
    core::OptimizerOptions opts;
    opts.solver = solver;
    expect_preserved(p, core::optimize(p, opts).program);
  }
}

// -- Blur/sharpen chain -----------------------------------------------------------

TEST(BlurSharpen, ChainFusesAndContracts) {
  const ir::Program p = workloads::blur_sharpen(128);
  const auto r = core::optimize(p);
  expect_preserved(p, r.program);
  // blur and diff are intermediates; after fusion they contract and their
  // stores disappear from the referenced set. img and out must survive
  // (inputs/outputs).
  const auto live = analysis::analyze_liveness(r.program);
  bool blur_gone = true;
  for (int a = 0; a < r.program.array_count(); ++a) {
    if (r.program.array(a).name == "blur" &&
        (!live[static_cast<std::size_t>(a)].reading_stmts.empty() ||
         !live[static_cast<std::size_t>(a)].writing_stmts.empty()))
      blur_gone = false;
  }
  EXPECT_TRUE(blur_gone) << ir::to_string(r.program);
}

TEST(BlurSharpen, TrafficDropsSubstantially) {
  const ir::Program p = workloads::blur_sharpen(100000);
  const auto r = core::optimize(p);
  const auto machine = machine::origin2000_r10k().scaled(16);
  const auto before = model::measure(p, machine);
  const auto after = model::measure(r.program, machine);
  EXPECT_LT(after.profile.memory_bytes(),
            before.profile.memory_bytes() / 2);
  EXPECT_NEAR(before.exec.checksum, after.exec.checksum,
              1e-9 * std::abs(before.exec.checksum));
}

TEST(BlurSharpen, BlurFusionBlockedByForwardOffset) {
  // blur reads img[i+1]; diff/out read img[i]: all loops over the same
  // range. blur -> diff is offset-0 flow (fusable); check the graph shape.
  const ir::Program p = workloads::blur_sharpen(64);
  const auto g = fusion::build_fusion_graph(p);
  EXPECT_FALSE(g.is_preventing(0, 1));
  EXPECT_FALSE(g.is_preventing(1, 2));
  EXPECT_FALSE(g.is_preventing(2, 3));
}

// -- Reduction cascade -------------------------------------------------------------

TEST(ReductionCascade, AllKernelsFuseIntoOnePass) {
  const ir::Program p = workloads::reduction_cascade(256, 5);
  const auto g = fusion::build_fusion_graph(p);
  const auto plan = fusion::best_fusion(g);
  EXPECT_EQ(plan.num_partitions, 1);
  EXPECT_EQ(plan.cost, 1);  // the single shared input array
  expect_preserved(p, transform::apply_fusion(p, g, plan));
}

TEST(ReductionCascade, TrafficScalesDownByKernelCount) {
  const int kernels = 6;
  const ir::Program p = workloads::reduction_cascade(100000, kernels);
  const auto r = core::optimize(p);
  const auto machine = machine::origin2000_r10k().scaled(16);
  const double before =
      static_cast<double>(model::measure(p, machine).profile.memory_bytes());
  const double after = static_cast<double>(
      model::measure(r.program, machine).profile.memory_bytes());
  EXPECT_NEAR(before / after, kernels, 0.5);
}

}  // namespace
}  // namespace bwc
