#include <gtest/gtest.h>

#include <cmath>

#include "bwc/machine/machine_model.h"
#include "bwc/memsim/hierarchy.h"
#include "bwc/runtime/interpreter.h"
#include "bwc/runtime/recorder.h"
#include "bwc/workloads/kernels.h"
#include "bwc/workloads/paper_programs.h"
#include "bwc/workloads/random_programs.h"
#include "bwc/workloads/sp_proxy.h"
#include "bwc/workloads/stream.h"
#include "bwc/workloads/stride_kernels.h"
#include "bwc/workloads/sweep3d_proxy.h"

namespace bwc::workloads {
namespace {

TEST(StrideKernels, ThirteenSpecsWithPaperNames) {
  const auto& specs = figure3_kernels();
  EXPECT_EQ(specs.size(), 13u);
  EXPECT_EQ(specs[0].name, "1w1r");
  EXPECT_EQ(specs[8].name, "3w6r");
  EXPECT_EQ(specs[8].arrays(), 6);
  EXPECT_EQ(specs[11].name, "0w3r");
}

TEST(StrideKernels, UsefulBytesAccounting) {
  EXPECT_EQ(useful_bytes_per_element({"1w1r", 1, 1}), 16u);
  EXPECT_EQ(useful_bytes_per_element({"1w2r", 1, 2}), 24u);
  EXPECT_EQ(useful_bytes_per_element({"0w1r", 0, 1}), 8u);
  EXPECT_EQ(useful_bytes_per_element({"3w6r", 3, 6}), 72u);
}

TEST(StrideKernels, AccessCountsMatchSpec) {
  AddressSpace space;
  for (const auto& spec : figure3_kernels()) {
    StrideKernel kernel(spec, 100, space);
    runtime::Recorder rec;
    kernel.run(rec);
    // Reads: every read array once per element, plus written arrays read
    // once (unless the fill kernel).
    const std::uint64_t expected_loads =
        100u * static_cast<std::uint64_t>(spec.reads);
    const std::uint64_t expected_stores =
        100u * static_cast<std::uint64_t>(spec.writes);
    EXPECT_EQ(rec.load_count(), expected_loads) << spec.name;
    EXPECT_EQ(rec.store_count(), expected_stores) << spec.name;
    EXPECT_GT(rec.flop_count(), 0u) << spec.name;
  }
}

TEST(StrideKernels, SimulatedTrafficNearUseful) {
  // In steady state (warm-up pass, then measure) the memory traffic of a
  // traversal matches the useful traffic: reads plus writebacks.
  AddressSpace space;
  StrideKernelSpec spec{"1w2r", 1, 2};
  StrideKernel kernel(spec, 50000, space);
  memsim::MemoryHierarchy h(machine::origin2000_r10k().scaled(16).caches);
  {
    runtime::Recorder warmup(&h);
    kernel.run(warmup);
  }
  h.reset_stats();
  runtime::Recorder rec(&h);
  kernel.run(rec);
  const double measured = static_cast<double>(h.memory_traffic_bytes());
  const double useful = static_cast<double>(kernel.useful_bytes());
  EXPECT_NEAR(measured / useful, 1.0, 0.05);
}

TEST(Kernels, ConvolutionMatchesReference) {
  AddressSpace space;
  Convolution conv(64, 4, space);
  NullRecorder null;
  const double last = conv.run(null);
  EXPECT_TRUE(std::isfinite(last));
  runtime::Recorder rec;
  conv.run(rec);
  EXPECT_EQ(rec.flop_count(), conv.flops());
  EXPECT_EQ(rec.load_count(), 2u * 64 * 4);
  EXPECT_EQ(rec.store_count(), 64u);
}

TEST(Kernels, DmxpyComputesMatrixVectorUpdate) {
  AddressSpace space;
  Dmxpy d(50, 7, space);  // odd column count exercises the peel pass
  runtime::Recorder rec;
  d.run(rec);
  EXPECT_EQ(rec.flop_count(), d.flops());
  EXPECT_EQ(rec.store_count(), 50u * 4);  // one y store per column pass
}

TEST(Kernels, MatMulJkiAndBlockedAgree) {
  AddressSpace space;
  MatMul mm(24, space);
  NullRecorder null;
  const double r1 = mm.run_jki(null);
  mm.reset_c();
  const double r2 = mm.run_blocked(null, 8);
  EXPECT_NEAR(r1, r2, 1e-9 * std::abs(r1));
}

TEST(Kernels, MatMulFlopCount) {
  AddressSpace space;
  MatMul mm(16, space);
  runtime::Recorder rec;
  mm.run_jki(rec);
  EXPECT_EQ(rec.flop_count(), mm.flops());
}

TEST(Kernels, BlockedMatMulMovesFarLessMemory) {
  // The Figure 1 mm(-O2) vs mm(-O3) contrast in miniature.
  const auto machine = machine::origin2000_r10k().scaled(16);
  AddressSpace space;
  MatMul mm(192, space);  // 3 x 288 KB arrays vs 256 KB L2

  memsim::MemoryHierarchy h1(machine.caches);
  runtime::Recorder r1(&h1);
  mm.run_jki(r1);
  const double naive = static_cast<double>(h1.memory_traffic_bytes());

  mm.reset_c();
  memsim::MemoryHierarchy h2(machine.caches);
  runtime::Recorder r2(&h2);
  mm.run_blocked(r2, 16);
  const double blocked = static_cast<double>(h2.memory_traffic_bytes());
  EXPECT_LT(blocked, naive / 3.0);
}

TEST(Kernels, FftRunsAndCountsFlops) {
  AddressSpace space;
  Fft fft(256, space);
  runtime::Recorder rec;
  const double out = fft.run(rec);
  EXPECT_TRUE(std::isfinite(out));
  // ~ (n/2) log2(n) butterflies at 16 flops each.
  const double butterflies = 128.0 * 8.0;
  EXPECT_NEAR(static_cast<double>(rec.flop_count()), butterflies * 16.0,
              butterflies * 16.0 * 0.2);
}

TEST(Kernels, FftParsevalSanity) {
  // FFT of a constant signal concentrates energy in bin 0.
  AddressSpace space;
  Fft fft(8, space);
  NullRecorder null;
  fft.run(null);
  SUCCEED();  // numeric sanity is covered by flop/output checks above
}

TEST(SpProxy, SevenSubroutinesRun) {
  AddressSpace space;
  SpProxy sp(8, space);
  EXPECT_EQ(SpProxy::subroutine_names().size(), 7u);
  runtime::Recorder rec;
  sp.step(rec);
  EXPECT_GT(rec.flop_count(), 0u);
  EXPECT_GT(rec.load_count(), 0u);
  EXPECT_TRUE(std::isfinite(sp.checksum()));
  EXPECT_THROW(sp.run_subroutine(7, rec), Error);
}

TEST(SpProxy, SolvesAreFlopHeavierThanAdd) {
  AddressSpace space;
  SpProxy sp(8, space);
  runtime::Recorder solve;
  sp.x_solve(solve);
  runtime::Recorder add;
  sp.add(add);
  const double solve_intensity =
      static_cast<double>(solve.flop_count()) /
      static_cast<double>(solve.register_bytes());
  const double add_intensity = static_cast<double>(add.flop_count()) /
                               static_cast<double>(add.register_bytes());
  EXPECT_GT(solve_intensity, 4.0 * add_intensity);
}

TEST(Sweep3d, WavefrontSweepsAllCells) {
  AddressSpace space;
  Sweep3dProxy sweep(6, 2, space);
  runtime::Recorder rec;
  sweep.sweep(rec);
  // Each octant x angle visits every cell once.
  EXPECT_EQ(rec.store_count() % (6u * 6 * 6), 0u);
  EXPECT_TRUE(std::isfinite(sweep.checksum()));
  EXPECT_GT(sweep.checksum(), 0.0);
}

TEST(Stream, OpsComputeCorrectly) {
  AddressSpace space;
  Stream s(64, space);
  NullRecorder null;
  EXPECT_DOUBLE_EQ(s.run(StreamOp::kCopy, null), 2.0);
  EXPECT_DOUBLE_EQ(s.run(StreamOp::kScale, null), 6.0);
  EXPECT_DOUBLE_EQ(s.run(StreamOp::kAdd, null), 2.5);
  EXPECT_DOUBLE_EQ(s.run(StreamOp::kTriad, null), 3.5);
}

TEST(Stream, ByteAndFlopAccounting) {
  EXPECT_EQ(stream_bytes_per_element(StreamOp::kCopy), 16u);
  EXPECT_EQ(stream_bytes_per_element(StreamOp::kTriad), 24u);
  EXPECT_EQ(stream_flops_per_element(StreamOp::kTriad), 2u);
  EXPECT_STREQ(stream_op_name(StreamOp::kAdd), "add");
}

TEST(WorkingSetSweep, RepeatedPassesHitInCache) {
  AddressSpace space;
  WorkingSetSweep sweep(4096, space);  // fits the 32 KB L1
  memsim::MemoryHierarchy h(machine::origin2000_r10k().caches);
  runtime::Recorder rec(&h);
  sweep.read_passes(8, rec);
  // First pass misses; the other seven hit: memory traffic ~ one pass.
  EXPECT_LE(h.memory_traffic_bytes(), 2u * 4096);
}

TEST(PaperPrograms, Sec21ProgramsExecute) {
  const auto w = runtime::execute(sec21_write_loop(64));
  EXPECT_EQ(w.stores, 64u);
  const auto r = runtime::execute(sec21_read_loop(64));
  EXPECT_EQ(r.stores, 0u);
  EXPECT_EQ(r.loads, 64u);
  const auto both = runtime::execute(sec21_both_loops(64));
  EXPECT_EQ(both.loads, 2u * 64);
}

TEST(PaperPrograms, Fig6AndFig7WellFormed) {
  EXPECT_EQ(fig6_original(16).top_loop_indices().size(), 4u);
  EXPECT_EQ(fig7_original(16).top_loop_indices().size(), 2u);
  EXPECT_NO_THROW(runtime::execute(fig6_original(16)));
  EXPECT_NO_THROW(runtime::execute(fig7_original(16)));
}

TEST(RandomPrograms, AlwaysExecutable) {
  Prng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    const ir::Program p = random_program(rng);
    EXPECT_NO_THROW(runtime::execute(p)) << "trial " << trial;
  }
}

TEST(RandomPrograms, DeterministicInSeed) {
  Prng rng1(5), rng2(5);
  const ir::Program a = random_program(rng1);
  const ir::Program b = random_program(rng2);
  EXPECT_TRUE(ir::equal(a, b));
}

}  // namespace
}  // namespace bwc::workloads
