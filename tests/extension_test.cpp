// Tests for the extension components: latency-tolerance model, bandwidth
// prediction/tuning, inter-array regrouping, the k-way-cut reduction and
// byte-weighted fusion.
#include <gtest/gtest.h>

#include <cmath>

#include "bwc/fusion/kway_reduction.h"
#include "bwc/fusion/solvers.h"
#include "bwc/graph/random_graphs.h"
#include "bwc/ir/dsl.h"
#include "bwc/machine/latency_model.h"
#include "bwc/model/measure.h"
#include "bwc/model/prediction.h"
#include "bwc/runtime/interpreter.h"
#include "bwc/support/error.h"
#include "bwc/support/prng.h"
#include "bwc/transform/regrouping.h"
#include "bwc/workloads/paper_programs.h"
#include "bwc/workloads/random_programs.h"

namespace bwc {
namespace {

using namespace ir::dsl;  // NOLINT

// -- Latency model -----------------------------------------------------------

machine::ExecutionProfile streaming_profile() {
  return model::measure(workloads::sec21_read_loop(200000),
                        machine::origin2000_r10k().scaled(16))
      .profile;
}

TEST(LatencyModel, DefaultsCoverEveryBoundary) {
  const auto m = machine::origin2000_r10k();
  const auto lm = machine::default_latency(m);
  EXPECT_EQ(lm.miss_latency_s.size(), m.caches.size());
  for (double l : lm.miss_latency_s) EXPECT_GT(l, 0.0);
  // Memory is the farthest, hence the slowest.
  EXPECT_GT(lm.miss_latency_s.back(), lm.miss_latency_s.front());
}

TEST(LatencyModel, BlockingCacheIsLatencyBound) {
  const auto m = machine::origin2000_r10k();
  const auto lm = machine::default_latency(m);
  const auto p = machine::predict_time_with_latency(streaming_profile(), m, lm);
  EXPECT_FALSE(p.bandwidth_limited);
  EXPECT_GT(p.total_s, p.bandwidth_bound_s);
}

TEST(LatencyModel, ConvergesToBandwidthWall) {
  const auto m = machine::origin2000_r10k();
  const auto lm = machine::default_latency(m);
  const auto profile = streaming_profile();
  const auto sweep = machine::latency_tolerance_sweep(
      profile, m, lm, {1, 2, 4, 8, 64, 1024});
  // Monotone non-increasing, floored at the bandwidth bound.
  for (std::size_t i = 1; i < sweep.size(); ++i)
    EXPECT_LE(sweep[i].total_s, sweep[i - 1].total_s);
  EXPECT_TRUE(sweep.back().bandwidth_limited);
  EXPECT_DOUBLE_EQ(sweep.back().total_s, sweep.back().bandwidth_bound_s);
  // No overlap depth beats the bandwidth bound.
  for (const auto& p : sweep) EXPECT_GE(p.total_s, p.bandwidth_bound_s);
}

TEST(LatencyModel, MissCountsMatchBoundaryBytes) {
  const auto m = machine::origin2000_r10k();
  const auto profile = streaming_profile();
  const auto misses = machine::boundary_miss_counts(m, profile);
  ASSERT_EQ(misses.size(), 2u);
  EXPECT_EQ(misses[0] * m.caches[0].line_bytes,
            profile.boundaries[1].total());
  EXPECT_EQ(misses[1] * m.caches[1].line_bytes,
            profile.boundaries[2].total());
}

TEST(LatencyModel, RejectsBadOverlap) {
  const auto m = machine::origin2000_r10k();
  auto lm = machine::default_latency(m);
  lm.overlap = 0.5;
  EXPECT_THROW(
      machine::predict_time_with_latency(streaming_profile(), m, lm), Error);
}

// -- Prediction / tuning -------------------------------------------------------

TEST(Prediction, RequiredBandwidthScalesWithRatio) {
  const auto m = machine::origin2000_r10k();
  model::ProgramBalance b{"dmxpy", {8.3, 8.3, 8.4}};
  // ratio 10.5 -> needs 10.5x the machine's 320 MB/s.
  EXPECT_NEAR(model::required_memory_bandwidth_mbps(b, m), 10.5 * 320.0, 1.0);
  // A compute-bound program needs no upgrade.
  model::ProgramBalance light{"light", {0.1, 0.1, 0.1}};
  EXPECT_DOUBLE_EQ(model::required_memory_bandwidth_mbps(light, m), 320.0);
}

TEST(Prediction, UpgradeSpeedupSaturates) {
  const auto m = machine::origin2000_r10k().scaled(16);
  const auto profile = streaming_profile();
  const double s2 =
      model::speedup_from_memory_bandwidth(profile, machine::origin2000_r10k(),
                                           2 * 320.0);
  EXPECT_NEAR(s2, 2.0, 0.05);  // memory-bound: 2x bandwidth = 2x speed
  const double s100 = model::speedup_from_memory_bandwidth(
      profile, machine::origin2000_r10k(), 100 * 320.0);
  // Eventually another resource binds; speedup saturates below 100x.
  EXPECT_LT(s100, 20.0);
  EXPECT_GT(s100, s2);
}

TEST(Prediction, TuningReportNamesBindingBoundary) {
  const auto profile = streaming_profile();
  const auto advice =
      model::tuning_report(profile, machine::origin2000_r10k());
  ASSERT_EQ(advice.size(), 3u);
  EXPECT_TRUE(advice.back().binding);  // memory binds a streaming read
  EXPECT_FALSE(advice.front().binding);
  const std::string rendered = model::render_tuning_report(advice);
  EXPECT_NE(rendered.find("Mem-L2"), std::string::npos);
  EXPECT_NE(rendered.find("<- yes"), std::string::npos);
}

// -- Regrouping -----------------------------------------------------------------

ir::Program coaccessed_program(std::int64_t n) {
  ir::Program p("co");
  const ir::ArrayId a = p.add_array("a", {n});
  const ir::ArrayId b = p.add_array("b", {n});
  const ir::ArrayId c = p.add_array("c", {n});
  p.add_scalar("s");
  p.mark_output_scalar("s");
  p.append(loop("i", 1, n,
                assign("s", sref("s") + (at(a, v("i")) + at(b, v("i")))),
                assign(c, {v("i")}, at(a, v("i")) * at(b, v("i")))));
  return p;
}

TEST(Regrouping, CandidatesGroupCoaccessedSameShapeArrays) {
  const ir::Program p = coaccessed_program(64);
  const auto groups = transform::regrouping_candidates(p);
  // a and b are read-only co-accessed; c is written (different bucket).
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].size(), 2u);
}

TEST(Regrouping, PreservesSemantics) {
  const ir::Program p = coaccessed_program(64);
  const auto r = transform::regroup_all(p);
  ASSERT_EQ(r.actions.size(), 1u);
  EXPECT_NEAR(runtime::execute(p).checksum,
              runtime::execute(r.program).checksum, 1e-9);
}

TEST(Regrouping, InterleavesSubscripts) {
  const ir::Program p = coaccessed_program(8);
  const auto r = transform::regroup_all(p);
  // A grouped array of extent 16 exists and a/b are no longer referenced.
  bool found = false;
  for (const auto& decl : r.program.arrays()) {
    if (decl.name.rfind("grp_", 0) == 0) {
      EXPECT_EQ(decl.extents[0], 16);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Regrouping, SkipsOutputsAndSingletons) {
  ir::Program p("t");
  const ir::ArrayId a = p.add_array("a", {16});
  const ir::ArrayId b = p.add_array("b", {16});
  p.mark_output_array(b);
  p.add_scalar("s");
  p.mark_output_scalar("s");
  p.append(loop("i", 1, 16,
                assign("s", sref("s") + at(a, v("i")) + at(b, v("i")))));
  EXPECT_TRUE(transform::regrouping_candidates(p).empty());
}

TEST(Regrouping, RejectsMalformedGroups) {
  ir::Program p("t");
  const ir::ArrayId a = p.add_array("a", {16});
  const ir::ArrayId b = p.add_array("b", {32});  // different shape
  EXPECT_THROW(transform::regroup_arrays(p, {{a, b}}), Error);
  EXPECT_THROW(transform::regroup_arrays(p, {{a}}), Error);
}

TEST(Regrouping, RandomProgramsPreserveSemantics) {
  Prng rng(31415);
  for (int trial = 0; trial < 15; ++trial) {
    const ir::Program p = workloads::random_program(rng);
    const auto r = transform::regroup_all(p);
    const double before = runtime::execute(p).checksum;
    const double after = runtime::execute(r.program).checksum;
    EXPECT_NEAR(before, after, 1e-9 * (std::abs(before) + 1.0))
        << "trial " << trial;
  }
}

TEST(Regrouping, TwoDimensionalArrays) {
  ir::Program p("t2d");
  const ir::ArrayId a = p.add_array("a", {8, 8});
  const ir::ArrayId b = p.add_array("b", {8, 8});
  p.add_scalar("s");
  p.mark_output_scalar("s");
  p.append(loop("j", 1, 8,
                loop("i", 1, 8,
                     assign("s", sref("s") + (at(a, v("i"), v("j")) +
                                              at(b, v("i"), v("j")))))));
  const auto r = transform::regroup_all(p);
  ASSERT_EQ(r.actions.size(), 1u);
  EXPECT_NEAR(runtime::execute(p).checksum,
              runtime::execute(r.program).checksum, 1e-9);
}

// -- k-way cut reduction (paper Section 3.1.3) ------------------------------------

TEST(KWayReduction, MatchesBruteForceOnRandomGraphs) {
  Prng rng(2718);
  for (int trial = 0; trial < 25; ++trial) {
    const auto g = graph::random_undirected(rng, 7, 0.45, 4);
    const std::vector<int> terminals = {0, 3, 6};
    const auto via_fusion = fusion::kway_cut_via_fusion(g, terminals);
    const auto brute = fusion::kway_cut_bruteforce(g, terminals);
    EXPECT_EQ(via_fusion.cut_weight, brute.cut_weight) << "trial " << trial;
    // Terminals separated.
    EXPECT_NE(via_fusion.assignment[0], via_fusion.assignment[3]);
    EXPECT_NE(via_fusion.assignment[0], via_fusion.assignment[6]);
    EXPECT_NE(via_fusion.assignment[3], via_fusion.assignment[6]);
  }
}

TEST(KWayReduction, TwoTerminalsIsMinCut) {
  // For k = 2 the reduction degenerates to ordinary min s-t cut.
  graph::UndirectedGraph g(4);
  g.add_edge(0, 1, 3);
  g.add_edge(1, 3, 2);
  g.add_edge(0, 2, 1);
  g.add_edge(2, 3, 4);
  const auto r = fusion::kway_cut_via_fusion(g, {0, 3});
  EXPECT_EQ(r.cut_weight, 3);  // cut {1->3 (2), 0->2 (1)}
}

TEST(KWayReduction, ValidatesInput) {
  graph::UndirectedGraph g(3);
  EXPECT_THROW(fusion::kway_cut_via_fusion(g, {0}), Error);
  EXPECT_THROW(fusion::kway_cut_via_fusion(g, {0, 0}), Error);
  EXPECT_THROW(fusion::kway_cut_via_fusion(g, {0, 9}), Error);
}

// -- Byte-weighted fusion ----------------------------------------------------------

TEST(WeightedFusion, PrefersKeepingBigArraysWhole) {
  // Three loops; a huge array shared by loops 0 and 2, a small one by all.
  // Unit-cost fusion is indifferent between {0,1},{2} and {0,2},{1}; the
  // weighted objective must keep the huge array in one partition.
  const fusion::FusionGraph g = fusion::graph_from_spec(
      3, {{0, 2}, {0, 1, 2}}, /*deps=*/{},
      /*preventing=*/{{0, 1}},  // forces at least two partitions
      /*bytes=*/{1000000, 8});
  const auto weighted = fusion::exact_enumeration_weighted(g);
  // The huge array's loops 0 and 2 share a partition.
  EXPECT_EQ(weighted.assignment[0], weighted.assignment[2]);
  EXPECT_NE(weighted.assignment[0], weighted.assignment[1]);
}

TEST(WeightedFusion, CoincidesWithUnitWhenSizesEqual) {
  Prng rng(99);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<std::vector<int>> pins;
    for (int a = 0; a < 5; ++a) {
      std::vector<int> p;
      for (int l = 0; l < 5; ++l)
        if (rng.chance(0.5)) p.push_back(l);
      if (p.empty()) p.push_back(0);
      pins.push_back(p);
    }
    const auto g = fusion::graph_from_spec(5, pins, {}, {},
                                           {64, 64, 64, 64, 64});
    EXPECT_EQ(fusion::exact_enumeration(g).cost * 64,
              fusion::exact_enumeration_weighted(g).bytes_cost);
  }
}

}  // namespace
}  // namespace bwc
