// Exhaustive parameterized sweeps over dependence offsets: the sign rules
// that drive fusion, shifting and distribution, checked against ground
// truth (the interpreter) for every (producer offset, consumer offset)
// combination in a window.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <iostream>
#include <map>
#include <set>
#include <string>
#include <tuple>
#include <unordered_map>

#include "bwc/analysis/dependence.h"
#include "bwc/core/optimizer.h"
#include "bwc/fusion/solvers.h"
#include "bwc/ir/dsl.h"
#include "bwc/machine/machine_model.h"
#include "bwc/runtime/compiled.h"
#include "bwc/runtime/interpreter.h"
#include "bwc/support/prng.h"
#include "bwc/transform/distribute.h"
#include "bwc/transform/fuse.h"
#include "bwc/verify/events.h"
#include "bwc/verify/static_dependence.h"
#include "bwc/verify/verify.h"
#include "bwc/workloads/random_programs.h"

namespace bwc {
namespace {

using namespace ir::dsl;  // NOLINT
using ir::ArrayId;
using ir::Program;

/// Producer writes a[i + w]; consumer reduction reads a[i + r].
Program make_pair(std::int64_t w, std::int64_t r) {
  const std::int64_t n = 48;
  Program p("pair");
  const ArrayId a = p.add_array("a", {n + 16});
  const ArrayId b = p.add_array("b", {n + 16});
  p.add_scalar("s");
  p.mark_output_scalar("s");
  p.append(loop("i", 8, n,
                assign(a, {v("i", w)}, at(b, v("i")) + lvar("i"))));
  p.append(loop("i", 8, n, assign("s", sref("s") + at(a, v("i", r)))));
  return p;
}

using OffsetParam = std::tuple<int, int>;  // (write offset, read offset)

class OffsetSweep : public ::testing::TestWithParam<OffsetParam> {};

TEST_P(OffsetSweep, FusabilityMatchesSignRule) {
  const auto& [w, r] = GetParam();
  const Program p = make_pair(w, r);
  const auto s = analysis::summarize_program(p);
  const auto pa = analysis::analyze_pair(s[0], s[1]);
  // Element e written at iteration e - w, read at e - r: the read trails
  // the write iff (e - r) >= (e - w), i.e. r <= w.
  EXPECT_EQ(pa.fusion_preventing, r > w) << "w=" << w << " r=" << r;
}

TEST_P(OffsetSweep, FusedSemanticsWheneverDeclaredLegal) {
  const auto& [w, r] = GetParam();
  const Program p = make_pair(w, r);
  const auto g = fusion::build_fusion_graph(p);
  const auto plan = fusion::best_fusion(g);
  const Program fused = transform::apply_fusion(p, g, plan);
  const double before = runtime::execute(p).checksum;
  const double after = runtime::execute(fused).checksum;
  ASSERT_NEAR(before, after, 1e-9 * (std::abs(before) + 1.0))
      << "w=" << w << " r=" << r << " partitions=" << plan.num_partitions;
  // And when legal, the pair really fuses (the solver always profits).
  if (r <= w) {
    EXPECT_EQ(plan.num_partitions, 1);
  }
}

TEST_P(OffsetSweep, ShiftEqualsRequiredDelay) {
  const auto& [w, r] = GetParam();
  const Program p = make_pair(w, r);
  const auto s = analysis::summarize_program(p);
  const auto shift = analysis::min_fusion_shift(s[0], s[1]);
  ASSERT_TRUE(shift.has_value());
  EXPECT_EQ(*shift, std::max(0, r - w)) << "w=" << w << " r=" << r;
}

TEST_P(OffsetSweep, ShiftedFusionSemantics) {
  const auto& [w, r] = GetParam();
  const Program p = make_pair(w, r);
  fusion::FusionGraphOptions opts;
  opts.allow_shifted_fusion = true;
  const auto g = fusion::build_fusion_graph(p, opts);
  const auto plan = fusion::best_fusion(g);
  EXPECT_EQ(plan.num_partitions, 1) << "w=" << w << " r=" << r;
  const Program fused = transform::apply_fusion(p, g, plan);
  const double before = runtime::execute(p).checksum;
  const double after = runtime::execute(fused).checksum;
  ASSERT_NEAR(before, after, 1e-9 * (std::abs(before) + 1.0))
      << "w=" << w << " r=" << r;
}

INSTANTIATE_TEST_SUITE_P(Window, OffsetSweep,
                         ::testing::Combine(::testing::Range(-3, 4),
                                            ::testing::Range(-3, 4)));

/// Same sweep for distribution: one loop with write-then-read statements.
class DistributionSweep : public ::testing::TestWithParam<OffsetParam> {};

TEST_P(DistributionSweep, SplitDecisionMatchesSignRule) {
  const auto& [w, r] = GetParam();
  const std::int64_t n = 48;
  Program p("t");
  const ArrayId a = p.add_array("a", {n + 16});
  p.add_scalar("s");
  p.mark_output_scalar("s");
  p.append(loop("i", 8, n,
                assign(a, {v("i", w)}, lvar("i") * lit(0.25)),
                assign("s", sref("s") + at(a, v("i", r)))));
  const auto result = transform::distribute_loops(p);
  // Sequencing the writer first is legal iff the read never outruns the
  // write: r <= w (same rule as fusion, same derivation).
  EXPECT_EQ(result.loops_after, r > w ? 1 : 2) << "w=" << w << " r=" << r;
  const double before = runtime::execute(p).checksum;
  const double after = runtime::execute(result.program).checksum;
  ASSERT_NEAR(before, after, 1e-9 * (std::abs(before) + 1.0));
}

INSTANTIATE_TEST_SUITE_P(Window, DistributionSweep,
                         ::testing::Combine(::testing::Range(-3, 4),
                                            ::testing::Range(-3, 4)));

/// Randomized full-pipeline sweep: every fusion solver crossed with every
/// combination of {shifted fusion, interchange, storage reduction, store
/// elimination}, each run at a (deterministically) randomized core count.
/// Each run is certified by the independent verifier (on inside
/// core::optimize), differentially executed against the interpreter's
/// checksum of the original program, and its *merged parallel* traffic
/// measurement is checked against the static traffic lower bound from
/// bwc::verify -- the bound must hold no matter how many cores replayed
/// the program.
using PipelineParam = std::tuple<int /*solver*/, int /*option bitmask*/>;

class PipelineSweep : public ::testing::TestWithParam<PipelineParam> {};

/// Replay `p` with the parallel compiled engine at `cores` on a
/// scaled-down hierarchy -- once with steady-state fast-forward, once
/// without. Both legs must agree byte-for-byte (fast-forward is an exact
/// macrosimulation, not an approximation) and both must respect the
/// verifier's static traffic lower bound. Returns the checksum.
double run_parallel_with_bound_check(const Program& p, int cores,
                                     const std::string& label) {
  const verify::TrafficBound bound = verify::compute_traffic_bound(p);
  runtime::ExecResult runs[2];
  for (const bool fast_forward : {false, true}) {
    memsim::MemoryHierarchy h =
        machine::origin2000_r10k().scaled(16).make_hierarchy();
    runtime::ExecOptions exec_opts;
    exec_opts.hierarchy = &h;
    exec_opts.cores = cores;
    exec_opts.fast_forward = fast_forward;
    runtime::ExecResult run = runtime::execute_compiled(p, exec_opts);
    EXPECT_LE(static_cast<std::uint64_t>(bound.lower_bound_bytes),
              run.profile.memory_bytes())
        << label << " cores=" << cores << " ff=" << fast_forward << "\n"
        << bound.render();
    runs[fast_forward ? 1 : 0] = std::move(run);
  }
  EXPECT_EQ(runs[0].checksum, runs[1].checksum) << label;
  EXPECT_EQ(runs[0].flops, runs[1].flops) << label;
  EXPECT_EQ(runs[0].loads, runs[1].loads) << label;
  EXPECT_EQ(runs[0].stores, runs[1].stores) << label;
  EXPECT_EQ(runs[0].profile.memory_bytes(), runs[1].profile.memory_bytes())
      << label;
  return runs[1].checksum;
}

TEST_P(PipelineSweep, RandomProgramsVerifiedAndChecksumPreserved) {
  const auto& [solver_index, mask] = GetParam();
  const core::FusionSolver solvers[] = {
      core::FusionSolver::kBest, core::FusionSolver::kExact,
      core::FusionSolver::kGreedy, core::FusionSolver::kBisection,
      core::FusionSolver::kEdgeWeighted};
  // Core count varies with the parameter point but is deterministic, so
  // every pipeline combination eventually meets every core count.
  const int core_choices[] = {1, 2, 4, 8};
  core::OptimizerOptions opts;
  opts.solver = solvers[solver_index];
  opts.allow_shifted_fusion = (mask & 1) != 0;
  opts.auto_interchange = (mask & 2) != 0;
  opts.reduce_storage = (mask & 4) != 0;
  opts.eliminate_stores = (mask & 8) != 0;
  opts.verify = true;
  for (std::uint64_t seed = 1; seed <= 2; ++seed) {
    const int cores =
        core_choices[(static_cast<std::uint64_t>(solver_index) + mask +
                      seed) %
                     4];
    opts.cores = cores;
    Prng rng(seed);
    const Program p = workloads::random_program(rng);
    // optimize() throws if any pass fails translation / observability /
    // structural validation.
    const core::OptimizeResult result = core::optimize(p, opts);
    const double before = runtime::execute(p).checksum;
    const double after = runtime::execute(result.program).checksum;
    ASSERT_NEAR(before, after, 1e-9 * (std::abs(before) + 1.0))
        << "seed=" << seed << " solver=" << solver_index << " mask=" << mask
        << "\n" << core::render_log(result);
    const double par =
        run_parallel_with_bound_check(result.program, cores, "1d");
    ASSERT_NEAR(before, par, 1e-9 * (std::abs(before) + 1.0))
        << "parallel seed=" << seed << " cores=" << cores;

    Prng rng2(seed);
    const Program p2 = workloads::random_program_2d(rng2, 10, 3);
    const core::OptimizeResult result2 = core::optimize(p2, opts);
    const double before2 = runtime::execute(p2).checksum;
    const double after2 = runtime::execute(result2.program).checksum;
    ASSERT_NEAR(before2, after2, 1e-9 * (std::abs(before2) + 1.0))
        << "2d seed=" << seed << " solver=" << solver_index
        << " mask=" << mask << "\n" << core::render_log(result2);
    const double par2 =
        run_parallel_with_bound_check(result2.program, cores, "2d");
    ASSERT_NEAR(before2, par2, 1e-9 * (std::abs(before2) + 1.0))
        << "2d parallel seed=" << seed << " cores=" << cores;
  }
}

INSTANTIATE_TEST_SUITE_P(SolversTimesOptions, PipelineSweep,
                         ::testing::Combine(::testing::Range(0, 5),
                                            ::testing::Range(0, 16)));

// -- Static dependence oracle -------------------------------------------------
//
// Differential check of the symbolic dependence tests (verify::
// summarize_dependences) against the event tracer's ground truth: for each
// randomized program, derive the statement-pair dependences actually
// observed in a concrete trace and require that the static summary never
// claims independence for an observed dependence. The converse is fine --
// a static kDependent whose witness lives at a different iteration of the
// same bounds simply was not exercised by this trace. The undecided
// fraction is logged so precision regressions are visible in test output.

/// How one top-level statement touched one memory location in the trace.
struct TopTouch {
  int instances = 0;  // distinct dynamic instances touching the location
  int writes = 0;     // how many of those instances write it
  std::int64_t last_instance = -1;
};

void check_static_vs_trace(const Program& p, const std::string& label,
                           std::int64_t* pairs, std::int64_t* unknown) {
  const verify::DependenceSummary summary = verify::summarize_dependences(p);
  *pairs += static_cast<std::int64_t>(summary.pairs.size());
  for (const auto& d : summary.pairs)
    if (d.verdict == verify::Verdict::kUnknown) ++*unknown;

  verify::LocationSpace space;
  verify::Report report;
  const verify::EventTrace trace =
      verify::trace_program(p, space, 50'000'000, &report);
  ASSERT_FALSE(trace.truncated) << label;

  std::unordered_map<verify::Location, std::map<int, TopTouch>> touched;
  for (std::size_t idx = 0; idx < trace.instances.size(); ++idx) {
    const verify::Instance& inst = trace.instances[idx];
    const auto touch = [&](verify::Location loc, bool write) {
      TopTouch& t = touched[loc][inst.top_index];
      if (t.last_instance != static_cast<std::int64_t>(idx)) {
        ++t.instances;
        t.last_instance = static_cast<std::int64_t>(idx);
      }
      if (write) ++t.writes;
    };
    touch(inst.write, true);
    for (const verify::Location loc : inst.reads) touch(loc, false);
  }

  // Observed dependences, keyed like StmtDependence: (stmt_a <= stmt_b,
  // array, scalar). A self pair needs two distinct instances (the rhs
  // loads of one instance precede its own store, matching the static
  // model's same-iteration exclusion); a cross pair conflicts whenever
  // both statements touch the location and at least one writes.
  std::set<std::tuple<int, int, std::string, std::string>> observed;
  for (const auto& [loc, per_top] : touched) {
    std::string array, scalar;
    if (space.is_scalar(loc))
      scalar = space.scalar_name(space.slot_of(loc));
    else
      array = space.array_name(space.slot_of(loc));
    for (auto ia = per_top.begin(); ia != per_top.end(); ++ia) {
      if (ia->second.instances >= 2 && ia->second.writes >= 1)
        observed.emplace(ia->first, ia->first, array, scalar);
      for (auto ib = std::next(ia); ib != per_top.end(); ++ib) {
        if (ia->second.writes + ib->second.writes >= 1)
          observed.emplace(ia->first, ib->first, array, scalar);
      }
    }
  }

  for (const auto& [ta, tb, array, scalar] : observed) {
    const verify::StmtDependence* match = nullptr;
    for (const auto& d : summary.pairs) {
      if (d.stmt_a == ta && d.stmt_b == tb && d.array == array &&
          d.scalar == scalar) {
        match = &d;
        break;
      }
    }
    const std::string where = array.empty() ? scalar : array;
    ASSERT_NE(match, nullptr)
        << label << ": dependence between statements " << ta << " and " << tb
        << " on " << where << " was observed but the static summary has no "
        << "entry for the pair";
    ASSERT_NE(match->verdict, verify::Verdict::kIndependent)
        << label << ": statically proven independent (decided by "
        << match->decided_by << "), but a dependence between statements "
        << ta << " and " << tb << " on " << where
        << " was observed in the trace";
  }
}

TEST(StaticDependenceOracle, NeverContradictsTraceOn500RandomPrograms) {
  std::int64_t pairs = 0;
  std::int64_t unknown = 0;
  int programs = 0;
  for (std::uint64_t seed = 1; seed <= 260; ++seed) {
    {
      Prng rng(seed);
      const Program p = workloads::random_program(rng);
      check_static_vs_trace(p, "1d seed=" + std::to_string(seed), &pairs,
                            &unknown);
      ++programs;
    }
    if (::testing::Test::HasFatalFailure()) return;
    {
      Prng rng(seed);
      const Program p = workloads::random_program_2d(rng, 12, 3);
      check_static_vs_trace(p, "2d seed=" + std::to_string(seed), &pairs,
                            &unknown);
      ++programs;
    }
    if (::testing::Test::HasFatalFailure()) return;
  }
  ASSERT_GE(programs, 500);
  ASSERT_GT(pairs, 0);
  const double rate = 100.0 * static_cast<double>(unknown) /
                      static_cast<double>(pairs);
  RecordProperty("dependence_pairs", static_cast<int>(pairs));
  RecordProperty("dependence_unknown", static_cast<int>(unknown));
  std::cout << "static dependence oracle: " << programs << " programs, "
            << pairs << " statement-pair tests, " << unknown
            << " undecided (" << rate << "%)\n";
}

}  // namespace
}  // namespace bwc
