// Loop distribution tests: legality, semantics, and the
// distribute-then-refuse normalization property.
#include <gtest/gtest.h>

#include <cmath>

#include "bwc/core/optimizer.h"
#include "bwc/fusion/solvers.h"
#include "bwc/ir/dsl.h"
#include "bwc/ir/printer.h"
#include "bwc/model/measure.h"
#include "bwc/runtime/interpreter.h"
#include "bwc/support/prng.h"
#include "bwc/transform/distribute.h"
#include "bwc/transform/fuse.h"
#include "bwc/workloads/extra_programs.h"
#include "bwc/workloads/paper_programs.h"
#include "bwc/workloads/random_programs.h"

namespace bwc::transform {
namespace {

using namespace ir::dsl;  // NOLINT
using ir::ArrayId;
using ir::Program;

void expect_preserved(const Program& a, const Program& b) {
  const double ca = runtime::execute(a).checksum;
  const double cb = runtime::execute(b).checksum;
  EXPECT_NEAR(ca, cb, 1e-9 * (std::abs(ca) + 1.0))
      << "distributed:\n" << ir::to_string(b);
}

TEST(Distribute, SplitsIndependentStatements) {
  Program p("t");
  const ArrayId a = p.add_array("a", {32});
  const ArrayId b = p.add_array("b", {32});
  p.mark_output_array(a);
  p.mark_output_array(b);
  p.append(loop("i", 1, 32,
                assign(a, {v("i")}, lvar("i") * lit(1.5)),
                assign(b, {v("i")}, lvar("i") + lit(3.0))));
  const DistributionResult r = distribute_loops(p);
  EXPECT_EQ(r.loops_before, 1);
  EXPECT_EQ(r.loops_after, 2);
  expect_preserved(p, r.program);
}

TEST(Distribute, ForwardFlowSplits) {
  // a[i] produced then consumed at the same iteration: sequencing the
  // producer loop fully first is legal.
  Program p("t");
  const ArrayId a = p.add_array("a", {32});
  p.add_scalar("s");
  p.mark_output_scalar("s");
  p.append(loop("i", 1, 32,
                assign(a, {v("i")}, lvar("i")),
                assign("s", sref("s") + at(a, v("i")))));
  const DistributionResult r = distribute_loops(p);
  EXPECT_EQ(r.loops_after, 2);
  expect_preserved(p, r.program);
}

TEST(Distribute, BackwardCarriedDependenceBlocksSplit) {
  // Statement 1 writes a[i]; statement 2 reads a[i+1]. Interleaved, the
  // read sees the *original* a[i+1] (not yet written); sequenced, it would
  // see the updated value. Must stay together.
  Program p("t");
  const ArrayId a = p.add_array("a", {40});
  p.add_scalar("s");
  p.mark_output_scalar("s");
  p.append(loop("i", 2, 38,
                assign(a, {v("i")}, lvar("i") * lit(0.1)),
                assign("s", sref("s") + at(a, v("i", 1)))));
  const DistributionResult r = distribute_loops(p);
  EXPECT_EQ(r.loops_after, 1);
  expect_preserved(p, r.program);
}

TEST(Distribute, AntiDependenceWithForwardOffsetSplits) {
  // Reading a[i+1] then writing a[i]: every read still precedes the write
  // of its element in both orders -- splitting is legal.
  Program p("t");
  const ArrayId a = p.add_array("a", {40});
  p.add_scalar("s");
  p.mark_output_scalar("s");
  p.append(loop("i", 2, 38,
                assign("s", sref("s") + at(a, v("i", 1))),
                assign(a, {v("i")}, lvar("i") * lit(0.1))));
  const DistributionResult r = distribute_loops(p);
  EXPECT_EQ(r.loops_after, 2);
  expect_preserved(p, r.program);
}

TEST(Distribute, ScalarTemporaryBlocksSplit) {
  // t carries a value from statement 1 to statement 2 each iteration.
  Program p("t");
  const ArrayId a = p.add_array("a", {32});
  p.add_scalar("t");
  p.add_scalar("s");
  p.mark_output_scalar("s");
  p.append(loop("i", 1, 32,
                assign("t", at(a, v("i")) * lit(2.0)),
                assign("s", sref("s") + sref("t"))));
  const DistributionResult r = distribute_loops(p);
  EXPECT_EQ(r.loops_after, 1);
  expect_preserved(p, r.program);
}

TEST(Distribute, MixedBoundaries) {
  // s1 -> s2 glued (scalar temp), s3 independent: split once.
  Program p("t");
  const ArrayId a = p.add_array("a", {32});
  const ArrayId b = p.add_array("b", {32});
  p.add_scalar("t");
  p.add_scalar("s");
  p.mark_output_scalar("s");
  p.mark_output_array(b);
  p.append(loop("i", 1, 32,
                assign("t", at(a, v("i")) + lit(1.0)),
                assign("s", sref("s") + sref("t")),
                assign(b, {v("i")}, lvar("i"))));
  const DistributionResult r = distribute_loops(p);
  EXPECT_EQ(r.loops_after, 2);
  expect_preserved(p, r.program);
}

TEST(Distribute, TwoDeepNestsReplicateShells) {
  Program p("t");
  const ArrayId a = p.add_array("a", {8, 8});
  const ArrayId b = p.add_array("b", {8, 8});
  p.mark_output_array(a);
  p.mark_output_array(b);
  p.append(loop("j", 1, 8,
                loop("i", 1, 8,
                     assign(a, {v("i"), v("j")}, lvar("i") + lvar("j")),
                     assign(b, {v("i"), v("j")}, lvar("i") * lvar("j")))));
  const DistributionResult r = distribute_loops(p);
  EXPECT_EQ(r.loops_after, 2);
  const auto loops = r.program.top_loop_indices();
  for (int idx : loops) {
    EXPECT_EQ(r.program.top()[static_cast<std::size_t>(idx)]->loop->var, "j");
  }
  expect_preserved(p, r.program);
}

TEST(Distribute, UndoesFusion) {
  // Fuse blur_sharpen, then distribute: the statement-per-loop structure
  // returns (the fused loop splits back apart), and traffic rises.
  const Program p = workloads::blur_sharpen(100000);
  core::OptimizerOptions fusion_only;
  fusion_only.reduce_storage = false;
  fusion_only.eliminate_stores = false;
  const Program fused = core::optimize(p, fusion_only).program;
  EXPECT_EQ(fused.top_loop_indices().size(), 1u);
  const DistributionResult r = distribute_loops(fused);
  EXPECT_GE(r.loops_after, 4);
  expect_preserved(p, r.program);

  const auto machine = machine::origin2000_r10k().scaled(16);
  EXPECT_GT(model::measure(r.program, machine).profile.memory_bytes(),
            model::measure(fused, machine).profile.memory_bytes());
}

TEST(Distribute, NormalizationRoundTrip) {
  // distribute -> refuse lands at the same (or better) fusion cost as
  // fusing the original directly: distribution exposes every legal split
  // so the solver starts from a clean slate.
  const Program p = workloads::blur_sharpen(512);
  const auto direct = fusion::best_fusion(fusion::build_fusion_graph(p));
  const DistributionResult d = distribute_loops(p);
  const auto renorm =
      fusion::best_fusion(fusion::build_fusion_graph(d.program));
  EXPECT_LE(renorm.cost, direct.cost);
  expect_preserved(p, apply_fusion(d.program,
                                   fusion::build_fusion_graph(d.program),
                                   renorm));
}

TEST(Distribute, RandomProgramsPreserveSemantics) {
  Prng rng(1357911);
  for (int trial = 0; trial < 15; ++trial) {
    const Program p = workloads::random_program(rng);
    // First fuse (creating multi-statement loops), then distribute.
    const Program fused = core::optimize(p).program;
    const DistributionResult r = distribute_loops(fused);
    expect_preserved(p, r.program);
  }
}

TEST(Distribute, GuardedFusedProgramsSurvive) {
  const Program p = workloads::fig6_original(16);
  core::OptimizerOptions fusion_only;
  fusion_only.reduce_storage = false;
  fusion_only.eliminate_stores = false;
  const Program fused = core::optimize(p, fusion_only).program;
  const DistributionResult r = distribute_loops(fused);
  expect_preserved(p, r.program);
}

}  // namespace
}  // namespace bwc::transform
