#include <gtest/gtest.h>

#include "bwc/ir/affine.h"
#include "bwc/ir/dsl.h"
#include "bwc/ir/printer.h"
#include "bwc/ir/program.h"
#include "bwc/support/error.h"

namespace bwc::ir {
namespace {

using namespace dsl;  // NOLINT

// -- Affine -----------------------------------------------------------------

TEST(Affine, ConstructionAndAccessors) {
  const Affine c = Affine::constant(5);
  EXPECT_TRUE(c.is_constant());
  EXPECT_EQ(c.constant_term(), 5);

  const Affine a = Affine::var("i", 2, 3);
  EXPECT_FALSE(a.is_constant());
  EXPECT_EQ(a.coeff("i"), 2);
  EXPECT_EQ(a.coeff("j"), 0);
  EXPECT_EQ(a.constant_term(), 3);
  EXPECT_EQ(*a.single_var(), "i");
}

TEST(Affine, Arithmetic) {
  const Affine i = Affine::var("i");
  const Affine j = Affine::var("j");
  const Affine e = i * 2 + j - 3;
  EXPECT_EQ(e.coeff("i"), 2);
  EXPECT_EQ(e.coeff("j"), 1);
  EXPECT_EQ(e.constant_term(), -3);
  // Coefficients cancel cleanly.
  const Affine zero = i - i;
  EXPECT_TRUE(zero.is_constant());
  EXPECT_EQ(zero.constant_term(), 0);
}

TEST(Affine, SubstituteAndRename) {
  const Affine e = Affine::var("i", 2, 1);
  const Affine sub = e.substituted("i", Affine::var("k") + 3);
  EXPECT_EQ(sub.coeff("k"), 2);
  EXPECT_EQ(sub.constant_term(), 7);
  const Affine ren = e.renamed("i", "z");
  EXPECT_EQ(ren.coeff("z"), 2);
  EXPECT_FALSE(ren.uses("i"));
}

TEST(Affine, SingleVarDetection) {
  EXPECT_FALSE(Affine::constant(1).single_var().has_value());
  EXPECT_FALSE(
      (Affine::var("i") + Affine::var("j")).single_var().has_value());
}

TEST(Affine, StringForm) {
  EXPECT_EQ(Affine::constant(7).str(), "7");
  EXPECT_EQ(Affine::var("i").str(), "i");
  EXPECT_EQ(Affine::var("i", 1, -1).str(), "i - 1");
  EXPECT_EQ((Affine::var("i", 2) + 3).str(), "2*i + 3");
}

// -- Expr / Stmt ----------------------------------------------------------------

TEST(Expr, CloneIsDeepAndEqual) {
  const ExprPtr e = at(0, v("i")) + lit(2.0) * sref("x");
  const ExprPtr c = e->clone();
  EXPECT_TRUE(equal(*e, *c));
  EXPECT_NE(e.get(), c.get());
  EXPECT_NE(e->operands[0].get(), c->operands[0].get());
}

TEST(Expr, EqualityDiscriminates) {
  EXPECT_FALSE(equal(*lit(1.0), *lit(2.0)));
  EXPECT_FALSE(equal(*sref("a"), *sref("b")));
  EXPECT_FALSE(equal(*at(0, v("i")), *at(0, v("i", 1))));
  EXPECT_FALSE(equal(*at(0, v("i")), *at(1, v("i"))));
  EXPECT_FALSE(equal(*(lit(1.0) + lit(2.0)), *(lit(1.0) * lit(2.0))));
}

TEST(Expr, InputValuesDeterministic) {
  EXPECT_DOUBLE_EQ(input_value(3, 17), input_value(3, 17));
  EXPECT_NE(input_value(3, 17), input_value(3, 18));
  EXPECT_NE(input_value(3, 17), input_value(4, 17));
  EXPECT_GE(input_value(1, 1), 0.5);
  EXPECT_LT(input_value(1, 1), 1.5);
}

TEST(Expr, ConstructorsValidate) {
  EXPECT_THROW(make_scalar(""), Error);
  EXPECT_THROW(make_array_ref(-1, {v("i")}), Error);
  EXPECT_THROW(make_array_ref(0, {}), Error);
  EXPECT_THROW(make_input(0, {v("i")}, {}), Error);
}

TEST(Stmt, CloneAndEquality) {
  const StmtPtr s = loop("i", 1, 10,
                         assign(0, {v("i")}, at(0, v("i")) + lit(1.0)),
                         when(CmpOp::kEq, v("i"), k(10),
                              assign("sum", sref("sum") + lit(1.0))));
  const StmtPtr c = s->clone();
  EXPECT_TRUE(equal(*s, *c));
  // Mutate the clone: no longer equal.
  c->loop->upper = 11;
  EXPECT_FALSE(equal(*s, *c));
}

TEST(Stmt, CmpEvaluation) {
  EXPECT_TRUE(evaluate_cmp(CmpOp::kLe, 3, 3));
  EXPECT_FALSE(evaluate_cmp(CmpOp::kLt, 3, 3));
  EXPECT_TRUE(evaluate_cmp(CmpOp::kNe, 2, 3));
  EXPECT_TRUE(evaluate_cmp(CmpOp::kGe, 4, 3));
}

TEST(Loop, TripCount) {
  const StmtPtr s = loop("i", 2, 10, assign("x", lit(1.0)));
  EXPECT_EQ(s->loop->trip_count(), 9);
  const StmtPtr empty = loop("i", 5, 4, assign("x", lit(1.0)));
  EXPECT_EQ(empty->loop->trip_count(), 0);
}

// -- Program ----------------------------------------------------------------------

TEST(Program, Declarations) {
  Program p("t");
  const ArrayId a = p.add_array("a", {10, 20});
  p.add_scalar("s");
  EXPECT_EQ(p.array(a).element_count(), 200);
  EXPECT_EQ(p.array(a).byte_size(), 1600u);
  EXPECT_EQ(p.array_id("a"), a);
  EXPECT_TRUE(p.has_scalar("s"));
  EXPECT_THROW(p.add_array("a", {5}), Error);  // duplicate
  EXPECT_THROW(p.add_scalar("s"), Error);
  EXPECT_THROW(p.array_id("zzz"), Error);
  EXPECT_THROW(p.add_array("bad", {10, 20, 30}), Error);  // 3-D unsupported
}

TEST(Program, ColumnMajorLinearization) {
  Program p("t");
  const ArrayId a = p.add_array("a", {4, 3});
  // a[i,j] -> (i-1) + (j-1)*4, 1-based.
  EXPECT_EQ(p.array(a).linearize({1, 1}), 0);
  EXPECT_EQ(p.array(a).linearize({2, 1}), 1);
  EXPECT_EQ(p.array(a).linearize({1, 2}), 4);
  EXPECT_EQ(p.array(a).linearize({4, 3}), 11);
  EXPECT_THROW(p.array(a).linearize({5, 1}), Error);
  EXPECT_THROW(p.array(a).linearize({0, 1}), Error);
}

TEST(Program, TopLoopIndices) {
  Program p("t");
  p.add_scalar("s");
  const ArrayId a = p.add_array("a", {8});
  p.append(assign("s", lit(0.0)));
  p.append(loop("i", 1, 8, assign(a, {v("i")}, lit(1.0))));
  p.append(assign("s", lit(1.0)));
  p.append(loop("i", 1, 8, assign("s", sref("s") + at(a, v("i")))));
  EXPECT_EQ(p.top_loop_indices(), (std::vector<int>{1, 3}));
}

TEST(Program, CloneIsEqualAndIndependent) {
  Program p("t");
  const ArrayId a = p.add_array("a", {8});
  p.add_scalar("s");
  p.mark_output_scalar("s");
  p.mark_output_array(a);
  p.append(loop("i", 1, 8, assign(a, {v("i")}, lit(1.0))));
  Program c = p.clone();
  EXPECT_TRUE(equal(p, c));
  c.top().front()->loop->upper = 9;
  EXPECT_FALSE(equal(p, c));
}

TEST(Program, OutputsValidatedAndDeduplicated) {
  Program p("t");
  p.add_scalar("s");
  p.mark_output_scalar("s");
  p.mark_output_scalar("s");
  EXPECT_EQ(p.output_scalars().size(), 1u);
  EXPECT_THROW(p.mark_output_scalar("nope"), Error);
  EXPECT_THROW(p.mark_output_array(3), Error);
}

TEST(Printer, RendersPaperStyle) {
  Program p("demo");
  const ArrayId a = p.add_array("a", {4, 4});
  p.add_scalar("sum");
  p.append(loop("j", 2, 4,
                loop("i", 1, 4,
                     assign(a, {v("i"), v("j")},
                            f(at(a, v("i"), v("j", -1)), lit(1.0))))));
  const std::string s = to_string(p);
  EXPECT_NE(s.find("for j = 2, 4"), std::string::npos);
  EXPECT_NE(s.find("a[i,j] = f(a[i,j - 1], 1)"), std::string::npos);
  EXPECT_NE(s.find("double a[4,4]"), std::string::npos);
}

TEST(Printer, RendersGuards) {
  Program p("demo");
  p.add_scalar("x");
  p.append(loop("i", 1, 4,
                if_else(CmpOp::kLe, v("i"), k(2),
                        block(assign("x", lit(1.0))),
                        block(assign("x", lit(2.0))))));
  const std::string s = to_string(p);
  EXPECT_NE(s.find("if (i <= 2)"), std::string::npos);
  EXPECT_NE(s.find("else"), std::string::npos);
}

}  // namespace
}  // namespace bwc::ir
