// Coverage tests: utility paths, degenerate configurations, and the 2-D
// guarded-program fuzz locked in as a regression suite.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>

#include "bwc/core/optimizer.h"
#include "bwc/fusion/dot_export.h"
#include "bwc/fusion/solvers.h"
#include "bwc/ir/dsl.h"
#include "bwc/ir/printer.h"
#include "bwc/machine/latency_model.h"
#include "bwc/memsim/hierarchy.h"
#include "bwc/runtime/interpreter.h"
#include "bwc/support/csv.h"
#include "bwc/support/error.h"
#include "bwc/support/prng.h"
#include "bwc/transform/rewrite.h"
#include "bwc/workloads/paper_programs.h"
#include "bwc/workloads/random_programs.h"

namespace bwc {
namespace {

using namespace ir::dsl;  // NOLINT

// -- substitute_loop_var ---------------------------------------------------------

TEST(SubstituteLoopVar, RewritesSubscriptsGuardsAndValues) {
  ir::Program p("t");
  const ir::ArrayId a = p.add_array("a", {64});
  p.add_scalar("s");
  p.mark_output_scalar("s");
  p.append(loop("i", 3, 10,
                when(ir::CmpOp::kGe, v("i"), k(3),
                     assign(a, {v("i")}, lvar("i") * lit(2.0))),
                assign("s", sref("s") + at(a, v("i")))));

  // Substitute i -> i - 2 inside the loop body; then widen the loop to
  // compensate: semantics of the stored values shifts accordingly.
  ir::Stmt& nest = *p.top()[0];
  transform::substitute_loop_var(nest.loop->body, "i",
                                 ir::Affine::var("i") - 2);
  nest.loop->lower += 2;
  nest.loop->upper += 2;
  const auto result = runtime::execute(p);
  // s = sum over original i of a[i] = 2i.
  double expect = 0;
  for (int i = 3; i <= 10; ++i) expect += 2.0 * i;
  EXPECT_DOUBLE_EQ(result.checksum, expect);
}

TEST(SubstituteLoopVar, RespectsShadowing) {
  ir::Program p("t");
  p.add_scalar("s");
  p.mark_output_scalar("s");
  // Outer i; inner loop redeclares i -- the inner uses must not change.
  p.append(loop("i", 1, 2,
                loop("i", 1, 3, assign("s", sref("s") + lvar("i")))));
  ir::Stmt& outer = *p.top()[0];
  transform::substitute_loop_var(outer.loop->body, "i",
                                 ir::Affine::var("i") + 100);
  // Inner loop shadows: sum unchanged = 2 * (1+2+3).
  EXPECT_DOUBLE_EQ(runtime::execute(p).checksum, 12.0);
}

TEST(SubstituteLoopVar, ValueUseBecomesArithmetic) {
  ir::Program p("t");
  p.add_scalar("s");
  p.mark_output_scalar("s");
  p.append(loop("i", 1, 4, assign("s", sref("s") + lvar("i"))));
  transform::substitute_loop_var(p.top()[0]->loop->body, "i",
                                 ir::Affine::var("i") * 2 + 1);
  // sum of (2i+1) for i=1..4 = 2*10 + 4 = 24.
  EXPECT_DOUBLE_EQ(runtime::execute(p).checksum, 24.0);
}

// -- Page-randomized cache indexing -----------------------------------------------

memsim::CacheConfig randomized_config() {
  memsim::CacheConfig c;
  c.name = "L1";
  c.size_bytes = 64 * 1024;
  c.line_bytes = 32;
  c.associativity = 1;
  c.page_randomization_seed = 0x1234;
  return c;
}

TEST(PageRandomization, SequentialWithinPageStillHits) {
  memsim::CacheLevel cache(randomized_config());
  // A full page of sequential doubles: one miss per 32B line.
  for (std::uint64_t a = 0; a < 4096; a += 8) cache.access(a & ~31ull, false);
  EXPECT_EQ(cache.stats().read_misses, 4096u / 32);
  EXPECT_EQ(cache.stats().read_hits, 3 * (4096u / 32));
}

TEST(PageRandomization, DeterministicInSeed) {
  memsim::CacheLevel c1(randomized_config());
  memsim::CacheLevel c2(randomized_config());
  for (std::uint64_t a = 0; a < 1 << 18; a += 4096) {
    c1.access(a, false);
    c2.access(a, false);
  }
  EXPECT_EQ(c1.stats().read_misses, c2.stats().read_misses);
  EXPECT_EQ(c1.valid_line_count(), c2.valid_line_count());
}

TEST(PageRandomization, DistinctLinesNeverAliasWithinPage) {
  memsim::CacheLevel cache(randomized_config());
  // All 128 lines of one page must coexist (no intra-page eviction).
  for (std::uint64_t a = 0; a < 4096; a += 32) cache.access(a, false);
  for (std::uint64_t a = 0; a < 4096; a += 32)
    EXPECT_TRUE(cache.contains(a)) << a;
}

TEST(PageRandomization, AlignedStreamsCanConflict) {
  // Two page-aligned streams in a direct-mapped cache collide whenever
  // their pages hash to the same frame; a non-randomized cache with the
  // same spacing (multiple of the cache size) collides on *every* page.
  memsim::CacheConfig plain = randomized_config();
  plain.page_randomization_seed = 0;
  memsim::CacheLevel aliased(plain);
  const std::uint64_t stride = plain.size_bytes;  // worst case alignment
  std::uint64_t misses_interleaved = 0;
  for (std::uint64_t a = 0; a < 1 << 16; a += 8) {
    if (!aliased.access(a & ~31ull, false).hit) ++misses_interleaved;
    if (!aliased.access((a + stride) & ~31ull, false).hit)
      ++misses_interleaved;
  }
  // Every access ping-pongs: all line touches miss.
  EXPECT_EQ(misses_interleaved, 2 * (1u << 16) / 8);
}

// -- Misc utility coverage ---------------------------------------------------------

TEST(Csv, WriteFileRoundTrip) {
  CsvWriter w({"a", "b"});
  w.add_row({"1", "x,y"});
  const std::string path = "/tmp/bwc_csv_test.csv";
  w.write_file(path);
  std::ifstream in(path);
  std::string l1, l2;
  std::getline(in, l1);
  std::getline(in, l2);
  EXPECT_EQ(l1, "a,b");
  EXPECT_EQ(l2, "1,\"x,y\"");
  std::remove(path.c_str());
  EXPECT_THROW(w.write_file("/nonexistent-dir/f.csv"), Error);
}

TEST(Interpreter, MinMaxAndDivision) {
  ir::Program p("t");
  p.add_scalar("x");
  p.mark_output_scalar("x");
  p.append(assign("x",
                  ir::make_binary(ir::BinOp::kMin, lit(3.0),
                                  ir::make_binary(ir::BinOp::kMax, lit(5.0),
                                                  lit(4.0))) /
                      lit(2.0)));
  EXPECT_DOUBLE_EQ(runtime::execute(p).checksum, 1.5);
}

TEST(Interpreter, UnknownIntrinsicThrows) {
  ir::Program p("t");
  p.add_scalar("x");
  std::vector<ir::ExprPtr> args;
  args.push_back(lit(1.0));
  p.append(assign("x", ir::make_call("mystery", 1, std::move(args))));
  EXPECT_THROW(runtime::execute(p), Error);
}

TEST(LatencyModel, SingleLevelMachine) {
  const auto m = machine::exemplar_pa8000();
  const auto lm = machine::default_latency(m);
  ASSERT_EQ(lm.miss_latency_s.size(), 1u);
  EXPECT_GT(lm.miss_latency_s[0], 0.0);
}

TEST(Printer, InputAndIntrinsicForms) {
  ir::Program p("t");
  const ir::ArrayId a = p.add_array("a", {4, 4});
  p.append(loop("j", 1, 4,
                loop("i", 1, 4,
                     assign(a, {v("i"), v("j")},
                            input2(3, v("i"), v("j"), 4, 4)))));
  const std::string s = ir::to_string(p);
  EXPECT_NE(s.find("input3<4,4>[i,j]"), std::string::npos);
}

// -- DOT export ---------------------------------------------------------------------

TEST(DotExport, GraphContainsAllElements) {
  const auto g = workloads::fig4_graph();
  const std::string dot = fusion::to_dot(g);
  EXPECT_NE(dot.find("graph fusion {"), std::string::npos);
  // 6 loops, 6 arrays, 1 preventing edge, 1 dependence.
  for (int v = 0; v < 6; ++v)
    EXPECT_NE(dot.find("loop" + std::to_string(v) + " ["), std::string::npos);
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);
  EXPECT_NE(dot.find("dir=forward"), std::string::npos);
}

TEST(DotExport, PlanClustersPartitions) {
  const auto g = workloads::fig4_graph();
  const auto plan = fusion::exact_enumeration(g);
  const std::vector<std::string> labels = {"loop1", "loop2", "loop3",
                                           "loop4", "loop5", "loop6"};
  const std::string dot = fusion::to_dot(g, plan, labels);
  EXPECT_NE(dot.find("subgraph cluster_0"), std::string::npos);
  EXPECT_NE(dot.find("subgraph cluster_1"), std::string::npos);
  EXPECT_NE(dot.find("loop5"), std::string::npos);
  EXPECT_THROW(fusion::to_dot(g, plan, {"too", "few"}), Error);
}

// -- 2-D guarded-program fuzz, locked in -------------------------------------------

class TwoDFuzz : public ::testing::TestWithParam<int> {};

TEST_P(TwoDFuzz, OptimizerPreservesSemantics) {
  Prng rng(static_cast<std::uint64_t>(GetParam()) * 2654435761u + 17);
  for (int trial = 0; trial < 8; ++trial) {
    const ir::Program p = workloads::random_program_2d(
        rng, 8 + static_cast<std::int64_t>(rng.uniform(10)),
        1 + static_cast<int>(rng.uniform(3)));
    const double base = runtime::execute(p).checksum;
    for (auto solver :
         {core::FusionSolver::kBest, core::FusionSolver::kGreedy}) {
      core::OptimizerOptions opts;
      opts.solver = solver;
      const auto r = core::optimize(p, opts);
      const double after = runtime::execute(r.program).checksum;
      ASSERT_NEAR(base, after, 1e-9 * (std::abs(base) + 1.0))
          << "seed " << GetParam() << " trial " << trial << "\n"
          << ir::to_string(p);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TwoDFuzz, ::testing::Range(0, 10));

}  // namespace
}  // namespace bwc
