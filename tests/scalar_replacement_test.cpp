// Scalar replacement tests: stencil rotation, safety exclusions, and the
// register-traffic payoff.
#include <gtest/gtest.h>

#include <cmath>

#include "bwc/ir/dsl.h"
#include "bwc/ir/printer.h"
#include "bwc/model/measure.h"
#include "bwc/runtime/interpreter.h"
#include "bwc/support/prng.h"
#include "bwc/transform/scalar_replacement.h"
#include "bwc/workloads/extra_programs.h"
#include "bwc/workloads/random_programs.h"

namespace bwc::transform {
namespace {

using namespace ir::dsl;  // NOLINT
using ir::ArrayId;
using ir::Program;

void expect_preserved(const Program& a, const Program& b) {
  const double ca = runtime::execute(a).checksum;
  const double cb = runtime::execute(b).checksum;
  EXPECT_NEAR(ca, cb, 1e-9 * (std::abs(ca) + 1.0))
      << "transformed:\n" << ir::to_string(b);
}

Program stencil(std::int64_t n) {
  Program p("stencil");
  const ArrayId a = p.add_array("a", {n + 2});
  const ArrayId out = p.add_array("out", {n + 2});
  p.mark_output_array(out);
  p.append(loop("i", 2, n,
                assign(out, {v("i")},
                       at(a, v("i", -1)) + at(a, v("i")) + at(a, v("i", 1)))));
  return p;
}

TEST(ScalarReplacement, RotatesThreePointStencil) {
  const Program p = stencil(64);
  const ScalarReplacementResult r = replace_scalars(p);
  ASSERT_EQ(r.actions.size(), 1u);
  EXPECT_EQ(r.loads_removed, 2);
  expect_preserved(p, r.program);
}

TEST(ScalarReplacement, LoadCountDropsToOnePerIteration) {
  const std::int64_t n = 1000;
  const Program p = stencil(n);
  const ScalarReplacementResult r = replace_scalars(p);
  const auto before = runtime::execute(p);
  const auto after = runtime::execute(r.program);
  // 3 loads/iter -> 1 load/iter (+2 prologue loads).
  EXPECT_EQ(before.loads, 3u * (n - 1));
  EXPECT_EQ(after.loads, (n - 1) + 2u);
  // Stores unchanged.
  EXPECT_EQ(after.stores, before.stores);
}

TEST(ScalarReplacement, RegisterTrafficDrops) {
  const Program p = stencil(50000);
  const ScalarReplacementResult r = replace_scalars(p);
  const auto machine = machine::origin2000_r10k().scaled(16);
  const auto before = model::measure(p, machine);
  const auto after = model::measure(r.program, machine);
  // Register boundary traffic falls by ~half; memory traffic unchanged.
  EXPECT_LT(after.profile.register_bytes(),
            0.6 * static_cast<double>(before.profile.register_bytes()));
  EXPECT_NEAR(static_cast<double>(after.profile.memory_bytes()),
              static_cast<double>(before.profile.memory_bytes()),
              0.02 * static_cast<double>(before.profile.memory_bytes()));
}

TEST(ScalarReplacement, SkipsWrittenArrays) {
  Program p("t");
  const ArrayId a = p.add_array("a", {32});
  p.mark_output_array(a);
  p.append(loop("i", 2, 30,
                assign(a, {v("i")}, at(a, v("i", -1)) + at(a, v("i", 1)))));
  EXPECT_TRUE(replace_scalars(p).actions.empty());
}

TEST(ScalarReplacement, SkipsGuardedReferences) {
  Program p("t");
  const ArrayId a = p.add_array("a", {32});
  p.add_scalar("s");
  p.mark_output_scalar("s");
  p.append(loop("i", 2, 30,
                when(ir::CmpOp::kGe, v("i"), k(3),
                     assign("s", sref("s") + at(a, v("i", -1)) +
                                     at(a, v("i"))))));
  EXPECT_TRUE(replace_scalars(p).actions.empty());
}

TEST(ScalarReplacement, SkipsSingleOffsetReads) {
  Program p("t");
  const ArrayId a = p.add_array("a", {32});
  p.add_scalar("s");
  p.mark_output_scalar("s");
  p.append(loop("i", 1, 32, assign("s", sref("s") + at(a, v("i")))));
  EXPECT_TRUE(replace_scalars(p).actions.empty());
}

TEST(ScalarReplacement, MultipleArraysInOneLoop) {
  Program p("t");
  const std::int64_t n = 40;
  const ArrayId a = p.add_array("a", {n + 2});
  const ArrayId b = p.add_array("b", {n + 2});
  const ArrayId out = p.add_array("out", {n + 2});
  p.mark_output_array(out);
  p.append(loop("i", 2, n,
                assign(out, {v("i")},
                       (at(a, v("i", -1)) + at(a, v("i", 1))) *
                           (at(b, v("i")) - at(b, v("i", -1))))));
  const ScalarReplacementResult r = replace_scalars(p);
  EXPECT_EQ(r.actions.size(), 2u);
  expect_preserved(p, r.program);
}

TEST(ScalarReplacement, JacobiChainSweepsAllRotate) {
  const Program p = workloads::jacobi_chain(64, 4);
  const ScalarReplacementResult r = replace_scalars(p);
  // Each of the 4 sweeps reads its source at 3 offsets.
  EXPECT_EQ(r.actions.size(), 4u);
  EXPECT_EQ(r.loads_removed, 8);
  expect_preserved(p, r.program);
}

TEST(ScalarReplacement, RandomProgramsSafe) {
  Prng rng(60606);
  for (int trial = 0; trial < 15; ++trial) {
    const Program p = workloads::random_program(rng);
    expect_preserved(p, replace_scalars(p).program);
  }
}

}  // namespace
}  // namespace bwc::transform
