// Steady-state fast-forward: exactness and observability.
//
// Fast-forward (offline: runtime/fastforward.h, online:
// memsim/fastforward.h) is an exact macrosimulation, not an
// approximation: every test here holds its observables bit-identical to
// full simulation -- checksums, flop/load/store counts, per-boundary
// traffic bytes, and (for the memsim layer) the hierarchy's complete
// counter and resident state. The sweeps also assert the accelerations
// *engage* where they should and *refuse* where they must
// (page-randomized hierarchies, aperiodic streams, reductions).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "bench_common.h"
#include "bwc/core/optimizer.h"
#include "bwc/ir/dsl.h"
#include "bwc/machine/machine_model.h"
#include "bwc/memsim/fastforward.h"
#include "bwc/memsim/hierarchy.h"
#include "bwc/model/measure.h"
#include "bwc/runtime/compiled.h"
#include "bwc/runtime/fastforward.h"
#include "bwc/runtime/interpreter.h"
#include "bwc/runtime/lowering.h"
#include "bwc/runtime/recorder.h"
#include "bwc/support/prng.h"
#include "bwc/workloads/extra_programs.h"
#include "bwc/workloads/paper_programs.h"
#include "bwc/workloads/random_programs.h"

namespace bwc {
namespace {

using ir::Program;
using runtime::ExecOptions;
using runtime::ExecResult;

void expect_profile_eq(const machine::ExecutionProfile& a,
                       const machine::ExecutionProfile& b,
                       const std::string& label) {
  SCOPED_TRACE(label);
  EXPECT_EQ(a.flops, b.flops);
  ASSERT_EQ(a.boundaries.size(), b.boundaries.size());
  for (std::size_t i = 0; i < a.boundaries.size(); ++i) {
    SCOPED_TRACE("boundary " + a.boundaries[i].name);
    EXPECT_EQ(a.boundaries[i].bytes_toward_cpu,
              b.boundaries[i].bytes_toward_cpu);
    EXPECT_EQ(a.boundaries[i].bytes_from_cpu, b.boundaries[i].bytes_from_cpu);
  }
}

void expect_result_eq(const ExecResult& a, const ExecResult& b,
                      const std::string& label) {
  SCOPED_TRACE(label);
  EXPECT_EQ(a.checksum, b.checksum);
  EXPECT_EQ(a.flops, b.flops);
  EXPECT_EQ(a.loads, b.loads);
  EXPECT_EQ(a.stores, b.stores);
  EXPECT_EQ(a.scalars, b.scalars);
  expect_profile_eq(a.profile, b.profile, label);
}

// -- Memsim layer: state snapshots and translation ------------------------

/// Feed `count` interleaved two-load-one-store stride-8 triples starting
/// at `base`, the shape of a fused a[i] = a[i] + b[i] loop.
void feed_stream(memsim::MemoryHierarchy& h, std::uint64_t base,
                 std::uint64_t count) {
  const std::uint64_t b2 = base + (8u << 20);
  for (std::uint64_t i = 0; i < count; ++i) {
    h.load(base + 8 * i, 8);
    h.load(b2 + 8 * i, 8);
    h.store(base + 8 * i, 8);
  }
}

TEST(MemsimState, TranslationInvariancePerMachine) {
  // Pure modulo indexing translates; page randomization must refuse.
  EXPECT_TRUE(bench::o2k().make_hierarchy().translation_invariant());
  EXPECT_FALSE(bench::exemplar().make_hierarchy().translation_invariant());
}

TEST(MemsimState, ShiftedStreamYieldsTranslatedState) {
  memsim::MemoryHierarchy h1 = bench::o2k().make_hierarchy();
  memsim::MemoryHierarchy h2 = bench::o2k().make_hierarchy();
  const std::int64_t shift =
      4 * static_cast<std::int64_t>(h1.max_line_bytes());
  const std::uint64_t base = 1u << 20;
  feed_stream(h1, base, 2000);
  feed_stream(h2, base + static_cast<std::uint64_t>(shift), 2000);

  memsim::MemoryHierarchy::ResidentState s1;
  h1.snapshot_state(&s1);
  // h2's state is exactly h1's translated by the shift...
  EXPECT_TRUE(h2.state_equals_shifted(s1, shift));
  // ...and by no other line-granular shift.
  EXPECT_FALSE(h2.state_equals_shifted(s1, 0));
  EXPECT_FALSE(h2.state_equals_shifted(
      s1, shift + static_cast<std::int64_t>(h1.max_line_bytes())));

  // Counters are identical: a pure address translation moves the same
  // bytes across every boundary.
  memsim::MemoryHierarchy::Counters c1, c2;
  h1.snapshot_counters(&c1);
  h2.snapshot_counters(&c2);
  EXPECT_TRUE(c1 == c2);
}

TEST(MemsimState, ShiftStateMatchesShiftedReplay) {
  memsim::MemoryHierarchy h1 = bench::o2k().make_hierarchy();
  memsim::MemoryHierarchy h2 = bench::o2k().make_hierarchy();
  const std::int64_t shift =
      -3 * static_cast<std::int64_t>(h1.max_line_bytes());
  const std::uint64_t base = 4u << 20;
  feed_stream(h1, base, 1500);
  feed_stream(h2, base + static_cast<std::uint64_t>(shift), 1500);

  // Analytically translating h1 must land exactly on h2's state.
  h1.shift_state(shift);
  memsim::MemoryHierarchy::ResidentState s2;
  h2.snapshot_state(&s2);
  EXPECT_TRUE(h1.state_equals_shifted(s2, 0));
}

// -- Online detector (warm-up path) ---------------------------------------

TEST(OnlineFastForward, ExactOnPeriodicStream) {
  memsim::MemoryHierarchy h_ref = bench::o2k().make_hierarchy();
  memsim::MemoryHierarchy h_ff = bench::o2k().make_hierarchy();
  memsim::AccessFastForward ff(&h_ff);

  const std::uint64_t base = 1u << 20;
  const std::uint64_t b2 = base + (8u << 20);
  const std::uint64_t n = 100000;
  for (std::uint64_t i = 0; i < n; ++i) {
    h_ref.load(base + 8 * i, 8);
    h_ref.load(b2 + 8 * i, 8);
    h_ref.store(base + 8 * i, 8);
    ff.access(false, base + 8 * i, 8);
    ff.access(false, b2 + 8 * i, 8);
    ff.access(true, base + 8 * i, 8);
  }
  ff.settle();

  // The detector must have absorbed the bulk of the post-fill stream...
  EXPECT_GT(ff.skipped_accesses(), 3 * n / 2);
  // ...while reproducing full simulation exactly: counters and state.
  memsim::MemoryHierarchy::Counters cr, cf;
  h_ref.snapshot_counters(&cr);
  h_ff.snapshot_counters(&cf);
  EXPECT_TRUE(cr == cf);
  memsim::MemoryHierarchy::ResidentState sr;
  h_ref.snapshot_state(&sr);
  EXPECT_TRUE(h_ff.state_equals_shifted(sr, 0));
}

TEST(OnlineFastForward, ForwardsAperiodicStreamUnchanged) {
  memsim::MemoryHierarchy h_ref = bench::o2k().make_hierarchy();
  memsim::MemoryHierarchy h_ff = bench::o2k().make_hierarchy();
  memsim::AccessFastForward ff(&h_ff);

  Prng rng(7);
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t addr =
        (1u << 20) + 8 * static_cast<std::uint64_t>(rng.uniform_in(0, 1 << 16));
    const bool is_store = rng.uniform_in(0, 3) == 0;
    if (is_store) {
      h_ref.store(addr, 8);
    } else {
      h_ref.load(addr, 8);
    }
    ff.access(is_store, addr, 8);
  }
  ff.settle();

  EXPECT_EQ(ff.skipped_accesses(), 0u);
  memsim::MemoryHierarchy::Counters cr, cf;
  h_ref.snapshot_counters(&cr);
  h_ff.snapshot_counters(&cf);
  EXPECT_TRUE(cr == cf);
}

// -- Lowering metadata ----------------------------------------------------

TEST(LoweringMetadata, UniformStepBytes) {
  using namespace ir::dsl;  // NOLINT
  const std::int64_t n = 4096;

  {  // Stride-1 update: every access advances 8 bytes per iteration.
    const runtime::LoweredProgram lp =
        runtime::lower(workloads::sec21_write_loop(n));
    ASSERT_EQ(lp.stream_loops.size(), 1u);
    EXPECT_EQ(lp.stream_loops[0].uniform_step_bytes, 8);
  }
  {  // Reductions are excluded outright.
    const runtime::LoweredProgram lp =
        runtime::lower(workloads::sec21_read_loop(n));
    ASSERT_EQ(lp.stream_loops.size(), 1u);
    EXPECT_EQ(lp.stream_loops[0].uniform_step_bytes, 0);
  }
  {  // Reversed traversal: uniform step of -8 bytes.
    Program p("reversed");
    const ir::ArrayId a = p.add_array("A", {n});
    p.mark_output_array(a);
    p.append(loop("i", 1, n,
                  assign(a, {ir::Affine::var("i", -1, n + 1)},
                         at(a, ir::Affine::var("i", -1, n + 1)) + lit(0.5))));
    const runtime::LoweredProgram lp = runtime::lower(p);
    ASSERT_EQ(lp.stream_loops.size(), 1u);
    EXPECT_EQ(lp.stream_loops[0].uniform_step_bytes, -8);
  }
  {  // Mixed strides (a[i] vs b[2i]) have no uniform shift.
    Program p("mixed stride");
    const ir::ArrayId a = p.add_array("A", {n});
    const ir::ArrayId b = p.add_array("B", {2 * n + 1});
    p.mark_output_array(a);
    p.append(loop("i", 1, n,
                  assign(a, {v("i")},
                         at(a, v("i")) + at(b, ir::Affine::var("i", 2)))));
    const runtime::LoweredProgram lp = runtime::lower(p);
    ASSERT_EQ(lp.stream_loops.size(), 1u);
    EXPECT_EQ(lp.stream_loops[0].uniform_step_bytes, 0);
  }
}

// -- Compiled engine: differential exactness ------------------------------

/// Run `p` with fast-forward off and on (serial and at 4 cores) and hold
/// every observable identical; returns the ff-on serial result for
/// engagement checks.
ExecResult expect_fast_forward_exact(const Program& p,
                                     const machine::MachineModel& machine) {
  memsim::MemoryHierarchy h_off = machine.make_hierarchy();
  ExecOptions off;
  off.hierarchy = &h_off;
  off.fast_forward = false;
  const ExecResult r_off = runtime::execute_compiled(p, off);

  memsim::MemoryHierarchy h_on = machine.make_hierarchy();
  ExecOptions on;
  on.hierarchy = &h_on;
  on.fast_forward = true;
  const ExecResult r_on = runtime::execute_compiled(p, on);
  expect_result_eq(r_off, r_on, p.name() + " [serial ff]");

  for (const int cores : {4}) {
    memsim::MemoryHierarchy h_par = machine.make_hierarchy();
    ExecOptions par;
    par.hierarchy = &h_par;
    par.fast_forward = true;
    par.cores = cores;
    const ExecResult r_par = runtime::execute_compiled(p, par);
    expect_result_eq(r_off, r_par,
                     p.name() + " [ff cores=" + std::to_string(cores) + "]");
  }
  return r_on;
}

TEST(FastForwardExact, PaperAndExtraWorkloads) {
  const machine::MachineModel m = bench::o2k();
  expect_fast_forward_exact(workloads::sec21_write_loop(65536), m);
  expect_fast_forward_exact(workloads::sec21_both_loops(65536), m);
  expect_fast_forward_exact(workloads::fig7_original(16384), m);
  expect_fast_forward_exact(workloads::jacobi_chain(8192, 4), m);
  expect_fast_forward_exact(workloads::blur_sharpen(8192), m);
  expect_fast_forward_exact(workloads::reduction_cascade(4096, 4), m);
}

TEST(FastForwardExact, OptimizedWorkloads) {
  const machine::MachineModel m = bench::o2k();
  expect_fast_forward_exact(
      core::optimize(workloads::fig7_original(16384)).program, m);
  expect_fast_forward_exact(
      core::optimize(workloads::sec21_both_loops(65536)).program, m);
}

TEST(FastForwardExact, RandomWorkloads) {
  const machine::MachineModel m = bench::o2k();
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Prng rng(seed);
    expect_fast_forward_exact(workloads::random_program(rng), m);
  }
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    Prng rng(seed);
    expect_fast_forward_exact(workloads::random_program_2d(rng, 12, 3), m);
  }
}

TEST(FastForwardExact, AllMachinePresets) {
  for (const auto& m : machine::all_presets()) {
    SCOPED_TRACE(m.name);
    expect_fast_forward_exact(workloads::sec21_both_loops(32768),
                              m.scaled(16));
    expect_fast_forward_exact(workloads::fig7_original(8192), m.scaled(16));
  }
}

TEST(FastForwardExact, EngagesOnStride1Loops) {
  const ExecResult r =
      expect_fast_forward_exact(workloads::sec21_write_loop(100000),
                                bench::o2k());
  EXPECT_GT(r.fast_forward_events, 0u);
  // Certification can only happen after the cold fill (the stream must
  // sweep every level's capacity first), but the bulk of the trip space
  // past that point must be skipped, not simulated.
  EXPECT_GT(r.fast_forwarded_iterations, 50000u);
}

TEST(FastForwardExact, PageRandomizedMachineRefuses) {
  // Exemplar hashes page numbers into frame positions; resident state does
  // not commute with address shifts there, so the engine must refuse to
  // fast-forward -- and still match full simulation exactly (trivially,
  // since it *is* full simulation).
  const ExecResult r = expect_fast_forward_exact(
      workloads::sec21_write_loop(100000), bench::exemplar());
  EXPECT_EQ(r.fast_forward_events, 0u);
  EXPECT_EQ(r.fast_forwarded_iterations, 0u);
}

TEST(FastForwardExact, ReductionLoopsFallBack) {
  const ExecResult r = expect_fast_forward_exact(
      workloads::sec21_read_loop(100000), bench::o2k());
  EXPECT_EQ(r.fast_forwarded_iterations, 0u);
}

TEST(FastForwardExact, MeasureOptionsToggle) {
  const Program p = workloads::fig7_original(16384);
  const machine::MachineModel m = bench::o2k().with_cores(4);
  model::MeasureOptions on, off;
  off.fast_forward = false;
  const model::Measurement a = model::measure(p, m, on);
  const model::Measurement b = model::measure(p, m, off);
  EXPECT_EQ(a.exec.checksum, b.exec.checksum);
  expect_profile_eq(a.profile, b.profile, "measure ff toggle");
  EXPECT_EQ(a.time.total_s, b.time.total_s);
}

// -- Descending (stride -1) run coalescing --------------------------------

TEST(DescendingRuns, ReversedTraversalExact) {
  using namespace ir::dsl;  // NOLINT
  const std::int64_t n = 32768;
  Program p("reversed sweep");
  const ir::ArrayId a = p.add_array("A", {n});
  const ir::ArrayId b = p.add_array("B", {n});
  p.mark_output_array(a);
  // Reversed update then a reversed copy: both stream loops walk their
  // arrays high-to-low.
  p.append(loop("i", 1, n,
                assign(a, {ir::Affine::var("i", -1, n + 1)},
                       at(a, ir::Affine::var("i", -1, n + 1)) + lit(0.25))));
  p.append(loop("i", 1, n,
                assign(b, {ir::Affine::var("i", -1, n + 1)},
                       at(a, ir::Affine::var("i", -1, n + 1)))));

  memsim::MemoryHierarchy href = bench::o2k().make_hierarchy();
  ExecOptions ref_opts;
  ref_opts.hierarchy = &href;
  const ExecResult ref = runtime::execute(p, ref_opts);

  for (const bool coalesce : {true, false}) {
    for (const bool fast_forward : {true, false}) {
      memsim::MemoryHierarchy h = bench::o2k().make_hierarchy();
      ExecOptions opts;
      opts.hierarchy = &h;
      opts.coalesce_accesses = coalesce;
      opts.fast_forward = fast_forward;
      const ExecResult got = runtime::execute_compiled(p, opts);
      expect_result_eq(ref, got,
                       "reversed [coalesce=" + std::to_string(coalesce) +
                           ", ff=" + std::to_string(fast_forward) + "]");
    }
  }
  expect_fast_forward_exact(p, bench::o2k());
}

TEST(DescendingRuns, RecorderCoalescesDescendingStream) {
  // Elementwise descending stream vs coalesced: observables identical,
  // but the coalesced hierarchy touches each line once instead of once
  // per element.
  memsim::MemoryHierarchy h_el = bench::o2k().make_hierarchy();
  memsim::MemoryHierarchy h_co = bench::o2k().make_hierarchy();
  const std::uint64_t base = 1u << 20;
  const std::uint64_t n = 4096;
  {
    runtime::Recorder el(&h_el, /*coalesce=*/false);
    runtime::Recorder co(&h_co, /*coalesce=*/true);
    for (std::uint64_t i = n; i-- > 0;) {
      el.load(base + 8 * i, 8);
      co.load(base + 8 * i, 8);
    }
  }
  for (std::size_t bnd = 0; bnd < h_el.boundaries().size(); ++bnd) {
    EXPECT_EQ(h_el.boundaries()[bnd].bytes_toward_cpu,
              h_co.boundaries()[bnd].bytes_toward_cpu);
    EXPECT_EQ(h_el.boundaries()[bnd].bytes_from_cpu,
              h_co.boundaries()[bnd].bytes_from_cpu);
  }
  EXPECT_EQ(h_el.load_count(), h_co.load_count());
  EXPECT_LT(h_co.level(0).stats().accesses(), h_el.level(0).stats().accesses());
}

// -- Warm-up fast-forward in steady_state_profile -------------------------

TEST(WarmupFastForward, SteadyStateProfileUnchanged) {
  const auto workload = [](runtime::Recorder& rec) {
    const std::uint64_t a = 1u << 20;
    const std::uint64_t b = a + (8u << 20);
    for (std::uint64_t i = 0; i < 150000; ++i) {
      rec.load_double(a + 8 * i);
      rec.load_double(b + 8 * i);
      rec.store_double(a + 8 * i);
      rec.flops(1);
    }
  };
  for (const auto& machine : {bench::o2k(), bench::exemplar()}) {
    SCOPED_TRACE(machine.name);
    // Reference: warm up by full simulation, exactly the pre-fast-forward
    // recipe.
    memsim::MemoryHierarchy h = machine.make_hierarchy();
    {
      runtime::Recorder warmup(&h, /*coalesce=*/true);
      workload(warmup);
    }
    h.reset_stats();
    machine::ExecutionProfile want;
    {
      runtime::Recorder rec(&h, /*coalesce=*/true);
      workload(rec);
      want = rec.profile();
    }
    const machine::ExecutionProfile got =
        bench::steady_state_profile(machine, workload);
    expect_profile_eq(want, got, "steady_state_profile warm-up");
  }
}

}  // namespace
}  // namespace bwc
