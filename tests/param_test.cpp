// Parameterized property sweeps (TEST_P / INSTANTIATE_TEST_SUITE_P):
// invariants that must hold across whole families of configurations.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "bwc/core/optimizer.h"
#include "bwc/fusion/solvers.h"
#include "bwc/graph/hyper_cut.h"
#include "bwc/graph/random_graphs.h"
#include "bwc/machine/machine_model.h"
#include "bwc/memsim/hierarchy.h"
#include "bwc/model/measure.h"
#include "bwc/runtime/interpreter.h"
#include "bwc/runtime/recorder.h"
#include "bwc/support/prng.h"
#include "bwc/transform/storage_reduction.h"
#include "bwc/workloads/paper_programs.h"
#include "bwc/workloads/random_programs.h"
#include "bwc/workloads/stride_kernels.h"

namespace bwc {
namespace {

// ---------------------------------------------------------------------------
// Cache geometry sweep: invariants for every (size, line, assoc, policy).
// ---------------------------------------------------------------------------

using CacheParam = std::tuple<int /*size KB*/, int /*line*/, int /*assoc*/,
                              memsim::WritePolicy>;

class CacheGeometry : public ::testing::TestWithParam<CacheParam> {
 protected:
  memsim::CacheConfig config() const {
    const auto& [size_kb, line, assoc, policy] = GetParam();
    memsim::CacheConfig c;
    c.name = "L1";
    c.size_bytes = static_cast<std::uint64_t>(size_kb) * 1024;
    c.line_bytes = static_cast<std::uint64_t>(line);
    c.associativity = static_cast<std::uint32_t>(assoc);
    c.write_policy = policy;
    return c;
  }
};

TEST_P(CacheGeometry, SecondTouchAlwaysHits) {
  memsim::CacheLevel cache(config());
  cache.access(0, false);
  EXPECT_TRUE(cache.access(0, false).hit);
  EXPECT_TRUE(cache.access(0, true).hit);
}

TEST_P(CacheGeometry, WorkingSetWithinCapacityNeverEvicts) {
  memsim::CacheLevel cache(config());
  const std::uint64_t lines = config().num_lines();
  // Touch exactly the capacity in distinct lines twice; with a dense
  // sequential footprint every set receives exactly `ways` lines.
  for (int pass = 0; pass < 2; ++pass) {
    for (std::uint64_t l = 0; l < lines; ++l)
      cache.access(l * config().line_bytes, false);
  }
  EXPECT_EQ(cache.stats().evictions, 0u);
  EXPECT_EQ(cache.stats().read_misses, lines);
  EXPECT_EQ(cache.stats().read_hits, lines);
}

TEST_P(CacheGeometry, StreamingMissesEveryLineOnce) {
  memsim::CacheLevel cache(config());
  const std::uint64_t lines = 4 * config().num_lines();
  for (std::uint64_t l = 0; l < lines; ++l)
    cache.access(l * config().line_bytes, false);
  EXPECT_EQ(cache.stats().read_misses, lines);
}

TEST_P(CacheGeometry, WritebacksOnlyUnderWriteBack) {
  memsim::CacheLevel cache(config());
  const std::uint64_t lines = 4 * config().num_lines();
  for (std::uint64_t l = 0; l < lines; ++l)
    cache.access(l * config().line_bytes, true);
  if (config().write_policy == memsim::WritePolicy::kWriteBack) {
    EXPECT_GT(cache.stats().writebacks, 0u);
  } else {
    EXPECT_EQ(cache.stats().writebacks, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheGeometry,
    ::testing::Combine(::testing::Values(1, 4, 32),     // KB
                       ::testing::Values(32, 64, 128),  // line bytes
                       ::testing::Values(1, 2, 4, 0),   // ways (0 = full)
                       ::testing::Values(memsim::WritePolicy::kWriteBack,
                                         memsim::WritePolicy::kWriteThrough)));

// ---------------------------------------------------------------------------
// Hyper-graph min-cut: exactness across random graph families.
// ---------------------------------------------------------------------------

using HyperParam = std::tuple<int /*nodes*/, int /*edges*/, int /*max pins*/,
                              int /*seed*/>;

class HyperCutFamily : public ::testing::TestWithParam<HyperParam> {};

TEST_P(HyperCutFamily, AlgorithmMatchesBruteForce) {
  const auto& [nodes, edges, max_pins, seed] = GetParam();
  Prng rng(static_cast<std::uint64_t>(seed) * 7919 + 13);
  for (int trial = 0; trial < 10; ++trial) {
    const graph::Hypergraph g = graph::random_hypergraph(
        rng, nodes, edges, 1, std::min(max_pins, nodes), 3);
    const auto fast = graph::min_hyperedge_cut(g, 0, nodes - 1);
    const auto ref = graph::min_hyperedge_cut_bruteforce(g, 0, nodes - 1);
    ASSERT_EQ(fast.cut_weight, ref.cut_weight)
        << "nodes=" << nodes << " edges=" << edges << " trial=" << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Families, HyperCutFamily,
    ::testing::Combine(::testing::Values(4, 6, 8), ::testing::Values(4, 8, 12),
                       ::testing::Values(2, 3, 5), ::testing::Values(1, 2)));

// ---------------------------------------------------------------------------
// Optimizer semantics preservation across program families and solvers.
// ---------------------------------------------------------------------------

using OptimizeParam = std::tuple<int /*loops*/, int /*arrays*/,
                                 core::FusionSolver, int /*seed*/>;

class OptimizerFamily : public ::testing::TestWithParam<OptimizeParam> {};

TEST_P(OptimizerFamily, ChecksumPreserved) {
  const auto& [loops, arrays, solver, seed] = GetParam();
  Prng rng(static_cast<std::uint64_t>(seed) * 104729 + 7);
  workloads::RandomProgramParams params;
  params.num_loops = loops;
  params.num_arrays = arrays;
  params.n = 40;
  for (int trial = 0; trial < 5; ++trial) {
    const ir::Program p = workloads::random_program(rng, params);
    core::OptimizerOptions opts;
    opts.solver = solver;
    const core::OptimizeResult r = core::optimize(p, opts);
    const double before = runtime::execute(p).checksum;
    const double after = runtime::execute(r.program).checksum;
    ASSERT_NEAR(before, after, 1e-9 * (std::abs(before) + 1.0))
        << "loops=" << loops << " arrays=" << arrays << " trial=" << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Programs, OptimizerFamily,
    ::testing::Combine(::testing::Values(2, 4, 6), ::testing::Values(2, 4),
                       ::testing::Values(core::FusionSolver::kBest,
                                         core::FusionSolver::kGreedy,
                                         core::FusionSolver::kBisection,
                                         core::FusionSolver::kEdgeWeighted),
                       ::testing::Values(11, 22)));

// ---------------------------------------------------------------------------
// Stride kernels: traffic accounting invariant for every kernel spec.
// ---------------------------------------------------------------------------

class EveryStrideKernel : public ::testing::TestWithParam<int> {};

TEST_P(EveryStrideKernel, SteadyStateTrafficMatchesUseful) {
  const auto& spec =
      workloads::figure3_kernels()[static_cast<std::size_t>(GetParam())];
  workloads::AddressSpace space;
  workloads::StrideKernel kernel(spec, 60000, space);
  memsim::MemoryHierarchy h(machine::origin2000_r10k().scaled(64).caches);
  {
    runtime::Recorder warmup(&h);
    kernel.run(warmup);
  }
  h.reset_stats();
  runtime::Recorder rec(&h);
  kernel.run(rec);
  const double ratio = static_cast<double>(h.memory_traffic_bytes()) /
                       static_cast<double>(kernel.useful_bytes());
  EXPECT_NEAR(ratio, 1.0, 0.05) << spec.name;
  // Flops are charged on every element.
  EXPECT_GE(rec.flop_count(), 60000u);
}

INSTANTIATE_TEST_SUITE_P(AllKernels, EveryStrideKernel,
                         ::testing::Range(0, 13));

// ---------------------------------------------------------------------------
// Machines: the paper programs behave sanely on every preset.
// ---------------------------------------------------------------------------

class EveryMachine : public ::testing::TestWithParam<int> {
 protected:
  machine::MachineModel machine() const {
    return machine::all_presets()[static_cast<std::size_t>(GetParam())]
        .scaled(16);
  }
};

TEST_P(EveryMachine, WriteLoopCostsMoreThanReadLoop) {
  const auto rw = model::measure(workloads::sec21_write_loop(600000),
                                 machine());
  const auto ro = model::measure(workloads::sec21_read_loop(600000),
                                 machine());
  EXPECT_GT(rw.time.total_s, 1.5 * ro.time.total_s);
}

TEST_P(EveryMachine, OptimizedFig7NeverSlower) {
  const ir::Program p = workloads::fig7_original(400000);
  const auto opt = core::optimize(p);
  const double before = model::measure(p, machine()).time.total_s;
  const double after = model::measure(opt.program, machine()).time.total_s;
  EXPECT_LE(after, before);
  EXPECT_GT(before / after, 1.5);  // ~2x on bandwidth-bound machines
}

TEST_P(EveryMachine, BalanceRowsArePositive) {
  const auto m = machine();
  for (double b : m.machine_balance()) EXPECT_GT(b, 0.0);
  const auto r = model::measure(workloads::fig7_original(20000), m);
  for (double b : r.balance.bytes_per_flop) EXPECT_GE(b, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Presets, EveryMachine, ::testing::Range(0, 4));

// ---------------------------------------------------------------------------
// Fig6 pipeline across problem sizes: the N^2 -> N reduction is size-stable.
// ---------------------------------------------------------------------------

class Fig6Sizes : public ::testing::TestWithParam<int> {};

TEST_P(Fig6Sizes, SemanticsAndFootprint) {
  const std::int64_t n = GetParam();
  const ir::Program p = workloads::fig6_original(n);
  const core::OptimizeResult r = core::optimize(p);
  const double before = runtime::execute(p).checksum;
  const double after = runtime::execute(r.program).checksum;
  ASSERT_NEAR(before, after, 1e-9 * (std::abs(before) + 1.0));
  EXPECT_LE(transform::referenced_array_bytes(r.program),
            static_cast<std::uint64_t>(3 * n) * 8);
}

INSTANTIATE_TEST_SUITE_P(Sizes, Fig6Sizes,
                         ::testing::Values(4, 8, 16, 33, 64, 100));

}  // namespace
}  // namespace bwc
