// Parser tests: hand-written snippets plus print->parse round-trips over
// every program family in the repository.
#include <gtest/gtest.h>

#include <cmath>

#include "bwc/core/optimizer.h"
#include "bwc/ir/dsl.h"
#include "bwc/ir/parser.h"
#include "bwc/ir/printer.h"
#include "bwc/runtime/interpreter.h"
#include "bwc/support/error.h"
#include "bwc/support/prng.h"
#include "bwc/workloads/extra_programs.h"
#include "bwc/workloads/paper_programs.h"
#include "bwc/workloads/random_programs.h"

namespace bwc::ir {
namespace {

using namespace dsl;  // NOLINT

void expect_round_trip(const Program& p) {
  const std::string text = to_string(p);
  const Program parsed = parse_program(text);
  EXPECT_TRUE(equal(p, parsed)) << "original text:\n"
                                << text << "\nreparsed text:\n"
                                << to_string(parsed);
  // And semantics agree.
  const double a = runtime::execute(p).checksum;
  const double b = runtime::execute(parsed).checksum;
  EXPECT_NEAR(a, b, 1e-12 * (std::abs(a) + 1.0));
}

TEST(Parser, MinimalProgram) {
  const Program p = parse_program(
      "double a[8]\n"
      "double s\n"
      "for i = 1, 8\n"
      "  a[i] = (a[i] + 0.5)\n"
      "end for\n"
      "s = 0\n"
      "// outputs: s a\n");
  EXPECT_EQ(p.array_count(), 1);
  EXPECT_TRUE(p.has_scalar("s"));
  EXPECT_EQ(p.top().size(), 2u);
  EXPECT_EQ(p.output_arrays().size(), 1u);
}

TEST(Parser, HeaderAndName) {
  const Program p = parse_program("// program: my prog\ndouble s\ns = 1\n");
  EXPECT_EQ(p.name(), "my prog");
}

TEST(Parser, GuardsWithElse) {
  const Program p = parse_program(
      "double s\n"
      "for i = 1, 10\n"
      "  if (i <= 3)\n"
      "    s = (s + 1)\n"
      "  else\n"
      "    s = (s + 100)\n"
      "  end if\n"
      "end for\n"
      "// outputs: s\n");
  EXPECT_DOUBLE_EQ(runtime::execute(p).checksum, 3.0 + 700.0);
}

TEST(Parser, AffineForms) {
  const Program p = parse_program(
      "double a[64]\n"
      "double s\n"
      "for i = 2, 5\n"
      "  s = (s + a[2*i - 1])\n"
      "end for\n"
      "// outputs: s\n");
  // Just executing proves the subscript parsed as 2i-1 (bounds 3..9 valid).
  EXPECT_NO_THROW(runtime::execute(p));
}

TEST(Parser, IntrinsicsAndInputs) {
  const Program p = parse_program(
      "double a[4,4]\n"
      "double s\n"
      "for j = 1, 4\n"
      "  for i = 1, 4\n"
      "    a[i,j] = input7<4,4>[i,j]\n"
      "  end for\n"
      "end for\n"
      "for j = 2, 4\n"
      "  for i = 1, 4\n"
      "    s = (s + f(a[i,j - 1], a[i,j]))\n"
      "  end for\n"
      "end for\n"
      "// outputs: s\n");
  const auto& stmt = *p.top()[0];
  const Expr& rhs = *stmt.loop->body[0]->loop->body[0]->rhs;
  EXPECT_EQ(rhs.kind, ExprKind::kInput);
  EXPECT_EQ(rhs.input_key, 7);
  EXPECT_EQ(rhs.input_extents, (std::vector<std::int64_t>{4, 4}));
  EXPECT_NO_THROW(runtime::execute(p));
}

TEST(Parser, MinMaxCalls) {
  const Program p = parse_program(
      "double s\n"
      "s = min((1 + 2), max(7, 4))\n"
      "// outputs: s\n");
  EXPECT_DOUBLE_EQ(runtime::execute(p).checksum, 3.0);
}

TEST(Parser, ErrorsCarryLineNumbers) {
  try {
    parse_program("double s\nfor i = 1,\n  s = 1\nend for\n");
    FAIL() << "expected parse error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
  EXPECT_THROW(parse_program("double s\nq = 1\n"), Error);       // undeclared
  EXPECT_THROW(parse_program("double s\nfor i = 1, 3\ns = 1\n"),
               Error);                                           // unterminated
}

// -- Round trips over every program family ------------------------------------------

TEST(ParserRoundTrip, PaperPrograms) {
  expect_round_trip(workloads::fig6_original(12));
  expect_round_trip(workloads::fig7_original(32));
  expect_round_trip(workloads::sec21_both_loops(32));
}

TEST(ParserRoundTrip, ExtraPrograms) {
  expect_round_trip(workloads::jacobi_chain(32, 2));
  expect_round_trip(workloads::adi_like(8));
  expect_round_trip(workloads::blur_sharpen(32));
  expect_round_trip(workloads::reduction_cascade(32, 3));
}

TEST(ParserRoundTrip, RandomPrograms) {
  Prng rng(555777);
  for (int trial = 0; trial < 20; ++trial) {
    expect_round_trip(workloads::random_program(rng));
  }
}

TEST(ParserRoundTrip, Random2DPrograms) {
  Prng rng(424242);
  for (int trial = 0; trial < 10; ++trial) {
    expect_round_trip(workloads::random_program_2d(rng, 10, 2));
  }
}

TEST(ParserRoundTrip, OptimizedProgramsStillParse) {
  // The optimizer's output (guards, promoted bodies, shrunken buffers)
  // must survive a round trip too.
  const Program p = workloads::fig6_original(12);
  const auto opt = core::optimize(p);
  expect_round_trip(opt.program);
}

}  // namespace
}  // namespace bwc::ir
