// Randomized round-trip property test for PipelineSpec: the autotuner
// uses spec strings as its genome, so parse(render(spec)) must be
// byte-identical for every representable spec, and render must refuse
// (rather than silently alter) anything the grammar cannot carry.
#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "bwc/pass/pipeline_spec.h"
#include "bwc/support/error.h"
#include "bwc/support/prng.h"

namespace bwc::pass {
namespace {

const char kNameChars[] = "abcdefghijklmnopqrstuvwxyz0123456789-";

std::string random_name(Prng& rng) {
  const std::size_t len = 1 + rng.uniform(8);
  std::string s;
  for (std::size_t i = 0; i < len; ++i)
    s += kNameChars[rng.uniform(sizeof(kNameChars) - 1)];
  return s;
}

/// A grammatical value: non-empty, no ','/'('/')', no edge whitespace.
/// Interior characters draw from a wider set than names, including
/// '=' and interior spaces, which the grammar does allow.
std::string random_value(Prng& rng) {
  const char interior[] =
      "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"
      "0123456789-_.+=:/ ";
  const char edge[] =
      "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"
      "0123456789-_.+=:/";
  std::string s;
  s += edge[rng.uniform(sizeof(edge) - 1)];
  const std::size_t extra = rng.uniform(8);
  for (std::size_t i = 0; i < extra; ++i)
    s += interior[rng.uniform(sizeof(interior) - 1)];
  if (!s.empty() && s.back() == ' ') s.back() = 'x';
  return s;
}

PipelineSpec random_spec(Prng& rng) {
  PipelineSpec spec;
  const std::size_t passes = rng.uniform(5);
  for (std::size_t p = 0; p < passes; ++p) {
    PassSpec pass;
    pass.name = random_name(rng);
    const std::size_t params = rng.uniform(4);
    for (std::size_t k = 0; k < params; ++k)
      pass.params.emplace_back(random_name(rng), random_value(rng));
    spec.passes.push_back(std::move(pass));
  }
  return spec;
}

void expect_specs_equal(const PipelineSpec& a, const PipelineSpec& b) {
  ASSERT_EQ(a.passes.size(), b.passes.size());
  for (std::size_t i = 0; i < a.passes.size(); ++i) {
    EXPECT_EQ(a.passes[i].name, b.passes[i].name);
    EXPECT_EQ(a.passes[i].params, b.passes[i].params);
  }
}

// The core property, over thousands of random representable specs:
// rendering then parsing reproduces the spec exactly (names, keys,
// values, parameter order), and re-rendering is byte-identical.
TEST(PipelineSpecRoundTrip, RandomizedRenderParseFixpoint) {
  Prng rng(42);
  for (int trial = 0; trial < 2000; ++trial) {
    const PipelineSpec spec = random_spec(rng);
    const std::string rendered = spec.to_string();
    const PipelineSpec reparsed = parse_pipeline_spec(rendered);
    expect_specs_equal(spec, reparsed);
    EXPECT_EQ(reparsed.to_string(), rendered);
  }
}

// Parsing is whitespace-insensitive but rendering is canonical, so a
// noisy spelling canonicalizes in one parse+render step and is then a
// fixpoint.
TEST(PipelineSpecRoundTrip, NoisySpellingCanonicalizesToFixpoint) {
  const std::string noisy =
      "  interchange ,fuse( solver = exact , shift=1 ) , reduce-storage ";
  const std::string canonical = parse_pipeline_spec(noisy).to_string();
  EXPECT_EQ(canonical,
            "interchange,fuse(solver=exact,shift=1),reduce-storage");
  EXPECT_EQ(parse_pipeline_spec(canonical).to_string(), canonical);
}

// Specs the grammar cannot represent must be refused by to_string, not
// silently rendered into a string that parses back differently.
TEST(PipelineSpecRoundTrip, UnrepresentableSpecsThrowOnRender) {
  const auto render = [](const std::string& name, const std::string& key,
                         const std::string& value) {
    PassSpec pass;
    pass.name = name;
    if (!key.empty() || !value.empty()) pass.params.emplace_back(key, value);
    return pass.to_string();
  };
  EXPECT_THROW(render("", "", ""), Error);            // empty name
  EXPECT_THROW(render("Fuse", "", ""), Error);        // uppercase name
  EXPECT_THROW(render("fu se", "", ""), Error);       // space in name
  EXPECT_THROW(render("fuse", "Solver", "x"), Error); // invalid key
  EXPECT_THROW(render("fuse", "solver", ""), Error);  // empty value
  EXPECT_THROW(render("fuse", "solver", "a,b"), Error);
  EXPECT_THROW(render("fuse", "solver", "a(b"), Error);
  EXPECT_THROW(render("fuse", "solver", "a)b"), Error);
  EXPECT_THROW(render("fuse", "solver", " x"), Error);  // edge whitespace
  EXPECT_THROW(render("fuse", "solver", "x "), Error);
}

// Strict parsing: empty list segments are malformed, not ignored.
TEST(PipelineSpecRoundTrip, RejectsEmptySegments) {
  EXPECT_THROW(parse_pipeline_spec("fuse(a=1,)"), Error);
  EXPECT_THROW(parse_pipeline_spec("fuse(,a=1)"), Error);
  EXPECT_THROW(parse_pipeline_spec("fuse,,interchange"), Error);
  EXPECT_THROW(parse_pipeline_spec(",fuse"), Error);
  EXPECT_THROW(parse_pipeline_spec("fuse,"), Error);
}

TEST(PipelineSpecRoundTrip, EmptyPipelineIsItsOwnFixpoint) {
  const PipelineSpec spec = parse_pipeline_spec("");
  EXPECT_TRUE(spec.empty());
  EXPECT_EQ(spec.to_string(), "");
}

}  // namespace
}  // namespace bwc::pass
