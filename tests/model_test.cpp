#include <gtest/gtest.h>

#include <cmath>

#include "bwc/machine/machine_model.h"
#include "bwc/model/balance.h"
#include "bwc/model/measure.h"
#include "bwc/model/prediction.h"
#include "bwc/support/error.h"
#include "bwc/workloads/paper_programs.h"

namespace bwc::model {
namespace {

machine::ExecutionProfile make_profile(std::uint64_t flops,
                                       std::vector<std::uint64_t> bytes) {
  machine::ExecutionProfile p;
  p.flops = flops;
  const char* names[] = {"L1-Reg", "L2-L1", "Mem-L2"};
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    memsim::BoundaryTraffic b;
    b.name = names[i];
    b.bytes_toward_cpu = bytes[i];
    p.boundaries.push_back(b);
  }
  return p;
}

TEST(Balance, FromProfileDividesByFlops) {
  const auto p = make_profile(1000, {8000, 4000, 800});
  const ProgramBalance b = ProgramBalance::from_profile("x", p);
  ASSERT_EQ(b.bytes_per_flop.size(), 3u);
  EXPECT_DOUBLE_EQ(b.bytes_per_flop[0], 8.0);
  EXPECT_DOUBLE_EQ(b.bytes_per_flop[1], 4.0);
  EXPECT_DOUBLE_EQ(b.bytes_per_flop[2], 0.8);
}

TEST(Balance, ZeroFlopsRejected) {
  const auto p = make_profile(0, {100});
  EXPECT_THROW(ProgramBalance::from_profile("x", p), Error);
}

TEST(Balance, DemandSupplyRatios) {
  const machine::MachineModel m = machine::origin2000_r10k();
  ProgramBalance b;
  b.name = "dmxpy";
  b.bytes_per_flop = {8.3, 8.3, 8.4};  // the paper's dmxpy row
  const auto ratios = demand_supply_ratios(b, m);
  EXPECT_NEAR(ratios[0], 2.075, 1e-9);
  EXPECT_NEAR(ratios[2], 10.5, 1e-9);
  // CPU utilization bound ~ 9.5% (the paper's number for dmxpy).
  EXPECT_NEAR(cpu_utilization_bound(ratios), 1.0 / 10.5, 1e-9);
}

TEST(Balance, UtilizationClampedAtFull) {
  EXPECT_DOUBLE_EQ(cpu_utilization_bound({0.5, 0.2}), 1.0);
}

TEST(Balance, RatioTableDepthMismatchThrows) {
  ProgramBalance b;
  b.name = "x";
  b.bytes_per_flop = {1.0};  // one boundary vs machine's three
  EXPECT_THROW(demand_supply_ratios(b, machine::origin2000_r10k()), Error);
}

TEST(Balance, TablesRenderPaperShape) {
  const machine::MachineModel m = machine::origin2000_r10k();
  ProgramBalance conv{"convolution", {6.4, 5.1, 5.2}};
  ProgramBalance dmxpy{"dmxpy", {8.3, 8.3, 8.4}};
  const std::string t1 = render_balance_table({conv, dmxpy}, m);
  EXPECT_NE(t1.find("convolution"), std::string::npos);
  EXPECT_NE(t1.find("L1-Reg"), std::string::npos);
  EXPECT_NE(t1.find("Mem-L2"), std::string::npos);
  EXPECT_NE(t1.find("0.80"), std::string::npos);  // machine row
  const std::string t2 = render_ratio_table({conv, dmxpy}, m);
  EXPECT_NE(t2.find("10.5"), std::string::npos);
  EXPECT_NE(t2.find("%"), std::string::npos);
}

TEST(Measure, RunsProgramOnMachineModel) {
  const machine::MachineModel m = machine::origin2000_r10k().scaled(64);
  const Measurement r =
      measure(workloads::sec21_read_loop(20000), m);
  EXPECT_GT(r.profile.flops, 0u);
  // Streaming read of 160 KB through 64 KB of L2: memory-bound.
  EXPECT_EQ(r.time.binding_resource, "Mem-L2");
  EXPECT_EQ(r.balance.bytes_per_flop.size(), 3u);
  const std::string s = summarize(r);
  EXPECT_NE(s.find("Mem-L2"), std::string::npos);
}

TEST(Measure, WriteLoopVsReadLoopParity) {
  // The Section 2.1 observation as a model property: the RW loop consumes
  // ~2x the memory traffic and so ~2x the predicted time of the R loop.
  const machine::MachineModel m = machine::origin2000_r10k().scaled(16);
  const auto rw = measure(workloads::sec21_write_loop(600000), m);
  const auto ro = measure(workloads::sec21_read_loop(600000), m);
  const double traffic_ratio =
      static_cast<double>(rw.profile.memory_bytes()) /
      static_cast<double>(ro.profile.memory_bytes());
  EXPECT_NEAR(traffic_ratio, 2.0, 0.1);
  EXPECT_NEAR(rw.time.total_s / ro.time.total_s, 2.0, 0.2);
}

// -- Multicore scaling prediction (docs/MODEL.md section 7) ---------------

TEST(Scaling, SaturationCoreCountMatchesHandComputation) {
  // Origin2000: peak 400 MFLOPS, bandwidths 1600/1600/320 MB/s.
  const machine::MachineModel m = machine::origin2000_r10k();
  // 4e8 flops = 1.0 s of compute at one core; 32 MB of memory traffic =
  // 0.1 s on the 320 MB/s bus; cache boundaries negligible. The bus
  // saturates at ceil(1.0 / 0.1) = 10 cores.
  const auto p = make_profile(400000000, {64, 64, 32000000});
  EXPECT_EQ(saturation_core_count(p, m), 10);
}

TEST(Scaling, NoSharedTrafficNeverSaturates) {
  const machine::MachineModel m = machine::origin2000_r10k();
  const auto p = make_profile(1000, {8000, 4000, 0});
  EXPECT_EQ(saturation_core_count(p, m), 0);
}

TEST(Scaling, BusBoundAtOneCoreSaturatesImmediately) {
  // The paper's regime: memory time exceeds every private resource
  // already on a uniprocessor, so more cores buy nothing.
  const machine::MachineModel m = machine::origin2000_r10k();
  const auto p = make_profile(1000, {64, 64, 32000000});
  EXPECT_EQ(saturation_core_count(p, m), 1);
}

TEST(Scaling, CurveKneesAtTheSaturationPoint) {
  const machine::MachineModel m = machine::origin2000_r10k();
  const auto p = make_profile(400000000, {64, 64, 32000000});
  const ScalingCurve curve = scaling_curve("synthetic", p, m, 16);
  ASSERT_EQ(curve.points.size(), 16u);
  EXPECT_EQ(curve.saturation_cores, 10);
  EXPECT_DOUBLE_EQ(curve.points[0].speedup, 1.0);
  for (std::size_t i = 1; i < curve.points.size(); ++i) {
    EXPECT_LE(curve.points[i].seconds, curve.points[i - 1].seconds);
    EXPECT_GE(curve.points[i].speedup, curve.points[i - 1].speedup);
  }
  // Below the knee compute binds and scaling is ideal; past it the bus
  // binds and the curve is flat at the plateau.
  EXPECT_NEAR(curve.points[4].speedup, 5.0, 1e-9);
  EXPECT_EQ(curve.points[4].binding_resource, "flops");
  EXPECT_EQ(curve.points[15].binding_resource, "Mem-L2");
  EXPECT_DOUBLE_EQ(curve.points[15].seconds, curve.points[10].seconds);
  // Plateau speedup: T(1)=1.0 s over T_shared=0.1 s.
  EXPECT_NEAR(curve.plateau_speedup, 10.0, 1e-9);
  const std::string rendered = render_scaling_curve(curve);
  EXPECT_NE(rendered.find("saturates at 10 cores"), std::string::npos);
}

TEST(Scaling, MeasuredCurveKeepsTrafficInvariant) {
  // measure_scaling replays the program with the parallel engine at each
  // core count: simulated traffic must not depend on the core count, and
  // predicted time must be non-increasing.
  const machine::MachineModel m = machine::origin2000_r10k().scaled(16);
  const auto curve = measure_scaling(workloads::fig7_original(20000), m,
                                     {1, 2, 4, 8});
  ASSERT_EQ(curve.size(), 4u);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_EQ(curve[i].exec.checksum, curve[0].exec.checksum);
    EXPECT_EQ(curve[i].profile.memory_bytes(),
              curve[0].profile.memory_bytes());
    EXPECT_LE(curve[i].time.total_s, curve[0].time.total_s);
  }
}

}  // namespace
}  // namespace bwc::model
