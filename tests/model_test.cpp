#include <gtest/gtest.h>

#include "bwc/machine/machine_model.h"
#include "bwc/model/balance.h"
#include "bwc/model/measure.h"
#include "bwc/support/error.h"
#include "bwc/workloads/paper_programs.h"

namespace bwc::model {
namespace {

machine::ExecutionProfile make_profile(std::uint64_t flops,
                                       std::vector<std::uint64_t> bytes) {
  machine::ExecutionProfile p;
  p.flops = flops;
  const char* names[] = {"L1-Reg", "L2-L1", "Mem-L2"};
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    memsim::BoundaryTraffic b;
    b.name = names[i];
    b.bytes_toward_cpu = bytes[i];
    p.boundaries.push_back(b);
  }
  return p;
}

TEST(Balance, FromProfileDividesByFlops) {
  const auto p = make_profile(1000, {8000, 4000, 800});
  const ProgramBalance b = ProgramBalance::from_profile("x", p);
  ASSERT_EQ(b.bytes_per_flop.size(), 3u);
  EXPECT_DOUBLE_EQ(b.bytes_per_flop[0], 8.0);
  EXPECT_DOUBLE_EQ(b.bytes_per_flop[1], 4.0);
  EXPECT_DOUBLE_EQ(b.bytes_per_flop[2], 0.8);
}

TEST(Balance, ZeroFlopsRejected) {
  const auto p = make_profile(0, {100});
  EXPECT_THROW(ProgramBalance::from_profile("x", p), Error);
}

TEST(Balance, DemandSupplyRatios) {
  const machine::MachineModel m = machine::origin2000_r10k();
  ProgramBalance b;
  b.name = "dmxpy";
  b.bytes_per_flop = {8.3, 8.3, 8.4};  // the paper's dmxpy row
  const auto ratios = demand_supply_ratios(b, m);
  EXPECT_NEAR(ratios[0], 2.075, 1e-9);
  EXPECT_NEAR(ratios[2], 10.5, 1e-9);
  // CPU utilization bound ~ 9.5% (the paper's number for dmxpy).
  EXPECT_NEAR(cpu_utilization_bound(ratios), 1.0 / 10.5, 1e-9);
}

TEST(Balance, UtilizationClampedAtFull) {
  EXPECT_DOUBLE_EQ(cpu_utilization_bound({0.5, 0.2}), 1.0);
}

TEST(Balance, RatioTableDepthMismatchThrows) {
  ProgramBalance b;
  b.name = "x";
  b.bytes_per_flop = {1.0};  // one boundary vs machine's three
  EXPECT_THROW(demand_supply_ratios(b, machine::origin2000_r10k()), Error);
}

TEST(Balance, TablesRenderPaperShape) {
  const machine::MachineModel m = machine::origin2000_r10k();
  ProgramBalance conv{"convolution", {6.4, 5.1, 5.2}};
  ProgramBalance dmxpy{"dmxpy", {8.3, 8.3, 8.4}};
  const std::string t1 = render_balance_table({conv, dmxpy}, m);
  EXPECT_NE(t1.find("convolution"), std::string::npos);
  EXPECT_NE(t1.find("L1-Reg"), std::string::npos);
  EXPECT_NE(t1.find("Mem-L2"), std::string::npos);
  EXPECT_NE(t1.find("0.80"), std::string::npos);  // machine row
  const std::string t2 = render_ratio_table({conv, dmxpy}, m);
  EXPECT_NE(t2.find("10.5"), std::string::npos);
  EXPECT_NE(t2.find("%"), std::string::npos);
}

TEST(Measure, RunsProgramOnMachineModel) {
  const machine::MachineModel m = machine::origin2000_r10k().scaled(64);
  const Measurement r =
      measure(workloads::sec21_read_loop(20000), m);
  EXPECT_GT(r.profile.flops, 0u);
  // Streaming read of 160 KB through 64 KB of L2: memory-bound.
  EXPECT_EQ(r.time.binding_resource, "Mem-L2");
  EXPECT_EQ(r.balance.bytes_per_flop.size(), 3u);
  const std::string s = summarize(r);
  EXPECT_NE(s.find("Mem-L2"), std::string::npos);
}

TEST(Measure, WriteLoopVsReadLoopParity) {
  // The Section 2.1 observation as a model property: the RW loop consumes
  // ~2x the memory traffic and so ~2x the predicted time of the R loop.
  const machine::MachineModel m = machine::origin2000_r10k().scaled(16);
  const auto rw = measure(workloads::sec21_write_loop(600000), m);
  const auto ro = measure(workloads::sec21_read_loop(600000), m);
  const double traffic_ratio =
      static_cast<double>(rw.profile.memory_bytes()) /
      static_cast<double>(ro.profile.memory_bytes());
  EXPECT_NEAR(traffic_ratio, 2.0, 0.1);
  EXPECT_NEAR(rw.time.total_s / ro.time.total_s, 2.0, 0.2);
}

}  // namespace
}  // namespace bwc::model
