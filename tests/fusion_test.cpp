#include <gtest/gtest.h>

#include <algorithm>

#include "bwc/fusion/fusion_graph.h"
#include "bwc/fusion/solvers.h"
#include "bwc/ir/dsl.h"
#include "bwc/support/error.h"
#include "bwc/support/prng.h"
#include "bwc/workloads/paper_programs.h"

namespace bwc::fusion {
namespace {

using namespace ir::dsl;  // NOLINT
using ir::ArrayId;
using ir::Program;

// -- Fusion graph construction -------------------------------------------------

TEST(FusionGraph, BuildsHyperedgesDepsAndPreventing) {
  Program p("t");
  const ArrayId a = p.add_array("a", {32});
  const ArrayId b = p.add_array("b", {32});
  p.add_scalar("s");
  // L0 writes a; L1 reads a writes b; L2 has incompatible bounds.
  p.append(loop("i", 2, 30, assign(a, {v("i")}, lit(1.0))));
  p.append(loop("i", 2, 30, assign(b, {v("i")}, at(a, v("i")))));
  p.append(loop("i", 1, 31, assign("s", sref("s") + at(b, v("i")))));

  const FusionGraph g = build_fusion_graph(p);
  EXPECT_EQ(g.node_count(), 3);
  EXPECT_EQ(g.sharing.edge_count(), 2);  // arrays a, b
  EXPECT_TRUE(g.deps.has_edge(0, 1));
  EXPECT_TRUE(g.deps.has_edge(1, 2));
  EXPECT_TRUE(g.is_preventing(1, 2));  // bounds mismatch
  EXPECT_FALSE(g.is_preventing(0, 1));
}

TEST(FusionGraph, InterleavedScalarResetPinsLoops) {
  // loop (sum+=) ; sum = 0 ; loop (sum+=): fusing the loops across the
  // reset would be wrong.
  Program p("t");
  const ArrayId a = p.add_array("a", {16});
  p.add_scalar("sum");
  p.append(loop("i", 1, 16, assign("sum", sref("sum") + at(a, v("i")))));
  p.append(assign("sum", lit(0.0)));
  p.append(loop("i", 1, 16, assign("sum", sref("sum") + at(a, v("i")))));
  const FusionGraph g = build_fusion_graph(p);
  EXPECT_TRUE(g.is_preventing(0, 1));
  EXPECT_TRUE(g.deps.has_edge(0, 1));
}

TEST(FusionGraph, HarmlessInterleavedStatementDoesNotPin) {
  Program p("t");
  const ArrayId a = p.add_array("a", {16});
  p.add_scalar("sum");
  p.add_scalar("other");
  p.append(loop("i", 1, 16, assign("sum", sref("sum") + at(a, v("i")))));
  p.append(assign("other", lit(0.0)));
  p.append(loop("i", 1, 16, assign("sum", sref("sum") + at(a, v("i")))));
  const FusionGraph g = build_fusion_graph(p);
  EXPECT_FALSE(g.is_preventing(0, 1));
}

// -- Plan validity / normalization ------------------------------------------------

TEST(FusionPlan, ValidityChecksPreventingAndCycles) {
  const FusionGraph g = graph_from_spec(
      3, {{0, 1}, {1, 2}}, /*deps=*/{{0, 1}, {1, 2}},
      /*preventing=*/{{0, 2}});
  std::string why;
  EXPECT_TRUE(plan_is_valid(g, {0, 1, 2}, &why));
  EXPECT_TRUE(plan_is_valid(g, {0, 0, 1}, &why));
  EXPECT_FALSE(plan_is_valid(g, {0, 1, 0}, &why));  // preventing pair
  EXPECT_NE(why.find("fusion-preventing"), std::string::npos);
}

TEST(FusionPlan, CyclicContractionRejected) {
  // 0 -> 1 -> 2 with partition {0,2},{1} creates a partition cycle.
  const FusionGraph g =
      graph_from_spec(3, {{0, 1, 2}}, {{0, 1}, {1, 2}}, {});
  std::string why;
  EXPECT_FALSE(plan_is_valid(g, {0, 1, 0}, &why));
  EXPECT_NE(why.find("cyclic"), std::string::npos);
}

TEST(FusionPlan, NormalizeOrderRespectsDependences) {
  const FusionGraph g = graph_from_spec(3, {}, {{1, 2}}, {});
  // Partition ids given out of order: {2} must still come after {1}.
  const auto norm = normalize_order(g, {5, 9, 3});
  EXPECT_LT(norm[1], norm[2]);
}

TEST(FusionPlan, FinishPlanComputesCosts) {
  const FusionGraph g = graph_from_spec(
      2, {{0, 1}, {0}}, {}, {}, /*bytes=*/{100, 50});
  const FusionPlan fused = finish_plan(g, {0, 0}, "test");
  EXPECT_EQ(fused.cost, 2);          // both arrays once
  EXPECT_EQ(fused.bytes_cost, 150);  // 100 + 50
  const FusionPlan split = finish_plan(g, {0, 1}, "test");
  EXPECT_EQ(split.cost, 3);
  EXPECT_EQ(split.bytes_cost, 250);
}

// -- The paper's Figure 4 -----------------------------------------------------------

TEST(Figure4, NoFusionCosts20) {
  const FusionGraph g = workloads::fig4_graph();
  EXPECT_EQ(no_fusion(g).cost, workloads::kFig4NoFusionCost);
}

TEST(Figure4, BandwidthMinimalCosts7) {
  const FusionGraph g = workloads::fig4_graph();
  const FusionPlan plan = exact_enumeration(g);
  EXPECT_EQ(plan.cost, workloads::kFig4BandwidthMinimalCost);
  // The optimum leaves loop 5 (node 4) alone and fuses the rest.
  const auto groups = plan.groups();
  ASSERT_EQ(groups.size(), 2u);
  const auto& first = groups[0];
  EXPECT_EQ(first, (std::vector<int>{4}));
}

TEST(Figure4, TwoPartitionSolverMatchesExact) {
  const FusionGraph g = workloads::fig4_graph();
  const auto plan = exact_two_partition(g);
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->cost, workloads::kFig4BandwidthMinimalCost);
}

TEST(Figure4, EdgeWeightedBaselineCosts8) {
  const FusionGraph g = workloads::fig4_graph();
  const FusionPlan plan = edge_weighted_baseline(g);
  EXPECT_EQ(plan.cost, workloads::kFig4EdgeWeightedCost);
  // Their optimum fuses loops 1-5 and leaves loop 6 alone.
  const auto groups = plan.groups();
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[1], (std::vector<int>{5}));
}

TEST(Figure4, HeuristicsAreValidAndBounded) {
  const FusionGraph g = workloads::fig4_graph();
  for (const FusionPlan& plan :
       {greedy_fusion(g), recursive_bisection(g), best_fusion(g)}) {
    EXPECT_TRUE(plan_is_valid(g, plan.assignment));
    EXPECT_GE(plan.cost, workloads::kFig4BandwidthMinimalCost);
    EXPECT_LE(plan.cost, workloads::kFig4NoFusionCost);
  }
  EXPECT_EQ(best_fusion(g).cost, workloads::kFig4BandwidthMinimalCost);
}

// -- Solver properties on random graphs ----------------------------------------------

FusionGraph random_spec(Prng& rng, int loops, int arrays) {
  std::vector<std::vector<int>> pins(static_cast<std::size_t>(arrays));
  for (auto& p : pins) {
    for (int l = 0; l < loops; ++l) {
      if (rng.chance(0.45)) p.push_back(l);
    }
    if (p.empty()) p.push_back(static_cast<int>(rng.uniform(
        static_cast<std::uint64_t>(loops))));
  }
  std::vector<std::pair<int, int>> deps, prevent;
  for (int i = 0; i < loops; ++i) {
    for (int j = i + 1; j < loops; ++j) {
      if (rng.chance(0.2)) deps.emplace_back(i, j);
      if (rng.chance(0.15)) prevent.emplace_back(i, j);
    }
  }
  return graph_from_spec(loops, pins, deps, prevent);
}

TEST(Solvers, HeuristicsNeverBeatExactAndAlwaysValid) {
  Prng rng(77);
  for (int trial = 0; trial < 30; ++trial) {
    const FusionGraph g = random_spec(rng, 6, 5);
    const FusionPlan exact = exact_enumeration(g);
    for (const FusionPlan& plan :
         {greedy_fusion(g), recursive_bisection(g),
          edge_weighted_baseline(g)}) {
      EXPECT_TRUE(plan_is_valid(g, plan.assignment)) << plan.solver;
      EXPECT_GE(plan.cost, exact.cost) << plan.solver << " trial " << trial;
    }
    EXPECT_LE(exact.cost, no_fusion(g).cost);
  }
}

TEST(Solvers, TwoPartitionExactOnSingleConstraintGraphs) {
  Prng rng(31337);
  int applicable = 0;
  for (int trial = 0; trial < 40; ++trial) {
    std::vector<std::vector<int>> pins;
    const int loops = 6;
    for (int a = 0; a < 6; ++a) {
      std::vector<int> p;
      for (int l = 0; l < loops; ++l)
        if (rng.chance(0.5)) p.push_back(l);
      if (p.empty()) p.push_back(0);
      pins.push_back(p);
    }
    // Exactly one preventing pair, no dependences (the paper's restricted
    // two-partitioning form).
    const FusionGraph g = graph_from_spec(loops, pins, {}, {{0, 5}});
    const auto two = exact_two_partition(g);
    ASSERT_TRUE(two.has_value());
    ++applicable;
    const FusionPlan exact = exact_enumeration(g);
    EXPECT_EQ(two->cost, exact.cost) << "trial " << trial;
  }
  EXPECT_EQ(applicable, 40);
}

TEST(Solvers, TwoPartitionRespectsDependences) {
  // s=0, t=3; dependence 2 -> 1 forces their order across the cut.
  const FusionGraph g = graph_from_spec(
      4, {{0, 1}, {1, 2}, {2, 3}, {0, 3}}, {{2, 3}}, {{0, 3}});
  const auto plan = exact_two_partition(g);
  ASSERT_TRUE(plan.has_value());
  EXPECT_TRUE(plan_is_valid(g, plan->assignment));
  EXPECT_LE(plan->assignment[2], plan->assignment[3]);
}

TEST(Solvers, ExactThrowsBeyondLimit) {
  Prng rng(1);
  const FusionGraph g = random_spec(rng, 14, 3);
  EXPECT_THROW(exact_enumeration(g, 12), Error);
}

TEST(Solvers, CapacityErrorCarriesStructuredFields) {
  Prng rng(1);
  const FusionGraph g = random_spec(rng, 14, 3);
  try {
    exact_enumeration(g, 12);
    FAIL() << "expected FusionCapacityError";
  } catch (const FusionCapacityError& e) {
    EXPECT_EQ(e.loop_count(), 14);
    EXPECT_EQ(e.max_nodes(), 12);
    EXPECT_EQ(e.solver(), "exact");
    EXPECT_EQ(e.suggested_solver(), "bisection");
    const std::string what = e.what();
    EXPECT_NE(what.find("14 loops"), std::string::npos) << what;
    EXPECT_NE(what.find("bisection"), std::string::npos) << what;
  }
  // The weighted variant reports its own solver name; best_fusion never
  // throws -- it applies the suggested fallback automatically.
  try {
    exact_enumeration_weighted(g, 12);
    FAIL() << "expected FusionCapacityError";
  } catch (const FusionCapacityError& e) {
    EXPECT_EQ(e.solver(), "exact-weighted");
  }
  EXPECT_NO_THROW(best_fusion(g));
}

TEST(Solvers, NoFusionOnEmptyGraph) {
  const FusionGraph g = graph_from_spec(0, {}, {}, {});
  EXPECT_EQ(no_fusion(g).num_partitions, 0);
  EXPECT_EQ(greedy_fusion(g).num_partitions, 0);
}

TEST(Solvers, GreedyMergesObviousSharing) {
  // Two loops over the same array, no constraints: one partition.
  const FusionGraph g = graph_from_spec(2, {{0, 1}}, {}, {});
  const FusionPlan plan = greedy_fusion(g);
  EXPECT_EQ(plan.num_partitions, 1);
  EXPECT_EQ(plan.cost, 1);
}

TEST(Solvers, PreventingPairAlwaysSeparated) {
  Prng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    const FusionGraph g = random_spec(rng, 7, 4);
    for (const FusionPlan& plan :
         {greedy_fusion(g), recursive_bisection(g), best_fusion(g)}) {
      for (const auto& [i, j] : g.preventing) {
        EXPECT_NE(plan.assignment[static_cast<std::size_t>(i)],
                  plan.assignment[static_cast<std::size_t>(j)])
            << plan.solver;
      }
    }
  }
}

}  // namespace
}  // namespace bwc::fusion
