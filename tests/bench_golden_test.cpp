// Golden-file regression tests for the benchmark CSV series.
//
// The figure binaries (bench/) emit CSVs that plotting scripts and
// EXPERIMENTS.md consume; this test recomputes the same rows through the
// shared bench/fig_data.h helpers and diffs them against the files
// checked into tests/golden/. Schema (header, row count, string cells)
// must match exactly; numeric cells are compared under a small tolerance
// so a last-ulp FP difference across compilers does not trip the gate
// while a real model or simulator drift does. Monotonicity and the
// optimized-vs-original scaling gate are asserted independently of the
// golden data, so they hold even when goldens are regenerated.
//
// To regenerate after an intentional change:
//   build/bench/fig3_kernel_bandwidth && build/bench/fig_multicore_scaling
//   cp fig3_kernel_bandwidth.csv fig_multicore_scaling.csv tests/golden/
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "fig_data.h"

namespace bwc {
namespace {

using Table = std::vector<std::vector<std::string>>;

/// Minimal CSV reader for our own output (no quoted cells in these
/// series; csv_escape only quotes on comma/quote/newline, and kernel,
/// workload, variant and binding names contain none).
Table read_csv(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open golden file " << path;
  Table table;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::vector<std::string> cells;
    std::stringstream ss(line);
    std::string cell;
    while (std::getline(ss, cell, ',')) cells.push_back(cell);
    table.push_back(std::move(cells));
  }
  return table;
}

Table parse_csv_text(const std::string& text) {
  Table table;
  std::stringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::vector<std::string> cells;
    std::stringstream ss(line);
    std::string cell;
    while (std::getline(ss, cell, ',')) cells.push_back(cell);
    table.push_back(std::move(cells));
  }
  return table;
}

std::string golden_path(const std::string& name) {
  return std::string(BWC_TEST_GOLDEN_DIR) + "/" + name;
}

bool is_numeric(const std::string& cell) {
  if (cell.empty()) return false;
  char* end = nullptr;
  std::strtod(cell.c_str(), &end);
  return end != nullptr && *end == '\0';
}

/// Cell-for-cell comparison: string cells exact, numeric cells within
/// max(abs_tol, rel_tol * |golden|).
void expect_matches_golden(const Table& got, const Table& golden,
                           double abs_tol, double rel_tol) {
  ASSERT_FALSE(golden.empty());
  ASSERT_FALSE(got.empty());
  EXPECT_EQ(got[0], golden[0]) << "CSV header (schema) drifted";
  ASSERT_EQ(got.size(), golden.size()) << "row count drifted";
  for (std::size_t r = 1; r < golden.size(); ++r) {
    ASSERT_EQ(got[r].size(), golden[r].size()) << "row " << r;
    for (std::size_t c = 0; c < golden[r].size(); ++c) {
      SCOPED_TRACE("row " + std::to_string(r) + " col " + golden[0][c]);
      if (is_numeric(golden[r][c])) {
        const double want = std::strtod(golden[r][c].c_str(), nullptr);
        const double have = std::strtod(got[r][c].c_str(), nullptr);
        EXPECT_NEAR(have, want,
                    std::max(abs_tol, rel_tol * std::abs(want)));
      } else {
        EXPECT_EQ(got[r][c], golden[r][c]);
      }
    }
  }
}

TEST(BenchGolden, Fig3KernelBandwidth) {
  const Table golden = read_csv(golden_path("fig3_kernel_bandwidth.csv"));
  const Table got = parse_csv_text(bench::fig3_csv(bench::fig3_rows()).str());
  // 2-decimal MB/s cells: one rounding step of absolute slack, 0.1% rel.
  expect_matches_golden(got, golden, /*abs_tol=*/0.011, /*rel_tol=*/1e-3);

  // Schema/sanity independent of golden content: 13 kernels, positive
  // bandwidth everywhere, and no kernel exceeds either machine's bus.
  ASSERT_EQ(got.size(), 14u);  // header + 13 kernels
  for (std::size_t r = 1; r < got.size(); ++r) {
    const double o2k = std::strtod(got[r][1].c_str(), nullptr);
    const double ex = std::strtod(got[r][2].c_str(), nullptr);
    EXPECT_GT(o2k, 0.0) << got[r][0];
    EXPECT_GT(ex, 0.0) << got[r][0];
  }
}

TEST(BenchGolden, MulticoreScaling) {
  const Table golden = read_csv(golden_path("fig_multicore_scaling.csv"));
  const std::vector<bench::ScalingRow> rows =
      bench::multicore_scaling_rows();
  const Table got = parse_csv_text(bench::multicore_scaling_csv(rows).str());
  expect_matches_golden(got, golden, /*abs_tol=*/1e-3, /*rel_tol=*/1e-3);

  // Monotonicity per (workload, variant) group, independent of goldens:
  // times never increase with cores, speedups never decrease, one core
  // means speedup exactly 1, and past the predicted saturation point the
  // binding resource is a shared boundary (time is flat).
  struct Group {
    std::vector<bench::ScalingRow> rows;
  };
  std::map<std::string, Group> groups;
  for (const auto& r : rows)
    groups[r.workload + "/" + r.variant].rows.push_back(r);
  ASSERT_EQ(groups.size(), 4u);  // 2 workloads x {original, optimized}
  for (const auto& [name, g] : groups) {
    SCOPED_TRACE(name);
    ASSERT_EQ(g.rows.size(),
              static_cast<std::size_t>(bench::kScalingMaxCores));
    EXPECT_EQ(g.rows[0].cores, 1);
    EXPECT_DOUBLE_EQ(g.rows[0].speedup, 1.0);
    EXPECT_GE(g.rows[0].saturation_cores, 1);
    for (std::size_t i = 1; i < g.rows.size(); ++i) {
      EXPECT_EQ(g.rows[i].cores, g.rows[i - 1].cores + 1);
      EXPECT_LE(g.rows[i].predicted_ms, g.rows[i - 1].predicted_ms);
      EXPECT_GE(g.rows[i].speedup, g.rows[i - 1].speedup);
      EXPECT_EQ(g.rows[i].saturation_cores, g.rows[0].saturation_cores);
      if (g.rows[i].cores > g.rows[0].saturation_cores) {
        EXPECT_DOUBLE_EQ(g.rows[i].predicted_ms,
                         g.rows[i - 1].predicted_ms)
            << "time must be flat past bus saturation";
      }
    }
  }

  // The CI-gated floor (also enforced by the fig_multicore_scaling
  // binary's exit code): optimization delays the saturation knee or
  // raises the plateau throughput on every workload.
  for (const std::string workload : {"fig7", "sec21"}) {
    const Group& orig = groups.at(workload + "/original");
    const Group& opt = groups.at(workload + "/optimized");
    const bool later_knee =
        opt.rows[0].saturation_cores > orig.rows[0].saturation_cores;
    const bool higher_plateau =
        opt.rows.back().predicted_ms < orig.rows.back().predicted_ms;
    EXPECT_TRUE(later_knee || higher_plateau) << workload;
  }
}

}  // namespace
}  // namespace bwc
