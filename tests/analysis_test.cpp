#include <gtest/gtest.h>

#include "bwc/analysis/access_summary.h"
#include "bwc/analysis/dependence.h"
#include "bwc/analysis/liveness.h"
#include "bwc/ir/dsl.h"
#include "bwc/support/error.h"

namespace bwc::analysis {
namespace {

using namespace ir::dsl;  // NOLINT
using ir::ArrayId;
using ir::CmpOp;
using ir::Program;

// -- Access summaries -----------------------------------------------------------

TEST(AccessSummary, CollectsArraysScalarsAndNest) {
  Program p("t");
  const ArrayId a = p.add_array("a", {8, 8});
  const ArrayId b = p.add_array("b", {8, 8});
  p.add_scalar("sum");
  p.append(loop("j", 2, 8,
                loop("i", 1, 8,
                     assign(b, {v("i"), v("j")},
                            at(a, v("i"), v("j", -1)) + at(a, v("i"), v("j"))),
                     assign("sum", sref("sum") + at(b, v("i"), v("j"))))));
  const LoopSummary s = summarize_loop(p, 0);
  EXPECT_EQ(s.depth(), 2);
  EXPECT_EQ(s.loop_vars, (std::vector<std::string>{"j", "i"}));
  EXPECT_EQ(s.lowers, (std::vector<std::int64_t>{2, 1}));
  EXPECT_EQ(s.trip_count(), 7 * 8);
  ASSERT_TRUE(s.arrays.count(a));
  EXPECT_EQ(s.arrays.at(a).reads.size(), 2u);
  EXPECT_FALSE(s.arrays.at(a).has_writes());
  EXPECT_EQ(s.arrays.at(b).writes.size(), 1u);
  EXPECT_EQ(s.arrays.at(b).reads.size(), 1u);
  ASSERT_TRUE(s.scalars.count("sum"));
  EXPECT_TRUE(s.scalars.at("sum").written);
  EXPECT_TRUE(s.scalars.at("sum").reduction_only);
}

TEST(AccessSummary, NonReductionScalarWrite) {
  Program p("t");
  p.add_scalar("x");
  const ArrayId a = p.add_array("a", {8});
  p.append(loop("i", 1, 8, assign("x", at(a, v("i")) * lit(2.0))));
  const LoopSummary s = summarize_loop(p, 0);
  EXPECT_FALSE(s.scalars.at("x").reduction_only);
}

TEST(AccessSummary, ReductionSelfReadNotCounted) {
  Program p("t");
  p.add_scalar("sum");
  const ArrayId a = p.add_array("a", {8});
  p.append(loop("i", 1, 8, assign("sum", sref("sum") + at(a, v("i")))));
  const LoopSummary s = summarize_loop(p, 0);
  EXPECT_TRUE(s.scalars.at("sum").reduction_only);
  EXPECT_FALSE(s.scalars.at("sum").read);  // only the reduction self-read
}

TEST(AccessSummary, GuardsDetected) {
  Program p("t");
  p.add_scalar("x");
  p.append(loop("i", 1, 8,
                when(CmpOp::kEq, v("i"), k(8), assign("x", lit(1.0)))));
  EXPECT_TRUE(summarize_loop(p, 0).has_guards);
}

TEST(AccessSummary, StatementSummaryForNonLoop) {
  Program p("t");
  p.add_scalar("x");
  p.append(assign("x", lit(0.0)));
  const LoopSummary s = summarize_statement(p, 0);
  EXPECT_EQ(s.depth(), 0);
  EXPECT_TRUE(s.scalars.at("x").written);
}

// -- Dependence / fusability -------------------------------------------------------

struct TwoLoops {
  Program p{"t"};
  ArrayId a = -1, b = -1;
};

/// L1: a[i+w_off] = b[i]; L2: c reads a[i+r_off].
PairAnalysis offset_pair(std::int64_t w_off, std::int64_t r_off) {
  Program p("t");
  const ArrayId a = p.add_array("a", {64});
  const ArrayId b = p.add_array("b", {64});
  p.add_scalar("s");
  p.append(loop("i", 2, 60, assign(a, {v("i", w_off)}, at(b, v("i")))));
  p.append(loop("i", 2, 60, assign("s", sref("s") + at(a, v("i", r_off)))));
  const auto s = summarize_program(p);
  return analyze_pair(s[0], s[1]);
}

TEST(Dependence, SameIndexFlowIsFusable) {
  const PairAnalysis pa = offset_pair(0, 0);
  EXPECT_TRUE(pa.dependent);
  EXPECT_FALSE(pa.fusion_preventing);
  EXPECT_EQ(pa.compat, FusionCompat::kIdentical);
}

TEST(Dependence, ReadOfEarlierElementIsFusable) {
  // Consumer reads a[i-1]: the value was produced one iteration earlier.
  EXPECT_FALSE(offset_pair(0, -1).fusion_preventing);
}

TEST(Dependence, ReadOfLaterElementPreventsFusion) {
  // Consumer reads a[i+1]: not yet produced at fused iteration i.
  EXPECT_TRUE(offset_pair(0, 1).fusion_preventing);
}

TEST(Dependence, WriterOffsetReversesTheRule) {
  EXPECT_TRUE(offset_pair(-1, 0).fusion_preventing);   // write a[i-1], read a[i]
  EXPECT_FALSE(offset_pair(1, 0).fusion_preventing);   // write a[i+1], read a[i]
}

TEST(Dependence, AntiDependenceSymmetric) {
  // L1 reads a[i+off]; L2 writes a[i].
  const auto build = [](std::int64_t r_off) {
    Program p("t");
    const ArrayId a = p.add_array("a", {64});
    p.add_scalar("s");
    p.append(loop("i", 2, 60, assign("s", sref("s") + at(a, v("i", r_off)))));
    p.append(loop("i", 2, 60, assign(a, {v("i")}, lit(1.0))));
    const auto s = summarize_program(p);
    return analyze_pair(s[0], s[1]);
  };
  // Reading a[i-1] then writing a[i]: fused, the write at iteration i-1
  // clobbers the value the read at iteration i needs -> preventing.
  EXPECT_TRUE(build(-1).fusion_preventing);
  // Reading a[i+1] then writing a[i]: element e is written at iteration e,
  // after the read at iteration e-1 -> safe.
  EXPECT_FALSE(build(1).fusion_preventing);
}

TEST(Dependence, DisjointArraysShareNothing) {
  Program p("t");
  const ArrayId a = p.add_array("a", {16});
  const ArrayId b = p.add_array("b", {16});
  p.append(loop("i", 1, 16, assign(a, {v("i")}, lit(1.0))));
  p.append(loop("i", 1, 16, assign(b, {v("i")}, lit(2.0))));
  const auto s = summarize_program(p);
  const PairAnalysis pa = analyze_pair(s[0], s[1]);
  EXPECT_TRUE(pa.shared_arrays.empty());
  EXPECT_FALSE(pa.dependent);
  EXPECT_FALSE(pa.fusion_preventing);
}

TEST(Dependence, MismatchedBoundsIncompatible) {
  Program p("t");
  const ArrayId a = p.add_array("a", {64});
  p.append(loop("i", 1, 16, assign(a, {v("i")}, lit(1.0))));
  p.append(loop("i", 1, 32, assign(a, {v("i")}, lit(2.0))));
  const auto s = summarize_program(p);
  // Depth-1 loops have no outer-union path; bounds differ -> incompatible.
  EXPECT_TRUE(analyze_pair(s[0], s[1]).fusion_preventing);
}

TEST(Dependence, OuterUnionForTwoDeepNests) {
  Program p("t");
  const ArrayId a = p.add_array("a", {32, 32});
  p.append(loop("j", 1, 32,
                loop("i", 1, 32, assign(a, {v("i"), v("j")}, lit(1.0)))));
  p.append(loop("j", 2, 32,
                loop("i", 1, 32,
                     assign(a, {v("i"), v("j")},
                            at(a, v("i"), v("j", -1)) + lit(1.0)))));
  const auto s = summarize_program(p);
  const PairAnalysis pa = analyze_pair(s[0], s[1]);
  EXPECT_EQ(pa.compat, FusionCompat::kOuterUnion);
  EXPECT_FALSE(pa.fusion_preventing);
}

TEST(Dependence, PromoteShallowBoundaryLoop) {
  // The Figure 6 pattern: a depth-1 fix-up over the last column fuses at
  // j == N.
  Program p("t");
  const ArrayId b = p.add_array("b", {16, 16});
  p.append(loop("j", 2, 16,
                loop("i", 1, 16, assign(b, {v("i"), v("j")}, lit(1.0)))));
  p.append(loop("i", 1, 16,
                assign(b, {v("i"), k(16)},
                       at(b, v("i"), k(16)) + lit(1.0))));
  const auto s = summarize_program(p);
  const PairAnalysis pa = analyze_pair(s[0], s[1]);
  EXPECT_EQ(pa.compat, FusionCompat::kPromoteB);
  EXPECT_EQ(pa.promote_value, 16);
}

TEST(Dependence, ScalarResetPreventsFusion) {
  Program p("t");
  p.add_scalar("s");
  const ArrayId a = p.add_array("a", {16});
  p.append(loop("i", 1, 16, assign("s", sref("s") + at(a, v("i")))));
  p.append(loop("i", 1, 16, assign("s", at(a, v("i")) * lit(2.0))));
  const auto s = summarize_program(p);
  // Second loop overwrites s non-reductively: interleaving illegal.
  EXPECT_TRUE(analyze_pair(s[0], s[1]).fusion_preventing);
}

TEST(Dependence, MatchingReductionsFuse) {
  Program p("t");
  p.add_scalar("s");
  const ArrayId a = p.add_array("a", {16});
  const ArrayId b = p.add_array("b", {16});
  p.append(loop("i", 1, 16, assign("s", sref("s") + at(a, v("i")))));
  p.append(loop("i", 1, 16, assign("s", sref("s") + at(b, v("i")))));
  const auto s = summarize_program(p);
  const PairAnalysis pa = analyze_pair(s[0], s[1]);
  EXPECT_TRUE(pa.dependent);
  EXPECT_FALSE(pa.fusion_preventing);
}

TEST(Dependence, WriteWriteSameIndexFusable) {
  Program p("t");
  const ArrayId a = p.add_array("a", {16});
  p.append(loop("i", 1, 16, assign(a, {v("i")}, lit(1.0))));
  p.append(loop("i", 1, 16, assign(a, {v("i")}, lit(2.0))));
  const auto s = summarize_program(p);
  EXPECT_FALSE(analyze_pair(s[0], s[1]).fusion_preventing);
}

TEST(Dependence, LoopInvariantArrayWritePreventing) {
  // L1 writes a[i] for all i under a j loop where the value depends on j;
  // conservative analysis must prevent fusion with a later reader when the
  // subscript ignores the outer var.
  Program p("t");
  const ArrayId a = p.add_array("a", {16, 16});
  const ArrayId c = p.add_array("c", {16, 16});
  p.add_scalar("s");
  p.append(loop("j", 1, 16,
                loop("i", 1, 16, assign(a, {v("i"), k(1)}, lvar("j")))));
  p.append(loop("j", 1, 16,
                loop("i", 1, 16,
                     assign(c, {v("i"), v("j")}, at(a, v("i"), k(1))))));
  const auto s = summarize_program(p);
  EXPECT_TRUE(analyze_pair(s[0], s[1]).fusion_preventing);
}

// -- Liveness -------------------------------------------------------------------

TEST(Liveness, TracksReadersWritersOutputs) {
  Program p("t");
  const ArrayId res = p.add_array("res", {8});
  const ArrayId data = p.add_array("data", {8});
  p.add_scalar("sum");
  p.mark_output_scalar("sum");
  p.append(loop("i", 1, 8,
                assign(res, {v("i")}, at(res, v("i")) + at(data, v("i")))));
  p.append(assign("sum", lit(0.0)));
  p.append(loop("i", 1, 8, assign("sum", sref("sum") + at(res, v("i")))));

  const auto live = analyze_liveness(p);
  const ArrayLiveness& lr = live[static_cast<std::size_t>(res)];
  EXPECT_EQ(lr.writing_stmts, (std::vector<int>{0}));
  EXPECT_EQ(lr.reading_stmts, (std::vector<int>{0, 2}));
  EXPECT_FALSE(lr.is_output);
  EXPECT_FALSE(lr.dead_after(0));
  EXPECT_TRUE(lr.dead_after(2));
  EXPECT_FALSE(lr.stores_unobserved());  // read in stmt 2 after write in 0

  const ArrayLiveness& ld = live[static_cast<std::size_t>(data)];
  EXPECT_TRUE(ld.writing_stmts.empty());
  EXPECT_EQ(ld.first_access(), 0);
}

TEST(Liveness, OutputArrayNeverDead) {
  Program p("t");
  const ArrayId a = p.add_array("a", {8});
  p.mark_output_array(a);
  p.append(loop("i", 1, 8, assign(a, {v("i")}, lit(1.0))));
  const auto live = analyze_liveness(p);
  EXPECT_FALSE(live[0].dead_after(0));
  EXPECT_FALSE(live[0].stores_unobserved());
}

TEST(Liveness, StoresUnobservedWhenReadsCoincideWithLastWrite) {
  // Fused fig7 shape: one loop writes res and reads it; no later reads.
  Program p("t");
  const ArrayId res = p.add_array("res", {8});
  p.add_scalar("sum");
  p.mark_output_scalar("sum");
  p.append(loop("i", 1, 8,
                assign(res, {v("i")}, at(res, v("i")) + lit(1.0)),
                assign("sum", sref("sum") + at(res, v("i")))));
  const auto live = analyze_liveness(p);
  EXPECT_TRUE(live[0].stores_unobserved());
}

}  // namespace
}  // namespace bwc::analysis
