// Differential test holding the compiled engine (lowering + bytecode VM +
// coalesced cache access) bit-identical to the reference interpreter:
// checksums, flop/load/store counts, final scalar values, array bases and
// per-boundary traffic bytes must all match on every program, with
// coalescing both on and off.
#include <gtest/gtest.h>

#include <vector>

#include "bwc/ir/dsl.h"
#include "bwc/machine/machine_model.h"
#include "bwc/runtime/compiled.h"
#include "bwc/runtime/interpreter.h"
#include "bwc/support/error.h"
#include "bwc/support/prng.h"
#include "bwc/workloads/extra_programs.h"
#include "bwc/workloads/paper_programs.h"
#include "bwc/workloads/random_programs.h"

namespace bwc::runtime {
namespace {

using namespace ir::dsl;  // NOLINT
using ir::ArrayId;
using ir::CmpOp;
using ir::Program;

ExecResult run_reference(const Program& p, memsim::MemoryHierarchy* h) {
  ExecOptions opts;
  opts.hierarchy = h;
  return execute(p, opts);
}

ExecResult run_compiled(const Program& p, memsim::MemoryHierarchy* h,
                        bool coalesce) {
  ExecOptions opts;
  opts.hierarchy = h;
  opts.coalesce_accesses = coalesce;
  return execute_compiled(p, opts);
}

void expect_identical(const ExecResult& ref, const ExecResult& got,
                      const std::string& label) {
  SCOPED_TRACE(label);
  // Bitwise-equal checksums: both engines evaluate the same floating-point
  // operations in the same order.
  EXPECT_EQ(ref.checksum, got.checksum);
  EXPECT_EQ(ref.flops, got.flops);
  EXPECT_EQ(ref.loads, got.loads);
  EXPECT_EQ(ref.stores, got.stores);
  EXPECT_EQ(ref.scalars, got.scalars);
  EXPECT_EQ(ref.array_bases, got.array_bases);
  EXPECT_EQ(ref.profile.flops, got.profile.flops);
  ASSERT_EQ(ref.profile.boundaries.size(), got.profile.boundaries.size());
  for (std::size_t b = 0; b < ref.profile.boundaries.size(); ++b) {
    SCOPED_TRACE("boundary " + ref.profile.boundaries[b].name);
    EXPECT_EQ(ref.profile.boundaries[b].name, got.profile.boundaries[b].name);
    EXPECT_EQ(ref.profile.boundaries[b].bytes_toward_cpu,
              got.profile.boundaries[b].bytes_toward_cpu);
    EXPECT_EQ(ref.profile.boundaries[b].bytes_from_cpu,
              got.profile.boundaries[b].bytes_from_cpu);
  }
}

/// Run `p` through the reference interpreter and the compiled engine
/// (coalescing on and off) on the given machine's hierarchy, and require
/// every observable to match. Also checks the hierarchy's own access
/// counters survive coalescing unchanged.
void expect_engines_agree(const Program& p,
                          const machine::MachineModel& machine) {
  memsim::MemoryHierarchy href = machine.make_hierarchy();
  const ExecResult ref = run_reference(p, &href);

  memsim::MemoryHierarchy hraw = machine.make_hierarchy();
  const ExecResult raw = run_compiled(p, &hraw, /*coalesce=*/false);
  expect_identical(ref, raw, p.name() + " [compiled, per-element]");

  memsim::MemoryHierarchy hco = machine.make_hierarchy();
  const ExecResult coalesced = run_compiled(p, &hco, /*coalesce=*/true);
  expect_identical(ref, coalesced, p.name() + " [compiled, coalesced]");
  EXPECT_EQ(href.load_count(), hco.load_count()) << p.name();
  EXPECT_EQ(href.store_count(), hco.store_count()) << p.name();
}

void expect_engines_agree(const Program& p) {
  // Caches scaled down so modest arrays still generate capacity misses,
  // evictions and writebacks at every level.
  expect_engines_agree(p, machine::origin2000_r10k().scaled(16));
}

TEST(CompiledEngine, PaperPrograms) {
  expect_engines_agree(workloads::sec21_write_loop(4096));
  expect_engines_agree(workloads::sec21_read_loop(4096));
  expect_engines_agree(workloads::sec21_both_loops(4096));
  expect_engines_agree(workloads::fig6_original(48));
  expect_engines_agree(workloads::fig7_original(4096));
}

TEST(CompiledEngine, ExtraPrograms) {
  expect_engines_agree(workloads::jacobi_chain(512, 4));
  expect_engines_agree(workloads::adi_like(48));
  expect_engines_agree(workloads::blur_sharpen(1024));
  expect_engines_agree(workloads::reduction_cascade(512, 5));
}

TEST(CompiledEngine, AllMachinePresets) {
  // Exercise write-through/no-allocate variants, single-level and 3-level
  // hierarchies -- coalescing must stay byte-exact under every policy.
  for (const auto& m : machine::all_presets()) {
    SCOPED_TRACE(m.name);
    expect_engines_agree(workloads::fig6_original(32), m.scaled(16));
    expect_engines_agree(workloads::sec21_both_loops(2048), m.scaled(16));
  }
}

TEST(CompiledEngine, RandomPrograms1D) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    Prng rng(seed);
    expect_engines_agree(workloads::random_program(rng));
  }
}

TEST(CompiledEngine, RandomPrograms2D) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Prng rng(seed);
    expect_engines_agree(workloads::random_program_2d(rng, 16, 3));
  }
}

TEST(CompiledEngine, ControlFlowAndShadowing) {
  Program p("control flow");
  const ArrayId a = p.add_array("a", {16});
  const ArrayId m = p.add_array("m", {4, 4});
  p.add_scalar("x");
  p.add_scalar("sum");
  p.mark_output_scalar("sum");
  p.mark_output_array(m);
  // Guard with else branch, min/max/div, constant subscripts.
  p.append(loop("i", 1, 16,
                if_else(CmpOp::kLe, v("i"), k(8),
                        block(assign(a, {v("i")},
                                     lvar("i") / lit(3.0))),
                        block(assign(a, {v("i")},
                              at(a, v("i", -8)) * lit(2.0))))));
  // 2-D input reads plus loop-variable reuse in sibling loops.
  p.append(loop("j", 1, 4,
                loop("i", 1, 4,
                     assign(m, {v("i"), v("j")},
                            input2(3, v("i"), v("j"), 4, 4)))));
  p.append(assign("x", at(a, k(1)) + at(m, k(2), k(3))));
  // Empty loop body never executes (upper < lower).
  p.append(loop("i", 5, 4, assign("x", lit(-1.0))));
  p.append(assign("sum", lit(0.0)));
  p.append(loop("i", 1, 16, assign("sum", sref("sum") + at(a, v("i")))));
  p.append(assign("sum", sref("sum") + sref("x")));
  expect_engines_agree(p);
}

TEST(CompiledEngine, NoHierarchyStillMatches) {
  const Program p = workloads::fig7_original(512);
  const ExecResult ref = execute(p);
  const ExecResult got = execute_compiled(p);
  EXPECT_EQ(ref.checksum, got.checksum);
  EXPECT_EQ(ref.flops, got.flops);
  EXPECT_EQ(ref.loads, got.loads);
  EXPECT_EQ(ref.stores, got.stores);
  EXPECT_EQ(ref.scalars, got.scalars);
}

TEST(CompiledEngine, ReusableLoweredProgram) {
  const Program p = workloads::fig7_original(256);
  const LoweredProgram lp = lower(p);
  const double first = execute_lowered(lp).checksum;
  const double second = execute_lowered(lp).checksum;
  EXPECT_EQ(first, second);
  EXPECT_EQ(first, execute(p).checksum);
}

TEST(CompiledEngine, LoweringRejectsMalformedPrograms) {
  {
    Program p("unbound loop var");
    p.add_scalar("x");
    p.append(assign("x", lvar("i")));
    EXPECT_THROW(lower(p), Error);
  }
  {
    Program p("undeclared scalar");
    p.add_scalar("x");
    p.append(assign("x", sref("ghost")));
    EXPECT_THROW(lower(p), Error);
  }
}

TEST(CompiledEngine, OutOfBoundsSubscriptThrows) {
  Program p("oob");
  const ArrayId a = p.add_array("a", {4});
  p.add_scalar("x");
  p.append(loop("i", 1, 5, assign("x", at(a, v("i")))));
  EXPECT_THROW(execute_compiled(p), Error);
}

}  // namespace
}  // namespace bwc::runtime
