// Loop interchange tests: legality vectors, the auto heuristic, and the
// locality payoff on the simulator.
#include <gtest/gtest.h>

#include <cmath>

#include "bwc/analysis/dependence.h"
#include "bwc/ir/dsl.h"
#include "bwc/ir/printer.h"
#include "bwc/model/measure.h"
#include "bwc/runtime/interpreter.h"
#include "bwc/support/error.h"
#include "bwc/transform/interchange.h"

namespace bwc::transform {
namespace {

using namespace ir::dsl;  // NOLINT
using ir::ArrayId;
using ir::CmpOp;
using ir::Program;

void expect_preserved(const Program& a, const Program& b) {
  const double ca = runtime::execute(a).checksum;
  const double cb = runtime::execute(b).checksum;
  EXPECT_NEAR(ca, cb, 1e-9 * (std::abs(ca) + 1.0))
      << "interchanged:\n" << ir::to_string(b);
}

/// Row-major traversal of a column-major array: for i (outer), for j.
Program row_major_sum(std::int64_t n) {
  Program p("row major");
  const ArrayId a = p.add_array("a", {n, n});
  p.add_scalar("s");
  p.mark_output_scalar("s");
  p.append(loop("i", 1, n,
                loop("j", 1, n,
                     assign("s", sref("s") + at(a, v("i"), v("j"))))));
  return p;
}

TEST(Interchange, LegalForIndependentIterations) {
  const Program p = row_major_sum(16);
  EXPECT_TRUE(can_interchange(p, 0));
  Program q = p.clone();
  interchange(q, 0);
  EXPECT_EQ(q.top()[0]->loop->var, "j");
  expect_preserved(p, q);
}

TEST(Interchange, ForwardOuterBackwardInnerBlocks) {
  // a[i,j] = f(a[i+1, j-1]): distance vector (+1, -1) -> illegal to swap.
  Program p("t");
  const ArrayId a = p.add_array("a", {16, 16});
  p.mark_output_array(a);
  p.append(loop("j", 2, 15,
                loop("i", 2, 15,
                     assign(a, {v("i"), v("j")},
                            f(at(a, v("i", 1), v("j", -1)), lit(1.0))))));
  EXPECT_FALSE(can_interchange(p, 0));
  Program q = p.clone();
  EXPECT_THROW(interchange(q, 0), Error);
}

TEST(Interchange, SameSignCarriedDependenceAllows) {
  // a[i,j] = f(a[i-1, j-1]): vector (+1, +1) stays lex-positive swapped.
  Program p("t");
  const ArrayId a = p.add_array("a", {16, 16});
  p.mark_output_array(a);
  p.append(loop("j", 2, 15,
                loop("i", 2, 15,
                     assign(a, {v("i"), v("j")},
                            f(at(a, v("i", -1), v("j", -1)), lit(1.0))))));
  EXPECT_TRUE(can_interchange(p, 0));
  Program q = p.clone();
  interchange(q, 0);
  expect_preserved(p, q);
}

TEST(Interchange, InnerOnlyCarriedDependenceAllows) {
  // a[i,j] = f(a[i-1, j]): vector (0, +1) -> (+1, 0) fine.
  Program p("t");
  const ArrayId a = p.add_array("a", {16, 16});
  p.mark_output_array(a);
  p.append(loop("j", 1, 16,
                loop("i", 2, 16,
                     assign(a, {v("i"), v("j")},
                            f(at(a, v("i", -1), v("j")), lit(1.0))))));
  EXPECT_TRUE(can_interchange(p, 0));
  Program q = p.clone();
  interchange(q, 0);
  expect_preserved(p, q);
}

TEST(Interchange, RejectsNonSimpleShapes) {
  Program p("t");
  p.add_scalar("s");
  p.append(assign("s", lit(1.0)));
  p.append(loop("i", 1, 4, assign("s", sref("s") + lit(1.0))));
  EXPECT_FALSE(can_interchange(p, 0));  // not a loop
  EXPECT_FALSE(can_interchange(p, 1));  // depth 1
  EXPECT_FALSE(can_interchange(p, 7));  // out of range
}

TEST(AutoInterchange, FixesRowMajorTraversal) {
  const Program p = row_major_sum(400);
  const InterchangeResult r = auto_interchange(p);
  ASSERT_EQ(r.interchanged.size(), 1u);
  expect_preserved(p, r.program);

  // The payoff appears when one row sweep's line footprint (n lines)
  // exceeds the cache: every strided access then misses. 400 columns x
  // 128 B lines = 51 KB of live lines vs a 16 KB scaled L2.
  const auto machine = machine::origin2000_r10k().scaled(256);
  const auto before = model::measure(p, machine);
  const auto after = model::measure(r.program, machine);
  EXPECT_LT(after.profile.memory_bytes(),
            before.profile.memory_bytes() / 4);
}

TEST(AutoInterchange, LeavesStrideOneNestsAlone) {
  Program p("good");
  const ArrayId a = p.add_array("a", {32, 32});
  p.add_scalar("s");
  p.mark_output_scalar("s");
  p.append(loop("j", 1, 32,
                loop("i", 1, 32,
                     assign("s", sref("s") + at(a, v("i"), v("j"))))));
  EXPECT_TRUE(auto_interchange(p).interchanged.empty());
}

TEST(AutoInterchange, SkipsIllegalCandidates) {
  // Row-major traversal that *also* carries a (+,-) dependence: profitable
  // but illegal; must be left alone.
  Program p("t");
  const ArrayId a = p.add_array("a", {24, 24});
  p.mark_output_array(a);
  p.append(loop("i", 2, 23,
                loop("j", 2, 23,
                     assign(a, {v("i"), v("j")},
                            f(at(a, v("i", -1), v("j", 1)), lit(1.0))))));
  // Distance in (i, j) nest order: source a[i-1, j+1]: vector (+1, -1).
  EXPECT_TRUE(auto_interchange(p).interchanged.empty());
  EXPECT_FALSE(can_interchange(p, 0));
}

}  // namespace
}  // namespace bwc::transform
