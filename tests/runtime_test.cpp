#include <gtest/gtest.h>

#include "bench_common.h"
#include "bwc/ir/dsl.h"
#include "bwc/machine/machine_model.h"
#include "bwc/runtime/interpreter.h"
#include "bwc/runtime/recorder.h"
#include "bwc/support/error.h"

namespace bwc::runtime {
namespace {

using namespace ir::dsl;  // NOLINT
using ir::ArrayId;
using ir::CmpOp;
using ir::Program;

TEST(Interpreter, ScalarAssignAndChecksum) {
  Program p("t");
  p.add_scalar("x");
  p.mark_output_scalar("x");
  p.append(assign("x", lit(2.0) + lit(3.0)));
  const ExecResult r = execute(p);
  EXPECT_DOUBLE_EQ(r.checksum, 5.0);
  EXPECT_EQ(r.flops, 1u);
}

TEST(Interpreter, LoopAccumulation) {
  Program p("t");
  p.add_scalar("sum");
  p.mark_output_scalar("sum");
  p.append(assign("sum", lit(0.0)));
  p.append(loop("i", 1, 10, assign("sum", sref("sum") + lvar("i"))));
  const ExecResult r = execute(p);
  EXPECT_DOUBLE_EQ(r.checksum, 55.0);
  EXPECT_EQ(r.flops, 10u);
}

TEST(Interpreter, ArrayWriteThenReduce) {
  Program p("t");
  const ArrayId a = p.add_array("a", {8});
  p.add_scalar("sum");
  p.mark_output_scalar("sum");
  p.append(loop("i", 1, 8, assign(a, {v("i")}, lvar("i") * lit(2.0))));
  p.append(assign("sum", lit(0.0)));
  p.append(loop("i", 1, 8, assign("sum", sref("sum") + at(a, v("i")))));
  const ExecResult r = execute(p);
  EXPECT_DOUBLE_EQ(r.checksum, 72.0);  // 2*(1+..+8)
  EXPECT_EQ(r.loads, 8u);
  EXPECT_EQ(r.stores, 8u);
}

TEST(Interpreter, InitialArrayValuesAreDeterministicByName) {
  Program p("t");
  const ArrayId a = p.add_array("a", {4});
  p.mark_output_array(a);
  const double c1 = execute(p).checksum;
  const double c2 = execute(p).checksum;
  EXPECT_DOUBLE_EQ(c1, c2);
  // Matches the documented generator.
  double expect = 0.0;
  for (int i = 0; i < 4; ++i)
    expect += ir::input_value(initial_key("a"), i);
  EXPECT_DOUBLE_EQ(c1, expect);
}

TEST(Interpreter, TwoDimensionalColumnMajor) {
  Program p("t");
  const ArrayId a = p.add_array("a", {3, 3});
  p.add_scalar("probe");
  p.mark_output_scalar("probe");
  p.append(loop("j", 1, 3,
                loop("i", 1, 3,
                     assign(a, {v("i"), v("j")},
                            lvar("i") + lvar("j") * lit(10.0)))));
  p.append(assign("probe", at(a, k(2), k(3))));
  const ExecResult r = execute(p);
  EXPECT_DOUBLE_EQ(r.checksum, 32.0);
}

TEST(Interpreter, GuardsSelectBranches) {
  Program p("t");
  p.add_scalar("x");
  p.mark_output_scalar("x");
  p.append(assign("x", lit(0.0)));
  p.append(loop("i", 1, 10,
                if_else(CmpOp::kLe, v("i"), k(3),
                        block(assign("x", sref("x") + lit(1.0))),
                        block(assign("x", sref("x") + lit(100.0))))));
  EXPECT_DOUBLE_EQ(execute(p).checksum, 3.0 + 700.0);
}

TEST(Interpreter, IntrinsicsAndFlopCosts) {
  Program p("t");
  p.add_scalar("x");
  p.mark_output_scalar("x");
  p.append(assign("x", f(lit(1.0), lit(2.0)) + g(lit(3.0), lit(4.0))));
  const ExecResult r = execute(p);
  EXPECT_DOUBLE_EQ(r.checksum, intrinsic_f(1, 2) + intrinsic_g(3, 4));
  EXPECT_EQ(r.flops, 5u);  // 2 + 2 + 1 add
}

TEST(Interpreter, InputStreamsStableUnderRenaming) {
  // Two programs reading the same input stream through different arrays
  // compute the same checksum (the key property storage transforms need).
  const auto build = [](const std::string& array_name) {
    Program p("t");
    const ArrayId a = p.add_array(array_name, {16});
    p.add_scalar("sum");
    p.mark_output_scalar("sum");
    p.append(loop("i", 1, 16,
                  assign(a, {v("i")}, input1(7, v("i"), 16))));
    p.append(assign("sum", lit(0.0)));
    p.append(loop("i", 1, 16, assign("sum", sref("sum") + at(a, v("i")))));
    return p;
  };
  EXPECT_DOUBLE_EQ(execute(build("a")).checksum,
                   execute(build("totally_different")).checksum);
}

TEST(Interpreter, OutOfBoundsSubscriptThrows) {
  Program p("t");
  const ArrayId a = p.add_array("a", {4});
  p.add_scalar("x");
  p.append(loop("i", 1, 5, assign("x", at(a, v("i")))));
  EXPECT_THROW(execute(p), Error);
}

TEST(Interpreter, UndeclaredNamesThrow) {
  Program p("t");
  p.add_scalar("x");
  p.append(assign("x", sref("ghost")));
  EXPECT_THROW(execute(p), Error);

  Program q("t");
  q.add_scalar("x");
  q.append(assign("x", lvar("i")));  // unbound loop var
  EXPECT_THROW(execute(q), Error);
}

TEST(Interpreter, ProfilesTrafficThroughHierarchy) {
  Program p("t");
  const ArrayId a = p.add_array("a", {1024});
  p.add_scalar("sum");
  p.mark_output_scalar("sum");
  p.append(assign("sum", lit(0.0)));
  p.append(loop("i", 1, 1024, assign("sum", sref("sum") + at(a, v("i")))));

  memsim::MemoryHierarchy h(machine::origin2000_r10k().caches);
  ExecOptions opts;
  opts.hierarchy = &h;
  const ExecResult r = execute(p, opts);
  ASSERT_EQ(r.profile.boundaries.size(), 3u);
  // 1024 loads of 8 bytes at the register boundary.
  EXPECT_EQ(r.profile.register_bytes(), 8192u);
  // Streaming read of 8 KB, cold caches: 8 KB from memory.
  EXPECT_EQ(r.profile.memory_bytes(), 8192u);
  EXPECT_EQ(r.profile.flops, 1024u);
}

TEST(Interpreter, ArrayBasesAreAlignedAndDisjoint) {
  Program p("t");
  const ArrayId a = p.add_array("a", {100});
  const ArrayId b = p.add_array("b", {100});
  const ExecResult r = execute(p);
  ASSERT_EQ(r.array_bases.size(), 2u);
  EXPECT_EQ(r.array_bases[0] % 64, 0u);
  EXPECT_EQ(r.array_bases[1] % 64, 0u);
  EXPECT_GE(r.array_bases[1], r.array_bases[0] + 800);
  (void)a;
  (void)b;
}

TEST(Recorder, CountsWithoutHierarchy) {
  Recorder rec;
  rec.load_double(100);
  rec.store_double(200);
  rec.flops(3);
  EXPECT_EQ(rec.load_count(), 1u);
  EXPECT_EQ(rec.store_count(), 1u);
  EXPECT_EQ(rec.register_bytes(), 16u);
  EXPECT_EQ(rec.flop_count(), 3u);
  EXPECT_THROW(rec.profile(), Error);
}

TEST(Recorder, ProfilesWithHierarchy) {
  memsim::MemoryHierarchy h(machine::origin2000_r10k().caches);
  Recorder rec(&h);
  rec.load_double(0);
  rec.flops(2);
  const auto p = rec.profile();
  EXPECT_EQ(p.flops, 2u);
  EXPECT_EQ(p.register_bytes(), 8u);
}

TEST(Recorder, CoalescingPreservesTrafficAndCounts) {
  // A stride-1 sweep, a stride-1 store run, and a non-contiguous tail:
  // the coalesced recorder must report identical boundary bytes and
  // load/store counts to the per-element one.
  const auto drive = [](Recorder& rec) {
    for (int i = 0; i < 512; ++i) rec.load_double(4096 + 8u * i);
    for (int i = 0; i < 512; ++i) rec.store_double(32768 + 8u * i);
    rec.load_double(4096);           // revisit: hits in cache
    rec.load_double(1 << 20);        // far away
    rec.store_double(4096);          // kind switch on a cached line
  };
  memsim::MemoryHierarchy h1(machine::origin2000_r10k().caches);
  Recorder plain(&h1);
  drive(plain);
  memsim::MemoryHierarchy h2(machine::origin2000_r10k().caches);
  Recorder fast(&h2, /*coalesce=*/true);
  drive(fast);

  EXPECT_TRUE(fast.coalescing());
  EXPECT_EQ(plain.load_count(), fast.load_count());
  EXPECT_EQ(plain.store_count(), fast.store_count());
  const auto p1 = plain.profile();
  const auto p2 = fast.profile();
  ASSERT_EQ(p1.boundaries.size(), p2.boundaries.size());
  for (std::size_t b = 0; b < p1.boundaries.size(); ++b) {
    EXPECT_EQ(p1.boundaries[b].bytes_toward_cpu,
              p2.boundaries[b].bytes_toward_cpu);
    EXPECT_EQ(p1.boundaries[b].bytes_from_cpu,
              p2.boundaries[b].bytes_from_cpu);
  }
  // The hierarchy's own access counters also survive batching.
  EXPECT_EQ(h1.load_count(), h2.load_count());
  EXPECT_EQ(h1.store_count(), h2.store_count());
}

TEST(Recorder, CoalescedRunsFlushOnDestruction) {
  memsim::MemoryHierarchy h(machine::origin2000_r10k().caches);
  {
    Recorder rec(&h, /*coalesce=*/true);
    for (int i = 0; i < 8; ++i) rec.load_double(8u * i);
  }  // destructor must flush the pending run into the hierarchy
  EXPECT_EQ(h.load_count(), 8u);
  EXPECT_EQ(h.register_traffic_bytes(), 64u);
}

TEST(BenchCommon, SteadyStateProfileResetsCountersBetweenPasses) {
  // Regression: warm-up flops and accesses must not leak into the measured
  // profile -- it reflects exactly one pass over a warmed hierarchy.
  const machine::MachineModel m = machine::origin2000_r10k();
  int pass = 0;
  const auto profile = bwc::bench::steady_state_profile(m, [&](Recorder& rec) {
    ++pass;
    for (int i = 0; i < 64; ++i) {
      rec.load_double(8u * i);
      rec.flops(3);
    }
  });
  EXPECT_EQ(pass, 2);  // one warm-up pass + one measured pass
  EXPECT_EQ(profile.flops, 64u * 3);
  EXPECT_EQ(profile.register_bytes(), 64u * 8);
  // Warmed caches: the measured pass misses nothing, so no memory traffic.
  EXPECT_EQ(profile.memory_bytes(), 0u);
}

}  // namespace
}  // namespace bwc::runtime
