// Tests for fusion with loop alignment (shifted fusion).
#include <gtest/gtest.h>

#include <cmath>

#include "bwc/analysis/dependence.h"
#include "bwc/core/optimizer.h"
#include "bwc/fusion/solvers.h"
#include "bwc/ir/dsl.h"
#include "bwc/ir/printer.h"
#include "bwc/model/measure.h"
#include "bwc/runtime/interpreter.h"
#include "bwc/support/prng.h"
#include "bwc/transform/fuse.h"
#include "bwc/workloads/extra_programs.h"
#include "bwc/workloads/random_programs.h"

namespace bwc {
namespace {

using namespace ir::dsl;  // NOLINT

void expect_preserved(const ir::Program& a, const ir::Program& b) {
  const double ca = runtime::execute(a).checksum;
  const double cb = runtime::execute(b).checksum;
  EXPECT_NEAR(ca, cb, 1e-9 * (std::abs(ca) + 1.0))
      << "transformed:\n" << ir::to_string(b);
}

/// Producer a[i] = f(b); consumer reads a[i + off].
ir::Program offset_pair_program(std::int64_t off, std::int64_t n = 64) {
  ir::Program p("pair");
  const ir::ArrayId a = p.add_array("a", {n + 16});
  const ir::ArrayId b = p.add_array("b", {n + 16});
  p.add_scalar("s");
  p.mark_output_scalar("s");
  p.append(loop("i", 2, n, assign(a, {v("i")}, at(b, v("i")) * lit(2.0))));
  p.append(loop("i", 2, n,
                assign("s", sref("s") + at(a, v("i", off)))));
  return p;
}

TEST(MinFusionShift, ZeroForAlignedPairs) {
  const auto s = analysis::summarize_program(offset_pair_program(0));
  EXPECT_EQ(analysis::min_fusion_shift(s[0], s[1]), 0);
}

TEST(MinFusionShift, MatchesForwardDistance) {
  for (std::int64_t off : {1, 2, 5}) {
    const auto s = analysis::summarize_program(offset_pair_program(off));
    EXPECT_EQ(analysis::min_fusion_shift(s[0], s[1]), off) << off;
  }
}

TEST(MinFusionShift, BackwardOffsetsNeedNoShift) {
  const auto s = analysis::summarize_program(offset_pair_program(-2));
  EXPECT_EQ(analysis::min_fusion_shift(s[0], s[1]), 0);
}

TEST(MinFusionShift, RespectsMaxShift) {
  const auto s = analysis::summarize_program(offset_pair_program(5));
  EXPECT_FALSE(analysis::min_fusion_shift(s[0], s[1], 4).has_value());
}

TEST(MinFusionShift, RejectsMismatchedShapes) {
  ir::Program p("t");
  const ir::ArrayId a = p.add_array("a", {64, 64});
  p.add_scalar("s");
  p.append(loop("j", 1, 8, loop("i", 1, 8,
                                assign(a, {v("i"), v("j")}, lit(1.0)))));
  p.append(loop("i", 1, 8,
                assign("s", sref("s") + at(a, v("i"), k(1)))));
  const auto s = analysis::summarize_program(p);
  EXPECT_FALSE(analysis::min_fusion_shift(s[0], s[1]).has_value());
}

TEST(ShiftedFusion, GraphMarksShiftedPairs) {
  const ir::Program p = offset_pair_program(1);
  fusion::FusionGraphOptions opts;
  opts.allow_shifted_fusion = true;
  const auto g = fusion::build_fusion_graph(p, opts);
  EXPECT_FALSE(g.is_preventing(0, 1));
  EXPECT_EQ(g.pair(0, 1).compat, analysis::FusionCompat::kShifted);
  EXPECT_EQ(g.pair(0, 1).min_shift, 1);
  // Without the option the pair stays preventing.
  const auto g0 = fusion::build_fusion_graph(p);
  EXPECT_TRUE(g0.is_preventing(0, 1));
}

TEST(ShiftedFusion, PairSemanticsAcrossOffsets) {
  for (std::int64_t off : {1, 2, 3}) {
    const ir::Program p = offset_pair_program(off);
    fusion::FusionGraphOptions gopts;
    gopts.allow_shifted_fusion = true;
    const auto g = fusion::build_fusion_graph(p, gopts);
    const auto plan = fusion::exact_enumeration(g);
    EXPECT_EQ(plan.num_partitions, 1) << off;
    const ir::Program fused = transform::apply_fusion(p, g, plan);
    expect_preserved(p, fused);
    EXPECT_EQ(fused.top_loop_indices().size(), 1u);
  }
}

TEST(ShiftedFusion, JacobiChainFusesCompletely) {
  // The headline win: without alignment no adjacent sweeps fuse; with it
  // the whole chain (plus the norm) becomes one software-pipelined loop.
  const ir::Program p = workloads::jacobi_chain(96, 4);
  fusion::FusionGraphOptions gopts;
  gopts.allow_shifted_fusion = true;
  const auto g = fusion::build_fusion_graph(p, gopts);
  EXPECT_TRUE(g.preventing.empty());
  const auto plan = fusion::best_fusion(g);
  EXPECT_EQ(plan.num_partitions, 1);
  const ir::Program fused = transform::apply_fusion(p, g, plan);
  expect_preserved(p, fused);
}

TEST(ShiftedFusion, JacobiTrafficDrops) {
  const ir::Program p = workloads::jacobi_chain(100000, 4);
  core::OptimizerOptions base;
  base.reduce_storage = false;
  base.eliminate_stores = false;
  core::OptimizerOptions aligned = base;
  aligned.allow_shifted_fusion = true;

  const auto machine = machine::origin2000_r10k().scaled(16);
  const auto plain = model::measure(core::optimize(p, base).program, machine);
  const auto shifted =
      model::measure(core::optimize(p, aligned).program, machine);
  EXPECT_NEAR(plain.exec.checksum, shifted.exec.checksum,
              1e-9 * std::abs(plain.exec.checksum));
  // One fused sweep streams u/v once instead of once per sweep.
  EXPECT_LT(shifted.profile.memory_bytes(),
            0.55 * static_cast<double>(plain.profile.memory_bytes()));
}

TEST(ShiftedFusion, ChainShiftsAccumulate) {
  // Three producers chained with +1 offsets: shifts must accumulate 0,1,2.
  const std::int64_t n = 64;
  ir::Program p("chain");
  const ir::ArrayId a = p.add_array("a", {n + 16});
  const ir::ArrayId b = p.add_array("b", {n + 16});
  const ir::ArrayId c = p.add_array("c", {n + 16});
  p.add_scalar("s");
  p.mark_output_scalar("s");
  p.append(loop("i", 2, n, assign(a, {v("i")}, lvar("i") * lit(0.5))));
  p.append(loop("i", 2, n, assign(b, {v("i")}, at(a, v("i", 1)) + lit(1.0))));
  p.append(loop("i", 2, n, assign("s", sref("s") + at(b, v("i", 1)))));
  (void)c;
  fusion::FusionGraphOptions gopts;
  gopts.allow_shifted_fusion = true;
  const auto g = fusion::build_fusion_graph(p, gopts);
  // Pairwise minimal shifts: adjacent pairs need 1; loops 0 and 2 share no
  // data directly (0), so the codegen's forward pass must accumulate the
  // chain to shifts {0, 1, 2} -- verified by the semantics check below.
  EXPECT_EQ(g.pair(0, 1).min_shift, 1);
  EXPECT_EQ(g.pair(1, 2).min_shift, 1);
  EXPECT_EQ(g.pair(0, 2).min_shift, 0);
  const auto plan = fusion::exact_enumeration(g);
  EXPECT_EQ(plan.num_partitions, 1);
  expect_preserved(p, transform::apply_fusion(p, g, plan));
}

TEST(ShiftedFusion, RandomProgramsPreserveSemantics) {
  Prng rng(987654);
  for (int trial = 0; trial < 25; ++trial) {
    workloads::RandomProgramParams params;
    params.num_loops = 3 + static_cast<int>(rng.uniform(4));
    params.num_arrays = 2 + static_cast<int>(rng.uniform(3));
    params.n = 48;
    const ir::Program p = workloads::random_program(rng, params);
    core::OptimizerOptions opts;
    opts.allow_shifted_fusion = true;
    const auto r = core::optimize(p, opts);
    expect_preserved(p, r.program);
  }
}

TEST(ShiftedFusion, OptimizerOptionOffMatchesBaseline) {
  const ir::Program p = offset_pair_program(1);
  const auto plain = core::optimize(p);
  EXPECT_EQ(plain.plan.num_partitions, 2);  // preventing without alignment
  core::OptimizerOptions opts;
  opts.allow_shifted_fusion = true;
  const auto aligned = core::optimize(p, opts);
  EXPECT_EQ(aligned.plan.num_partitions, 1);
}

}  // namespace
}  // namespace bwc
