// Unit tests for the bwcd server subsystem: the JSON reader/writer, the
// frame codec, the content-addressed compile cache, the binary record
// log, the request/response protocol, and the transport-free Service.
// The golden test at the bottom freezes the deterministic result schema
// against tests/golden/server_protocol.json.
//
// To regenerate the golden after an intentional schema change:
//   BWC_REGEN_GOLDEN=1 build/tests/server_test \
//     --gtest_filter=ServerGolden.ProtocolResult
// and bump kProtocolVersion in src/bwc/server/protocol.h.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bwc/ir/printer.h"
#include "bwc/server/cache.h"
#include "bwc/server/frame.h"
#include "bwc/server/json.h"
#include "bwc/server/protocol.h"
#include "bwc/server/record_log.h"
#include "bwc/server/service.h"
#include "bwc/support/error.h"
#include "bwc/workloads/paper_programs.h"

namespace bwc::server {
namespace {

// ---- JSON ----

TEST(ServerJson, RoundTripsScalarsAndContainers) {
  const std::string text =
      R"({"a":1,"b":-2.5,"c":"hi","d":true,"e":null,"f":[1,2,3],"g":{"x":"y"}})";
  const JsonValue v = parse_json(text);
  EXPECT_EQ(v.render(), text);
  EXPECT_EQ(v.number_or("a", 0), 1.0);
  EXPECT_EQ(v.number_or("b", 0), -2.5);
  EXPECT_EQ(v.string_or("c", ""), "hi");
  EXPECT_TRUE(v.bool_or("d", false));
  EXPECT_TRUE(v.find("e")->is_null());
  EXPECT_EQ(v.find("f")->items().size(), 3u);
  EXPECT_EQ(v.find("g")->string_or("x", ""), "y");
}

TEST(ServerJson, PreservesKeyOrderAndRendersIntegersExactly) {
  JsonValue obj = JsonValue::object();
  obj.set("zeta", JsonValue::number(16000));
  obj.set("alpha", JsonValue::number(0.0504));
  obj.set("neg", JsonValue::number(-7));
  EXPECT_EQ(obj.render(), R"({"zeta":16000,"alpha":0.0504,"neg":-7})");
}

TEST(ServerJson, DoubleRenderingRoundTripsExactly) {
  // %.17g must reproduce the exact same IEEE double after a
  // render -> parse cycle; this is what makes cached result bodies
  // bit-identical to recomputed ones.
  const double values[] = {1991.2477982910009, 1.0 / 3.0, 1e-300, 6.02e23,
                           0.1};
  for (const double d : values) {
    const JsonValue v = parse_json(JsonValue::number(d).render());
    EXPECT_EQ(v.as_number(), d);
  }
}

TEST(ServerJson, EscapesAndUnescapes) {
  const std::string raw = "line1\nline2\ttab \"quoted\" back\\slash";
  const JsonValue v = parse_json(json_quote(raw));
  EXPECT_EQ(v.as_string(), raw);
  // \u escapes incl. a surrogate pair (U+1F600).
  EXPECT_EQ(parse_json("\"\\u0041\\u00e9\"").as_string(), "A\xc3\xa9");
  EXPECT_EQ(parse_json("\"\\ud83d\\ude00\"").as_string(),
            "\xf0\x9f\x98\x80");
}

TEST(ServerJson, RejectsMalformedInput) {
  const char* bad[] = {
      "",           "{",         "[1,]",        "{\"a\":}",
      "tru",        "01",        "1.",          "+1",
      "\"\\x\"",    "\"\\ud83d\"",              // lone high surrogate
      "{\"a\":1,\"a\":2}",                      // duplicate key
      "{} trailing",                            // whole-input rule
      "'single'",   "{\"a\" 1}", "[1 2]",       "nul",
  };
  for (const char* text : bad) {
    EXPECT_THROW(parse_json(text), Error) << "input: " << text;
    try {
      parse_json(text);
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find("[bad-json]"), std::string::npos)
          << "input: " << text;
    }
  }
}

TEST(ServerJson, CapsNestingDepth) {
  std::string deep;
  for (int i = 0; i < 200; ++i) deep += "[";
  for (int i = 0; i < 200; ++i) deep += "]";
  EXPECT_THROW(parse_json(deep), Error);
  std::string ok;
  for (int i = 0; i < 32; ++i) ok += "[";
  for (int i = 0; i < 32; ++i) ok += "]";
  EXPECT_NO_THROW(parse_json(ok));
}

TEST(ServerJson, WrongKindAccessThrows) {
  const JsonValue v = parse_json(R"({"n":1})");
  EXPECT_THROW(v.find("n")->as_string(), Error);
  EXPECT_THROW(v.string_or("n", "x"), Error);  // present but wrong kind
  EXPECT_EQ(v.string_or("absent", "x"), "x");
}

// ---- Framing ----

TEST(ServerFrame, EncodesBigEndianLengthPrefix) {
  const std::string frame = encode_frame("abc");
  ASSERT_EQ(frame.size(), 7u);
  EXPECT_EQ(frame[0], '\0');
  EXPECT_EQ(frame[1], '\0');
  EXPECT_EQ(frame[2], '\0');
  EXPECT_EQ(frame[3], '\x03');
  EXPECT_EQ(frame.substr(4), "abc");
}

TEST(ServerFrame, ReassemblesByteAtATime) {
  const std::string wire = encode_frame("hello") + encode_frame("") +
                           encode_frame("world");
  FrameReader reader;
  std::vector<std::string> payloads;
  for (const char c : wire) {
    reader.feed(&c, 1);
    std::string payload;
    while (reader.next(&payload) == FrameStatus::kFrame)
      payloads.push_back(payload);
  }
  ASSERT_EQ(payloads.size(), 3u);
  EXPECT_EQ(payloads[0], "hello");
  EXPECT_EQ(payloads[1], "");
  EXPECT_EQ(payloads[2], "world");
  EXPECT_EQ(reader.pending_bytes(), 0u);
}

TEST(ServerFrame, OversizedPrefixIsSticky) {
  FrameReader reader;
  const std::string huge = "\xff\xff\xff\xff";
  reader.feed(huge.data(), huge.size());
  std::string payload;
  EXPECT_EQ(reader.next(&payload), FrameStatus::kOversized);
  // Still poisoned even after more (individually valid) bytes arrive.
  reader.feed(encode_frame("x"));
  EXPECT_EQ(reader.next(&payload), FrameStatus::kOversized);
}

TEST(ServerFrame, ReportsPendingBytesForTruncatedFrames) {
  FrameReader reader;
  const std::string partial = encode_frame("full payload").substr(0, 9);
  reader.feed(partial);
  std::string payload;
  EXPECT_EQ(reader.next(&payload), FrameStatus::kNeedMore);
  EXPECT_EQ(reader.pending_bytes(), 9u);
}

// ---- Compile cache ----

class TempDir {
 public:
  explicit TempDir(const char* tag) {
    char buf[256];
    std::snprintf(buf, sizeof buf, "/tmp/bwc-server-test-%s-%d", tag,
                  static_cast<int>(::getpid()));
    path_ = buf;
    std::system(("rm -rf " + path_).c_str());
  }
  ~TempDir() { std::system(("rm -rf " + path_).c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

TEST(ServerCache, MissThenPutThenHit) {
  TempDir dir("cache");
  CompileCache cache(dir.path());
  EXPECT_FALSE(cache.get("key-1").hit);
  cache.put("key-1", "value-1");
  const CompileCache::Lookup lookup = cache.get("key-1");
  ASSERT_TRUE(lookup.hit);
  EXPECT_EQ(lookup.value, "value-1");
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.store_failures(), 0u);
}

TEST(ServerCache, DisabledWhenDirEmpty) {
  CompileCache cache("");
  EXPECT_FALSE(cache.enabled());
  cache.put("k", "v");
  EXPECT_FALSE(cache.get("k").hit);
}

TEST(ServerCache, EvictsTamperedValue) {
  TempDir dir("evict");
  CompileCache cache(dir.path());
  cache.put("key", "value");
  const std::string fp = CompileCache::fingerprint("key");
  {
    std::ofstream out(dir.path() + "/" + fp + ".val",
                      std::ios::binary | std::ios::trunc);
    out << "bwcd-cache-v1 0000000000000000zzzzzzzzzzzzzzzz\ncorrupted";
  }
  EXPECT_FALSE(cache.get("key").hit);
  EXPECT_EQ(cache.evictions(), 1u);
  // Evicted means gone: re-publish works and hits again.
  cache.put("key", "value");
  EXPECT_TRUE(cache.get("key").hit);
}

TEST(ServerCache, FingerprintCollisionCannotServeWrongValue) {
  TempDir dir("collide");
  CompileCache cache(dir.path());
  cache.put("key-a", "value-a");
  // Simulate a fingerprint collision: key-b's files already exist but
  // hold key-a's text. The content check must refuse the hit.
  const std::string fp_a = CompileCache::fingerprint("key-a");
  const std::string fp_b = CompileCache::fingerprint("key-b");
  std::system(("cp " + dir.path() + "/" + fp_a + ".key " + dir.path() + "/" +
               fp_b + ".key")
                  .c_str());
  std::system(("cp " + dir.path() + "/" + fp_a + ".val " + dir.path() + "/" +
               fp_b + ".val")
                  .c_str());
  EXPECT_FALSE(cache.get("key-b").hit);
}

TEST(ServerCache, UnwritableDirCountsStoreFailures) {
  // A path that cannot be a directory (parent is a regular file).
  TempDir dir("unwritable");
  std::system(("mkdir -p " + dir.path()).c_str());
  { std::ofstream out(dir.path() + "/file"); out << "x"; }
  CompileCache cache(dir.path() + "/file/subdir");
  cache.put("k", "v");
  EXPECT_GE(cache.store_failures(), 1u);
  EXPECT_FALSE(cache.get("k").hit);
}

// ---- Record log ----

TEST(ServerRecordLog, WritesAndReadsBack) {
  TempDir dir("reclog");
  std::system(("mkdir -p " + dir.path()).c_str());
  const std::string path = dir.path() + "/rec.log";
  {
    RecordLogWriter writer(path);
    ASSERT_TRUE(writer.enabled());
    ServedRecord r;
    r.unix_micros = 123456789;
    r.status = kRecordOk;
    r.cache_hit = true;
    r.elapsed_us = 42;
    r.request_bytes = 100;
    r.response_bytes = 2000;
    r.key_fp = "abcd";
    r.detail = "optimize";
    writer.append(r);
    r.status = kRecordOverloaded;
    r.cache_hit = false;
    r.detail = "[overloaded]";
    writer.append(r);
    EXPECT_EQ(writer.records_written(), 2u);
  }
  const std::vector<ServedRecord> records = read_record_log(path);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].unix_micros, 123456789u);
  EXPECT_EQ(records[0].status, kRecordOk);
  EXPECT_TRUE(records[0].cache_hit);
  EXPECT_EQ(records[0].elapsed_us, 42u);
  EXPECT_EQ(records[0].request_bytes, 100u);
  EXPECT_EQ(records[0].response_bytes, 2000u);
  EXPECT_EQ(records[0].key_fp, "abcd");
  EXPECT_EQ(records[0].detail, "optimize");
  EXPECT_EQ(records[1].status, kRecordOverloaded);
  EXPECT_EQ(records[1].detail, "[overloaded]");
}

TEST(ServerRecordLog, SurvivesTruncatedTail) {
  TempDir dir("rectrunc");
  std::system(("mkdir -p " + dir.path()).c_str());
  const std::string path = dir.path() + "/rec.log";
  {
    RecordLogWriter writer(path);
    ServedRecord r;
    r.detail = "optimize";
    writer.append(r);
    writer.append(r);
  }
  // Chop bytes off the tail: the reader returns the intact prefix.
  std::ifstream in(path, std::ios::binary);
  std::ostringstream all;
  all << in.rdbuf();
  const std::string bytes = all.str();
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << bytes.substr(0, bytes.size() - 5);
  }
  EXPECT_EQ(read_record_log(path).size(), 1u);
}

TEST(ServerRecordLog, RefusesForeignMagic) {
  TempDir dir("recmagic");
  std::system(("mkdir -p " + dir.path()).c_str());
  const std::string path = dir.path() + "/notrec.log";
  { std::ofstream out(path, std::ios::binary); out << "NOTMYLOG"; }
  RecordLogWriter writer(path);
  EXPECT_FALSE(writer.enabled());
  EXPECT_GE(writer.failures(), 1u);
  EXPECT_THROW(read_record_log(path), Error);
}

TEST(ServerRecordLog, AppendsAcrossReopens) {
  TempDir dir("recappend");
  std::system(("mkdir -p " + dir.path()).c_str());
  const std::string path = dir.path() + "/rec.log";
  for (int i = 0; i < 3; ++i) {
    RecordLogWriter writer(path);
    ServedRecord r;
    r.elapsed_us = static_cast<std::uint64_t>(i);
    writer.append(r);
  }
  const std::vector<ServedRecord> records = read_record_log(path);
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[2].elapsed_us, 2u);
}

// ---- Protocol ----

TEST(ServerProtocol, ParsesMinimalOptimizeRequestWithDefaults) {
  const Request r =
      parse_request(R"({"op":"optimize","program":"double x\n"})");
  EXPECT_EQ(r.op, Request::Op::kOptimize);
  EXPECT_EQ(r.program, "double x\n");
  EXPECT_EQ(r.pipeline, "");
  EXPECT_EQ(r.machine, "o2k");
  EXPECT_EQ(r.cores, 1);
  EXPECT_EQ(r.scale, 16u);
  EXPECT_EQ(r.engine, "compiled");
  EXPECT_TRUE(r.measure);
  EXPECT_EQ(r.timeout_ms, 0);
}

TEST(ServerProtocol, RequestRoundTrips) {
  Request r;
  r.op = Request::Op::kOptimize;
  r.program = "double a[10]\n";
  r.pipeline = "fuse(solver=exact)";
  r.machine = "exemplar";
  r.cores = 4;
  r.scale = 8;
  r.engine = "reference";
  r.measure = false;
  r.timeout_ms = 500;
  const Request back = parse_request(render_request(r));
  EXPECT_EQ(back.program, r.program);
  EXPECT_EQ(back.pipeline, r.pipeline);
  EXPECT_EQ(back.machine, r.machine);
  EXPECT_EQ(back.cores, r.cores);
  EXPECT_EQ(back.scale, r.scale);
  EXPECT_EQ(back.engine, r.engine);
  EXPECT_EQ(back.measure, r.measure);
  EXPECT_EQ(back.timeout_ms, r.timeout_ms);
}

TEST(ServerProtocol, TuneRequestRoundTripsWithDefaults) {
  const Request minimal =
      parse_request(R"({"op":"tune","program":"double x\n"})");
  EXPECT_EQ(minimal.op, Request::Op::kTune);
  EXPECT_EQ(minimal.strategy, "beam");
  EXPECT_DOUBLE_EQ(minimal.gap, 5.0);
  EXPECT_EQ(minimal.budget, "small");
  EXPECT_EQ(minimal.tune_seed, 0u);

  Request r;
  r.op = Request::Op::kTune;
  r.program = "double a[10]\n";
  r.strategy = "genetic";
  r.gap = 2.5;
  r.budget = "32";
  r.tune_seed = 99;
  r.machine = "modern";
  r.cores = 2;
  r.scale = 8;
  const Request back = parse_request(render_request(r));
  EXPECT_EQ(back.op, Request::Op::kTune);
  EXPECT_EQ(back.strategy, r.strategy);
  EXPECT_DOUBLE_EQ(back.gap, r.gap);
  EXPECT_EQ(back.budget, r.budget);
  EXPECT_EQ(back.tune_seed, r.tune_seed);
  EXPECT_EQ(back.machine, r.machine);
  EXPECT_EQ(back.cores, r.cores);
}

TEST(ServerProtocol, RejectsSchemaViolations) {
  const char* bad[] = {
      R"({"program":"x"})",                              // missing op
      R"({"op":"transmogrify"})",                        // unknown op
      R"({"op":"optimize"})",                            // missing program
      R"({"op":"optimize","program":""})",               // empty program
      R"({"op":"optimize","program":"x","machine":"pdp11"})",
      R"({"op":"optimize","program":"x","engine":"quantum"})",
      R"({"op":"optimize","program":"x","cores":0})",
      R"({"op":"optimize","program":"x","cores":1.5})",
      R"({"op":"optimize","program":"x","scale":-1})",
      R"({"op":"optimize","program":"x","timeout_ms":-5})",
      R"({"op":"optimize","program":"x","bogus_key":1})",
      R"({"op":1})",
      R"([])",
      // Cross-op confusion: tune-only knobs on optimize and vice versa.
      R"({"op":"optimize","program":"x","strategy":"beam"})",
      R"({"op":"optimize","program":"x","budget":"small"})",
      R"({"op":"tune","program":"x","pipeline":"fuse"})",
      R"({"op":"tune","program":"x","measure":false})",
      R"({"op":"tune","program":"x","strategy":"annealing"})",
      R"({"op":"tune","program":"x","budget":"gigantic"})",
      R"({"op":"tune","program":"x","gap":-1})",
      R"({"op":"tune","program":"x","tune_seed":0.5})",
  };
  for (const char* text : bad) {
    EXPECT_THROW(parse_request(text), Error) << "input: " << text;
    try {
      parse_request(text);
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find("[bad-request]"),
                std::string::npos)
          << "input: " << text << " error: " << e.what();
    }
  }
}

TEST(ServerProtocol, ResponseRoundTripsWithEmbeddedResult) {
  Response r;
  r.status = "ok";
  r.cache_hit = true;
  r.elapsed_us = 1234;
  r.result_json = R"({"schema":"bwcd-v1","value":[1,2.5,"three"]})";
  const std::string payload = render_response(r);
  const Response back = parse_response(payload);
  EXPECT_EQ(back.status, "ok");
  EXPECT_TRUE(back.cache_hit);
  EXPECT_EQ(back.elapsed_us, 1234);
  EXPECT_EQ(back.result_json, r.result_json);
  // And the re-rendered payload is byte-identical -- the client does not
  // perturb what the daemon said.
  EXPECT_EQ(render_response(back), payload);
}

TEST(ServerProtocol, ErrorResponseRoundTrips) {
  Response r;
  r.status = "error";
  r.error = "[bad-json] unexpected character at byte 0";
  const Response back = parse_response(render_response(r));
  EXPECT_EQ(back.status, "error");
  EXPECT_EQ(back.error, r.error);
  EXPECT_TRUE(back.result_json.empty());
}

// ---- Service ----

std::string small_program_text() {
  return ir::to_string(workloads::fig7_original(512));
}

Request small_request() {
  Request r;
  r.op = Request::Op::kOptimize;
  r.program = small_program_text();
  return r;
}

TEST(ServerService, PingAndStats) {
  Service service(ServiceOptions{});
  Request ping;
  ping.op = Request::Op::kPing;
  const Response pong = service.handle(ping);
  EXPECT_EQ(pong.status, "ok");
  EXPECT_EQ(pong.result_json, R"({"pong":true})");

  Request stats;
  stats.op = Request::Op::kStats;
  const Response s = service.handle(stats);
  EXPECT_EQ(s.status, "ok");
  const JsonValue v = parse_json(s.result_json);
  // The stats request itself is counted before the snapshot is taken.
  EXPECT_EQ(v.number_or("requests", -1), 2.0);
}

TEST(ServerService, ColdResponseMatchesReferenceComputation) {
  Service service(ServiceOptions{});
  const Request request = small_request();
  const Response response = service.handle(request);
  ASSERT_EQ(response.status, "ok") << response.error;
  EXPECT_FALSE(response.cache_hit);
  EXPECT_EQ(response.result_json, Service::compute_result_body(request));
}

TEST(ServerService, CacheHitIsBitIdenticalAndSkipsPipeline) {
  TempDir dir("service-cache");
  ServiceOptions options;
  options.cache_dir = dir.path();
  Service service(options);
  const Request request = small_request();

  const Response cold = service.handle(request);
  ASSERT_EQ(cold.status, "ok") << cold.error;
  EXPECT_FALSE(cold.cache_hit);
  EXPECT_EQ(service.stats().pipeline_runs, 1u);

  const Response warm = service.handle(request);
  ASSERT_EQ(warm.status, "ok") << warm.error;
  EXPECT_TRUE(warm.cache_hit);
  // THE contract: byte-for-byte identical result, no pipeline re-run.
  EXPECT_EQ(warm.result_json, cold.result_json);
  EXPECT_EQ(service.stats().pipeline_runs, 1u);
  EXPECT_EQ(service.stats().cache_hits, 1u);
}

TEST(ServerService, CacheKeyCanonicalizesSpelling) {
  Service service(ServiceOptions{});
  Request a = small_request();
  Request b = a;
  // Same program, noisier spelling: extra blank lines parse away.
  b.program = "\n" + b.program + "\n\n";
  // Default pipeline spelled explicitly.
  Request c = a;
  c.pipeline = "fuse(solver=best),reduce-storage,eliminate-stores";
  // Different engine: deliberately NOT part of the key (engines are
  // bit-identical by the differential guarantee).
  Request d = a;
  d.engine = "reference";
  EXPECT_EQ(service.cache_key_text(a), service.cache_key_text(b));
  EXPECT_EQ(service.cache_key_text(a), service.cache_key_text(c));
  EXPECT_EQ(service.cache_key_text(a), service.cache_key_text(d));
  // Anything that changes the result changes the key.
  Request e = a;
  e.machine = "modern";
  Request f = a;
  f.cores = 4;
  Request g = a;
  g.measure = false;
  EXPECT_NE(service.cache_key_text(a), service.cache_key_text(e));
  EXPECT_NE(service.cache_key_text(a), service.cache_key_text(f));
  EXPECT_NE(service.cache_key_text(a), service.cache_key_text(g));
}

TEST(ServerService, InvalidProgramBecomesStructuredError) {
  Service service(ServiceOptions{});
  Request request;
  request.op = Request::Op::kOptimize;
  request.program = "for i = without end\n";
  const Response response = service.handle(request);
  EXPECT_EQ(response.status, "error");
  EXPECT_FALSE(response.error.empty());
  EXPECT_EQ(service.stats().errors, 1u);
}

TEST(ServerService, MeasureOffOmitsMachineSection) {
  Service service(ServiceOptions{});
  Request request = small_request();
  request.measure = false;
  const Response response = service.handle(request);
  ASSERT_EQ(response.status, "ok") << response.error;
  const JsonValue v = parse_json(response.result_json);
  EXPECT_EQ(v.find("machine"), nullptr);
  EXPECT_NE(v.find("passes"), nullptr);
}

Request small_tune_request() {
  Request r;
  r.op = Request::Op::kTune;
  r.program = small_program_text();
  r.budget = "6";  // keep the search tiny: this is a protocol test
  return r;
}

TEST(ServerService, TuneResponseCarriesWinnerAndCertificate) {
  Service service(ServiceOptions{});
  const Request request = small_tune_request();
  const Response response = service.handle(request);
  ASSERT_EQ(response.status, "ok") << response.error;
  EXPECT_EQ(response.result_json,
            Service::compute_tune_result_body(request, {}, nullptr));
  const JsonValue v = parse_json(response.result_json);
  ASSERT_NE(v.find("winner"), nullptr);
  ASSERT_NE(v.find("default"), nullptr);
  ASSERT_NE(v.find("certificate"), nullptr);
  ASSERT_NE(v.find("floor"), nullptr);
  ASSERT_NE(v.find("validated"), nullptr);
  // The winner is never worse than the default pipeline: the default is
  // always in the validated set.
  const double winner =
      v.find("winner")->number_or("measured_bytes", -1);
  const double fallback =
      v.find("default")->number_or("measured_bytes", -2);
  EXPECT_GE(winner, 0);
  EXPECT_LE(winner, fallback);
  // The certificate chain: floor <= predicted <= measured.
  const JsonValue* cert = v.find("certificate");
  EXPECT_LE(cert->number_or("floor_bytes", 1e18),
            cert->number_or("predicted_bytes", -1));
  EXPECT_LE(cert->number_or("predicted_bytes", 1e18),
            cert->number_or("measured_bytes", -1));
}

TEST(ServerService, TuneCacheHitIsBitIdenticalAndSkipsSearch) {
  TempDir dir("tune-cache");
  ServiceOptions options;
  options.cache_dir = dir.path();
  Service service(options);
  const Request request = small_tune_request();

  const Response cold = service.handle(request);
  ASSERT_EQ(cold.status, "ok") << cold.error;
  EXPECT_FALSE(cold.cache_hit);
  EXPECT_EQ(service.stats().pipeline_runs, 1u);

  const Response warm = service.handle(request);
  ASSERT_EQ(warm.status, "ok") << warm.error;
  EXPECT_TRUE(warm.cache_hit);
  EXPECT_EQ(warm.result_json, cold.result_json);
  EXPECT_EQ(service.stats().pipeline_runs, 1u);
}

TEST(ServerService, TuneKeyTracksKnobsAndSeedPopulation) {
  const Request a = small_tune_request();
  Request b = a;
  b.strategy = "genetic";
  Request c = a;
  c.gap = 1.0;
  Request d = a;
  d.tune_seed = 3;
  EXPECT_NE(Service::tune_cache_key_text(a, {}),
            Service::tune_cache_key_text(b, {}));
  EXPECT_NE(Service::tune_cache_key_text(a, {}),
            Service::tune_cache_key_text(c, {}));
  EXPECT_NE(Service::tune_cache_key_text(a, {}),
            Service::tune_cache_key_text(d, {}));
  // The seed population steers the search, so it is part of the key --
  // a log that has learned a new pipeline is a different computation.
  EXPECT_NE(Service::tune_cache_key_text(a, {}),
            Service::tune_cache_key_text(a, {"interchange"}));
  // The replay engine stays excluded (engines are bit-identical).
  Request e = a;
  e.engine = "reference";
  EXPECT_EQ(Service::tune_cache_key_text(a, {}),
            Service::tune_cache_key_text(e, {}));
}

TEST(ServerService, OptimizePipelinesSeedTheTunePopulation) {
  TempDir dir("tune-seeds");
  std::system(("mkdir -p " + dir.path()).c_str());
  ServiceOptions options;
  options.record_log_path = dir.path() + "/rec.log";
  Service service(options);
  EXPECT_TRUE(service.tune_seed_specs().empty());
  const Response served = service.handle(small_request());
  ASSERT_EQ(served.status, "ok") << served.error;
  // The served optimize's canonical pipeline is now in the log, ready
  // to seed the next tune search.
  const std::vector<std::string> seeds = service.tune_seed_specs();
  ASSERT_EQ(seeds.size(), 1u);
  EXPECT_EQ(seeds[0], "fuse(solver=best),reduce-storage,eliminate-stores");
  // And read_record_log still sees only the type-1 serving record:
  // readers skip record types they do not know.
  EXPECT_EQ(read_record_log(options.record_log_path).size(), 1u);
}

TEST(ServerService, RecordsServedRequestsAndRejections) {
  TempDir dir("service-log");
  std::system(("mkdir -p " + dir.path()).c_str());
  ServiceOptions options;
  options.record_log_path = dir.path() + "/rec.log";
  {
    Service service(options);
    service.handle(small_request());
    service.record_rejection("overloaded", "[overloaded] queue full", 64, 80);
  }
  const std::vector<ServedRecord> records =
      read_record_log(options.record_log_path);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].status, kRecordOk);
  EXPECT_EQ(records[0].detail, "optimize");
  EXPECT_GT(records[0].response_bytes, 0u);
  EXPECT_EQ(records[1].status, kRecordOverloaded);
  EXPECT_EQ(records[1].detail, "[overloaded] queue full");
}

// ---- Golden protocol schema ----

/// Structural comparison: objects must agree on key order and kinds,
/// strings exactly; numbers within a relative tolerance so a last-ulp
/// difference across compilers does not trip the schema gate.
void expect_same_shape(const JsonValue& got, const JsonValue& want,
                       const std::string& at) {
  ASSERT_EQ(static_cast<int>(got.kind()), static_cast<int>(want.kind()))
      << "kind mismatch at " << at;
  switch (want.kind()) {
    case JsonValue::Kind::kObject: {
      ASSERT_EQ(got.members().size(), want.members().size())
          << "member count at " << at;
      for (std::size_t i = 0; i < want.members().size(); ++i) {
        EXPECT_EQ(got.members()[i].first, want.members()[i].first)
            << "key order at " << at;
        expect_same_shape(got.members()[i].second, want.members()[i].second,
                          at + "." + want.members()[i].first);
      }
      break;
    }
    case JsonValue::Kind::kArray: {
      ASSERT_EQ(got.items().size(), want.items().size())
          << "array length at " << at;
      for (std::size_t i = 0; i < want.items().size(); ++i)
        expect_same_shape(got.items()[i], want.items()[i],
                          at + "[" + std::to_string(i) + "]");
      break;
    }
    case JsonValue::Kind::kString:
      EXPECT_EQ(got.as_string(), want.as_string()) << "at " << at;
      break;
    case JsonValue::Kind::kNumber:
      EXPECT_NEAR(got.as_number(), want.as_number(),
                  1e-9 * (std::abs(want.as_number()) + 1.0))
          << "at " << at;
      break;
    case JsonValue::Kind::kBool:
      EXPECT_EQ(got.as_bool(), want.as_bool()) << "at " << at;
      break;
    case JsonValue::Kind::kNull:
      break;
  }
}

TEST(ServerGolden, ProtocolResult) {
  // The frozen request: small fig7, default pipeline, measured on the
  // default machine. Any change to the result schema shows up here.
  const Request request = small_request();
  const std::string body = Service::compute_result_body(request);
  const std::string path =
      std::string(BWC_TEST_GOLDEN_DIR) + "/server_protocol.json";

  if (std::getenv("BWC_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << body << "\n";
    GTEST_SKIP() << "regenerated " << path;
  }

  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "missing golden " << path;
  std::ostringstream golden_text;
  golden_text << in.rdbuf();

  const JsonValue got = parse_json(body);
  std::string want_text = golden_text.str();
  while (!want_text.empty() && want_text.back() == '\n') want_text.pop_back();
  const JsonValue want = parse_json(want_text);
  expect_same_shape(got, want, "result");

  // Schema invariants independent of the golden bytes.
  EXPECT_EQ(got.string_or("schema", ""), kSchemaName);
  EXPECT_EQ(got.number_or("protocol_version", 0), kProtocolVersion);
  ASSERT_NE(got.find("passes"), nullptr);
  for (const JsonValue& pass : got.find("passes")->items()) {
    EXPECT_NE(pass.find("pass"), nullptr);
    EXPECT_NE(pass.find("remarks"), nullptr);
    // Wall-clock fields must NOT appear: the result body is
    // deterministic by construction.
    EXPECT_EQ(pass.find("wall_ms"), nullptr);
    EXPECT_EQ(pass.find("verify_ms"), nullptr);
  }
}

}  // namespace
}  // namespace bwc::server
