#include <gtest/gtest.h>

#include "bwc/machine/machine_model.h"
#include "bwc/machine/timing.h"
#include "bwc/support/error.h"

namespace bwc::machine {
namespace {

TEST(MachineModel, Origin2000MatchesPaperBalance) {
  const MachineModel m = origin2000_r10k();
  const auto balance = m.machine_balance();
  ASSERT_EQ(balance.size(), 3u);
  // The paper's Figure 1 machine row: 4 / 4 / 0.8 bytes per flop.
  EXPECT_DOUBLE_EQ(balance[0], 4.0);
  EXPECT_DOUBLE_EQ(balance[1], 4.0);
  EXPECT_DOUBLE_EQ(balance[2], 0.8);
  // ~300 MB/s memory bandwidth, as quoted in Section 2.3.
  EXPECT_NEAR(m.memory_bandwidth_mbps(), 320.0, 30.0);
}

TEST(MachineModel, ExemplarIsSingleLevelDirectMapped) {
  const MachineModel m = exemplar_pa8000();
  ASSERT_EQ(m.caches.size(), 1u);
  EXPECT_EQ(m.caches[0].associativity, 1u);
  EXPECT_EQ(m.machine_balance().size(), 2u);
}

TEST(MachineModel, ModernCoreHasWorseMemoryBalanceThanO2K) {
  // The paper's projection: "future systems will have even worse balance".
  EXPECT_LT(generic_modern().machine_balance().back() /
                generic_modern().machine_balance().front(),
            origin2000_r10k().machine_balance().back() /
                origin2000_r10k().machine_balance().front());
}

TEST(MachineModel, ScaledShrinksCachesKeepsBalance) {
  const MachineModel full = origin2000_r10k();
  const MachineModel scaled = full.scaled(16);
  EXPECT_EQ(scaled.caches[0].size_bytes, full.caches[0].size_bytes / 16);
  EXPECT_EQ(scaled.caches[1].size_bytes, full.caches[1].size_bytes / 16);
  EXPECT_EQ(scaled.machine_balance(), full.machine_balance());
  EXPECT_NO_THROW(scaled.make_hierarchy());
}

TEST(MachineModel, ScaleClampsToMinimumGeometry) {
  const MachineModel tiny = origin2000_r10k().scaled(1 << 20);
  for (const auto& c : tiny.caches) {
    EXPECT_GE(c.size_bytes, c.line_bytes * 4);
    EXPECT_NO_THROW(c.validate());
  }
}

TEST(MachineModel, ValidateRejectsInconsistency) {
  MachineModel m = origin2000_r10k();
  m.boundary_bandwidth_mbps.pop_back();
  EXPECT_THROW(m.validate(), Error);
}

TEST(Presets, AllValid) {
  for (const auto& m : all_presets()) EXPECT_NO_THROW(m.validate());
}

// -- Timing model ----------------------------------------------------------------

ExecutionProfile profile_of(std::uint64_t flops,
                            std::vector<std::uint64_t> boundary_bytes) {
  ExecutionProfile p;
  p.flops = flops;
  const char* names[] = {"L1-Reg", "L2-L1", "Mem-L2"};
  for (std::size_t i = 0; i < boundary_bytes.size(); ++i) {
    memsim::BoundaryTraffic b;
    b.name = names[i % 3];
    b.bytes_toward_cpu = boundary_bytes[i];
    p.boundaries.push_back(b);
  }
  return p;
}

TEST(Timing, MemoryBoundProgram) {
  const MachineModel m = origin2000_r10k();
  // 1 Mflop but 32 MB of memory traffic: memory binds (0.1 s at 320 MB/s).
  const auto p = profile_of(1000000, {32u << 20, 32u << 20, 32u << 20});
  const TimePrediction t = predict_time(p, m);
  EXPECT_EQ(t.binding_resource, "Mem-L2");
  EXPECT_NEAR(t.total_s, (32.0 * 1048576) / (320.0 * 1e6), 1e-9);
  EXPECT_LT(t.cpu_utilization(), 0.05);
}

TEST(Timing, ComputeBoundProgram) {
  const MachineModel m = origin2000_r10k();
  // 400 Mflop and almost no traffic: flops bind at 1 second.
  const auto p = profile_of(400000000, {1000, 1000, 1000});
  const TimePrediction t = predict_time(p, m);
  EXPECT_EQ(t.binding_resource, "flops");
  EXPECT_NEAR(t.total_s, 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(t.cpu_utilization(), 1.0);
}

TEST(Timing, ProfileBoundaryMismatchThrows) {
  const MachineModel m = origin2000_r10k();
  const auto p = profile_of(1000, {100, 100});  // only 2 boundaries
  EXPECT_THROW(predict_time(p, m), Error);
}

TEST(Timing, EffectiveBandwidth) {
  EXPECT_DOUBLE_EQ(effective_bandwidth_mbps(300 * 1000000ull, 1.0), 300.0);
  EXPECT_THROW(effective_bandwidth_mbps(1, 0.0), Error);
}

TEST(Timing, MemoryUtilizationSaturatesForStreamKernels) {
  const MachineModel m = origin2000_r10k();
  const auto p = profile_of(1000000, {64u << 20, 64u << 20, 64u << 20});
  EXPECT_NEAR(memory_bandwidth_utilization(p, m), 1.0, 1e-9);
}

TEST(Timing, UtilizationBelowOneWhenComputeBound) {
  const MachineModel m = origin2000_r10k();
  const auto p = profile_of(400000000, {1 << 20, 1 << 20, 1 << 20});
  EXPECT_LT(memory_bandwidth_utilization(p, m), 0.05);
}

TEST(Profile, CaptureFromHierarchy) {
  memsim::MemoryHierarchy h(origin2000_r10k().caches);
  h.load(0, 8);
  const auto p = ExecutionProfile::capture(h, 7);
  EXPECT_EQ(p.flops, 7u);
  ASSERT_EQ(p.boundaries.size(), 3u);
  EXPECT_EQ(p.register_bytes(), 8u);
  EXPECT_EQ(p.memory_bytes(), 128u);  // one 128B L2 line fill
}

}  // namespace
}  // namespace bwc::machine
