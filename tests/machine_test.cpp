#include <gtest/gtest.h>

#include "bwc/machine/machine_model.h"
#include "bwc/machine/timing.h"
#include "bwc/support/error.h"

namespace bwc::machine {
namespace {

TEST(MachineModel, Origin2000MatchesPaperBalance) {
  const MachineModel m = origin2000_r10k();
  const auto balance = m.machine_balance();
  ASSERT_EQ(balance.size(), 3u);
  // The paper's Figure 1 machine row: 4 / 4 / 0.8 bytes per flop.
  EXPECT_DOUBLE_EQ(balance[0], 4.0);
  EXPECT_DOUBLE_EQ(balance[1], 4.0);
  EXPECT_DOUBLE_EQ(balance[2], 0.8);
  // ~300 MB/s memory bandwidth, as quoted in Section 2.3.
  EXPECT_NEAR(m.memory_bandwidth_mbps(), 320.0, 30.0);
}

TEST(MachineModel, ExemplarIsSingleLevelDirectMapped) {
  const MachineModel m = exemplar_pa8000();
  ASSERT_EQ(m.caches.size(), 1u);
  EXPECT_EQ(m.caches[0].associativity, 1u);
  EXPECT_EQ(m.machine_balance().size(), 2u);
}

TEST(MachineModel, ModernCoreHasWorseMemoryBalanceThanO2K) {
  // The paper's projection: "future systems will have even worse balance".
  EXPECT_LT(generic_modern().machine_balance().back() /
                generic_modern().machine_balance().front(),
            origin2000_r10k().machine_balance().back() /
                origin2000_r10k().machine_balance().front());
}

TEST(MachineModel, ScaledShrinksCachesKeepsBalance) {
  const MachineModel full = origin2000_r10k();
  const MachineModel scaled = full.scaled(16);
  EXPECT_EQ(scaled.caches[0].size_bytes, full.caches[0].size_bytes / 16);
  EXPECT_EQ(scaled.caches[1].size_bytes, full.caches[1].size_bytes / 16);
  EXPECT_EQ(scaled.machine_balance(), full.machine_balance());
  EXPECT_NO_THROW(scaled.make_hierarchy());
}

TEST(MachineModel, ScaleClampsToMinimumGeometry) {
  const MachineModel tiny = origin2000_r10k().scaled(1 << 20);
  for (const auto& c : tiny.caches) {
    EXPECT_GE(c.size_bytes, c.line_bytes * 4);
    EXPECT_NO_THROW(c.validate());
  }
}

TEST(MachineModel, ValidateRejectsInconsistency) {
  MachineModel m = origin2000_r10k();
  m.boundary_bandwidth_mbps.pop_back();
  EXPECT_THROW(m.validate(), Error);
}

TEST(Presets, AllValid) {
  for (const auto& m : all_presets()) EXPECT_NO_THROW(m.validate());
}

// -- Multicore shared-bandwidth model -------------------------------------

TEST(Multicore, DefaultTopologySharesOnlyTheMemoryBus) {
  const MachineModel m = origin2000_r10k();
  EXPECT_TRUE(m.boundary_shared.empty());
  EXPECT_FALSE(m.is_shared(0));  // registers<->L1: per-core
  EXPECT_FALSE(m.is_shared(1));  // L1<->L2: per-core
  EXPECT_TRUE(m.is_shared(2));   // memory bus: one for the machine
}

TEST(Multicore, AggregateRatesScalePrivateBoundariesOnly) {
  const MachineModel m = origin2000_r10k().with_cores(4);
  EXPECT_EQ(m.core_count, 4);
  EXPECT_NO_THROW(m.validate());
  const MachineModel one = origin2000_r10k();
  EXPECT_DOUBLE_EQ(m.aggregate_peak_mflops(), 4 * one.peak_mflops);
  EXPECT_DOUBLE_EQ(m.aggregate_bandwidth_mbps(0),
                   4 * one.boundary_bandwidth_mbps[0]);
  EXPECT_DOUBLE_EQ(m.aggregate_bandwidth_mbps(1),
                   4 * one.boundary_bandwidth_mbps[1]);
  // The shared bus does not multiply -- that is the whole point.
  EXPECT_DOUBLE_EQ(m.aggregate_bandwidth_mbps(2),
                   one.boundary_bandwidth_mbps[2]);
}

TEST(Multicore, BalanceShrinksOnSharedBoundariesWithCores) {
  const auto one = origin2000_r10k().machine_balance();
  const auto four = origin2000_r10k().with_cores(4).machine_balance();
  ASSERT_EQ(one.size(), four.size());
  EXPECT_DOUBLE_EQ(four[0], one[0]);      // private: balance holds
  EXPECT_DOUBLE_EQ(four[1], one[1]);      // private: balance holds
  EXPECT_DOUBLE_EQ(four[2], one[2] / 4);  // shared bus: squeezed 1/P
}

TEST(Multicore, ExplicitSharingFlagsOverrideTheDefault) {
  MachineModel m = origin2000_r10k();
  m.core_count = 2;
  // Model a shared L2: its boundary stops scaling with cores.
  m.boundary_shared = {false, true, true};
  EXPECT_NO_THROW(m.validate());
  EXPECT_FALSE(m.is_shared(0));
  EXPECT_TRUE(m.is_shared(1));
  EXPECT_TRUE(m.is_shared(2));
  EXPECT_DOUBLE_EQ(m.aggregate_bandwidth_mbps(1),
                   m.boundary_bandwidth_mbps[1]);
}

TEST(Multicore, ValidateRejectsBadCoreCountAndFlagSize) {
  MachineModel m = origin2000_r10k();
  m.core_count = 0;
  EXPECT_THROW(m.validate(), Error);
  m.core_count = 1;
  m.boundary_shared = {true};  // must match boundary count (3)
  EXPECT_THROW(m.validate(), Error);
}


// -- Timing model ----------------------------------------------------------------

ExecutionProfile profile_of(std::uint64_t flops,
                            std::vector<std::uint64_t> boundary_bytes) {
  ExecutionProfile p;
  p.flops = flops;
  const char* names[] = {"L1-Reg", "L2-L1", "Mem-L2"};
  for (std::size_t i = 0; i < boundary_bytes.size(); ++i) {
    memsim::BoundaryTraffic b;
    b.name = names[i % 3];
    b.bytes_toward_cpu = boundary_bytes[i];
    p.boundaries.push_back(b);
  }
  return p;
}

TEST(Timing, MemoryBoundProgram) {
  const MachineModel m = origin2000_r10k();
  // 1 Mflop but 32 MB of memory traffic: memory binds (0.1 s at 320 MB/s).
  const auto p = profile_of(1000000, {32u << 20, 32u << 20, 32u << 20});
  const TimePrediction t = predict_time(p, m);
  EXPECT_EQ(t.binding_resource, "Mem-L2");
  EXPECT_NEAR(t.total_s, (32.0 * 1048576) / (320.0 * 1e6), 1e-9);
  EXPECT_LT(t.cpu_utilization(), 0.05);
}

TEST(Timing, ComputeBoundProgram) {
  const MachineModel m = origin2000_r10k();
  // 400 Mflop and almost no traffic: flops bind at 1 second.
  const auto p = profile_of(400000000, {1000, 1000, 1000});
  const TimePrediction t = predict_time(p, m);
  EXPECT_EQ(t.binding_resource, "flops");
  EXPECT_NEAR(t.total_s, 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(t.cpu_utilization(), 1.0);
}

TEST(Timing, ProfileBoundaryMismatchThrows) {
  const MachineModel m = origin2000_r10k();
  const auto p = profile_of(1000, {100, 100});  // only 2 boundaries
  EXPECT_THROW(predict_time(p, m), Error);
}

TEST(Timing, EffectiveBandwidth) {
  EXPECT_DOUBLE_EQ(effective_bandwidth_mbps(300 * 1000000ull, 1.0), 300.0);
  EXPECT_THROW(effective_bandwidth_mbps(1, 0.0), Error);
}

TEST(Timing, MemoryUtilizationSaturatesForStreamKernels) {
  const MachineModel m = origin2000_r10k();
  const auto p = profile_of(1000000, {64u << 20, 64u << 20, 64u << 20});
  EXPECT_NEAR(memory_bandwidth_utilization(p, m), 1.0, 1e-9);
}

TEST(Timing, UtilizationBelowOneWhenComputeBound) {
  const MachineModel m = origin2000_r10k();
  const auto p = profile_of(400000000, {1 << 20, 1 << 20, 1 << 20});
  EXPECT_LT(memory_bandwidth_utilization(p, m), 0.05);
}

TEST(MulticoreTiming, OneCoreIsTheUniprocessorModel) {
  // with_cores(1) must be observationally identical to the seed model:
  // same balance, same timing on any profile.
  const MachineModel base = origin2000_r10k();
  const MachineModel one = base.with_cores(1);
  EXPECT_EQ(one.machine_balance(), base.machine_balance());
  const ExecutionProfile p = profile_of(1000000, {8000, 8000, 4000});
  const TimePrediction a = predict_time(p, base);
  const TimePrediction b = predict_time(p, one);
  EXPECT_DOUBLE_EQ(a.total_s, b.total_s);
  EXPECT_EQ(a.binding_resource, b.binding_resource);
}

TEST(MulticoreTiming, DividesPrivateTimeUntilTheBusBinds) {
  // Compute-heavy profile: flops bind at 1 core, so doubling cores
  // halves time until the (unchanged) shared-bus time is reached.
  const MachineModel m = origin2000_r10k();
  ExecutionProfile p = profile_of(
      static_cast<std::uint64_t>(m.peak_mflops) * 1000000, {64, 64, 64});
  const double t1 = predict_time(p, m).total_s;
  const double t2 = predict_time(p, m.with_cores(2)).total_s;
  EXPECT_NEAR(t2, t1 / 2, 1e-12);
  // A memory-bound profile does not speed up at all: the bus is shared.
  ExecutionProfile mem = profile_of(1, {64, 64, 64000000});
  EXPECT_DOUBLE_EQ(predict_time(mem, m).total_s,
                   predict_time(mem, m.with_cores(8)).total_s);
  EXPECT_EQ(predict_time(mem, m.with_cores(8)).binding_resource, "Mem-L2");
}

TEST(Profile, CaptureFromHierarchy) {
  memsim::MemoryHierarchy h(origin2000_r10k().caches);
  h.load(0, 8);
  const auto p = ExecutionProfile::capture(h, 7);
  EXPECT_EQ(p.flops, 7u);
  ASSERT_EQ(p.boundaries.size(), 3u);
  EXPECT_EQ(p.register_bytes(), 8u);
  EXPECT_EQ(p.memory_bytes(), 128u);  // one 128B L2 line fill
}

}  // namespace
}  // namespace bwc::machine
