#include <gtest/gtest.h>

#include <sstream>

#include "bwc/support/csv.h"
#include "bwc/support/error.h"
#include "bwc/support/prng.h"
#include "bwc/support/stats.h"
#include "bwc/support/table.h"
#include "bwc/support/units.h"

namespace bwc {
namespace {

TEST(Error, CheckThrowsWithLocation) {
  try {
    BWC_CHECK(1 == 2, "impossible");
    FAIL() << "expected throw";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("impossible"), std::string::npos);
    EXPECT_NE(what.find("support_test.cpp"), std::string::npos);
  }
}

TEST(Error, CheckPassesSilently) {
  EXPECT_NO_THROW(BWC_CHECK(2 + 2 == 4, "math works"));
}

TEST(Prng, DeterministicFromSeed) {
  Prng a(42), b(42), c(43);
  EXPECT_EQ(a(), b());
  EXPECT_EQ(a(), b());
  Prng a2(42);
  EXPECT_NE(a2(), c());
}

TEST(Prng, UniformInRange) {
  Prng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_in(-3, 5);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 5);
  }
}

TEST(Prng, UniformDoubleInUnitInterval) {
  Prng rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform_double();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Stats, RunningStatsBasics) {
  RunningStats s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_NEAR(s.variance(), 5.0 / 3.0, 1e-12);
}

TEST(Stats, MergeMatchesSequential) {
  RunningStats a, b, all;
  for (int i = 0; i < 50; ++i) {
    const double x = 0.1 * i;
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
}

TEST(Stats, MedianOddEven) {
  const double odd[] = {3.0, 1.0, 2.0};
  const double even[] = {4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(median(odd), 2.0);
  EXPECT_DOUBLE_EQ(median(even), 2.5);
}

TEST(Stats, GeometricMean) {
  const double xs[] = {1.0, 4.0};
  EXPECT_DOUBLE_EQ(geometric_mean(xs), 2.0);
  const double bad[] = {1.0, -1.0};
  EXPECT_THROW(geometric_mean(bad), Error);
}

TEST(Stats, RelativeSpread) {
  const double xs[] = {100.0, 110.0, 120.0};
  EXPECT_NEAR(relative_spread(xs), 0.2, 1e-12);
  const double one[] = {5.0};
  EXPECT_DOUBLE_EQ(relative_spread(one), 0.0);
}

TEST(Table, RendersAlignedColumns) {
  TextTable t("Title");
  t.set_header({"Program", "L1", "Mem"});
  t.add_row({"conv", "6.4", "5.2"});
  t.add_row({"longer-name", "10.8", "4.9"});
  const std::string out = t.render();
  EXPECT_NE(out.find("Title"), std::string::npos);
  EXPECT_NE(out.find("conv"), std::string::npos);
  EXPECT_NE(out.find("10.8"), std::string::npos);
  // Header rule exists.
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(Table, NumericRightAlignment) {
  TextTable t;
  t.set_header({"k", "value"});
  t.add_row({"x", "1.0"});
  t.add_row({"y", "100.0"});
  const std::string out = t.render();
  // The shorter number must be padded on the left (right-aligned).
  EXPECT_NE(out.find("  1.0"), std::string::npos);
}

TEST(Table, Formatters) {
  EXPECT_EQ(fmt_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_bytes(512), "512 B");
  EXPECT_EQ(fmt_bytes(1536), "1.5 KB");
  EXPECT_EQ(fmt_bandwidth(312.54), "312.5 MB/s");
}

TEST(Csv, EscapesSpecials) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(Csv, WritesHeaderAndRows) {
  CsvWriter w({"kernel", "mbps"});
  w.add_row({"1w1r", "305.0"});
  const std::string out = w.str();
  EXPECT_EQ(out, "kernel,mbps\n1w1r,305.0\n");
  EXPECT_THROW(w.add_row({"too", "many", "cells"}), Error);
}

TEST(Units, Conversions) {
  EXPECT_DOUBLE_EQ(to_mb_per_s(2.0e6, 1.0), 2.0);
  EXPECT_DOUBLE_EQ(to_mflops(5.0e6, 2.0), 2.5);
}

}  // namespace
}  // namespace bwc
