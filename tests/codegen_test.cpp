// Differential test holding the native codegen engine bit-identical to
// the bytecode VM and the reference interpreter: checksums, flop/load/
// store counts, final scalars, array bases, per-boundary traffic bytes,
// fast-forward event counts and the hierarchy's own access counters must
// all match on every paper, extra, optimized and random workload, at
// cores {1, 2, 4, 8}, with access coalescing and steady-state
// fast-forward each both on and off. Also covers the backend's
// operational envelope: the content-addressed object cache (second
// execution is a pure dlopen; stale entries are evicted), the graceful
// VM fallback when the host compiler is broken or missing, and
// out-of-bounds errors surfacing with the VM's exact message instead of
// falling back. The CI thread-sanitizer job runs the Parallel* test
// here; the sanitize job runs everything over the dlopen'ed objects.
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bwc/core/optimizer.h"
#include "bwc/ir/dsl.h"
#include "bwc/machine/machine_model.h"
#include "bwc/model/measure.h"
#include "bwc/runtime/codegen.h"
#include "bwc/runtime/compiled.h"
#include "bwc/runtime/interpreter.h"
#include "bwc/support/error.h"
#include "bwc/support/prng.h"
#include "bwc/workloads/extra_programs.h"
#include "bwc/workloads/paper_programs.h"
#include "bwc/workloads/random_programs.h"

namespace bwc::runtime {
namespace {

using namespace ir::dsl;  // NOLINT
using ir::ArrayId;
using ir::Program;

constexpr int kCoreCounts[] = {1, 2, 4, 8};

/// Shared cache for this test process: every program compiles exactly
/// once, all later configurations are pure dlopen reuses -- which is
/// itself part of what the test exercises.
NativeOptions test_native_opts() {
  static const std::string dir = ::testing::TempDir() +
                                 "bwc-codegen-test-cache." +
                                 std::to_string(::getpid());
  NativeOptions opts;
  opts.cache_dir = dir;
  return opts;
}

/// A private cache directory for tests that assert on hit/miss behavior.
std::string fresh_cache_dir(const std::string& tag) {
  const std::string dir = ::testing::TempDir() + "bwc-codegen-" + tag + "." +
                          std::to_string(::getpid());
  std::filesystem::remove_all(dir);
  return dir;
}

void expect_identical(const ExecResult& ref, const ExecResult& got,
                      const std::string& label) {
  SCOPED_TRACE(label);
  EXPECT_EQ(ref.checksum, got.checksum);
  EXPECT_EQ(ref.flops, got.flops);
  EXPECT_EQ(ref.loads, got.loads);
  EXPECT_EQ(ref.stores, got.stores);
  EXPECT_EQ(ref.scalars, got.scalars);
  EXPECT_EQ(ref.array_bases, got.array_bases);
  EXPECT_EQ(ref.profile.flops, got.profile.flops);
  ASSERT_EQ(ref.profile.boundaries.size(), got.profile.boundaries.size());
  for (std::size_t b = 0; b < ref.profile.boundaries.size(); ++b) {
    SCOPED_TRACE("boundary " + ref.profile.boundaries[b].name);
    EXPECT_EQ(ref.profile.boundaries[b].bytes_toward_cpu,
              got.profile.boundaries[b].bytes_toward_cpu);
    EXPECT_EQ(ref.profile.boundaries[b].bytes_from_cpu,
              got.profile.boundaries[b].bytes_from_cpu);
  }
}

/// Run `p` natively at every core count on the given machine's hierarchy
/// and require all observables to match the reference interpreter and
/// the serial bytecode VM, with coalescing and fast-forward each both on
/// and off. Fast-forward *event counts* must also match the VM's: the
/// native engine runs the same period-detection protocol, just with
/// dlopen'ed kernels under it.
void expect_native_identical(const Program& p,
                             const machine::MachineModel& machine) {
  memsim::MemoryHierarchy href = machine.make_hierarchy();
  ExecOptions ref_opts;
  ref_opts.hierarchy = &href;
  const ExecResult ref = execute(p, ref_opts);

  for (const bool coalesce : {true, false}) {
    for (const bool fast_forward : {true, false}) {
      const std::string tag = ", coalesce=" + std::to_string(coalesce) +
                              ", ff=" + std::to_string(fast_forward) + "]";
      memsim::MemoryHierarchy hvm = machine.make_hierarchy();
      ExecOptions vm_opts;
      vm_opts.hierarchy = &hvm;
      vm_opts.coalesce_accesses = coalesce;
      vm_opts.fast_forward = fast_forward;
      const ExecResult vm = execute_compiled(p, vm_opts);

      for (const int cores : kCoreCounts) {
        memsim::MemoryHierarchy hnat = machine.make_hierarchy();
        ExecOptions nat_opts;
        nat_opts.hierarchy = &hnat;
        nat_opts.coalesce_accesses = coalesce;
        nat_opts.cores = cores;
        nat_opts.fast_forward = fast_forward;
        NativeReport report;
        const ExecResult nat =
            execute_native(p, nat_opts, test_native_opts(), &report);
        ASSERT_TRUE(report.native) << report.warning;
        expect_identical(ref, nat,
                         p.name() + " [native, cores=" +
                             std::to_string(cores) + tag);
        if (cores == 1) {
          // Same fast-forward engagement as the serial VM, not merely
          // the same totals.
          EXPECT_EQ(vm.fast_forward_events, nat.fast_forward_events)
              << p.name() << tag;
          EXPECT_EQ(vm.fast_forwarded_iterations,
                    nat.fast_forwarded_iterations)
              << p.name() << tag;
        }
        // The simulator's own access counters agree with the serial VM:
        // the native engine produces the same access stream, not just
        // the same counter totals.
        EXPECT_EQ(hvm.load_count(), hnat.load_count()) << p.name() << tag;
        EXPECT_EQ(hvm.store_count(), hnat.store_count()) << p.name() << tag;
      }
    }
  }
}

void expect_native_identical(const Program& p) {
  expect_native_identical(p, machine::origin2000_r10k().scaled(16));
}

bool compiler_available() { return host_compiler_available({}); }

TEST(NativeEngine, PaperPrograms) {
  if (!compiler_available()) GTEST_SKIP() << "no host C compiler";
  expect_native_identical(workloads::sec21_write_loop(4096));
  expect_native_identical(workloads::sec21_read_loop(4096));
  expect_native_identical(workloads::sec21_both_loops(4096));
  expect_native_identical(workloads::fig6_original(48));
  expect_native_identical(workloads::fig7_original(4096));
}

TEST(NativeEngine, ExtraPrograms) {
  if (!compiler_available()) GTEST_SKIP() << "no host C compiler";
  expect_native_identical(workloads::jacobi_chain(512, 4));
  expect_native_identical(workloads::adi_like(48));
  expect_native_identical(workloads::blur_sharpen(1024));
  // Reductions: register-accumulator loops, never parallelized, never
  // fast-forwarded -- the native reduce kernel must still fold in the
  // VM's exact order.
  expect_native_identical(workloads::reduction_cascade(512, 5));
}

TEST(NativeEngine, OptimizedPrograms) {
  if (!compiler_available()) GTEST_SKIP() << "no host C compiler";
  expect_native_identical(
      core::optimize(workloads::fig7_original(4096)).program);
  expect_native_identical(
      core::optimize(workloads::sec21_both_loops(4096)).program);
}

TEST(NativeEngine, AllMachinePresets) {
  if (!compiler_available()) GTEST_SKIP() << "no host C compiler";
  for (const auto& m : machine::all_presets()) {
    SCOPED_TRACE(m.name);
    expect_native_identical(workloads::fig6_original(32), m.scaled(16));
    expect_native_identical(workloads::sec21_both_loops(2048), m.scaled(16));
  }
}

TEST(NativeEngine, RandomPrograms1D) {
  if (!compiler_available()) GTEST_SKIP() << "no host C compiler";
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Prng rng(seed);
    expect_native_identical(workloads::random_program(rng));
  }
}

TEST(NativeEngine, RandomPrograms2D) {
  if (!compiler_available()) GTEST_SKIP() << "no host C compiler";
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    Prng rng(seed);
    expect_native_identical(workloads::random_program_2d(rng, 16, 3));
  }
}

TEST(NativeEngine, NoHierarchy) {
  // Without a simulator the native engine takes its bulk-counting fast
  // path (bare values kernels, one counter charge per range); totals
  // must still match the interpreter exactly.
  if (!compiler_available()) GTEST_SKIP() << "no host C compiler";
  const Program p = workloads::fig7_original(2048);
  const ExecResult ref = execute(p);
  for (const int cores : kCoreCounts) {
    ExecOptions opts;
    opts.cores = cores;
    NativeReport report;
    const ExecResult nat =
        execute_native(p, opts, test_native_opts(), &report);
    ASSERT_TRUE(report.native) << report.warning;
    EXPECT_EQ(ref.checksum, nat.checksum);
    EXPECT_EQ(ref.flops, nat.flops);
    EXPECT_EQ(ref.loads, nat.loads);
    EXPECT_EQ(ref.stores, nat.stores);
    EXPECT_EQ(ref.scalars, nat.scalars);
  }
}

TEST(NativeEngine, FastForwardEngagesIdentically) {
  // A size where the steady-state detector actually certifies and skips:
  // the native engine must fast-forward the same loops by the same
  // iteration counts as the VM (the protocol is shared; only the kernels
  // under it differ).
  if (!compiler_available()) GTEST_SKIP() << "no host C compiler";
  const Program p = workloads::sec21_both_loops(65536);
  const machine::MachineModel m = machine::origin2000_r10k().scaled(16);
  memsim::MemoryHierarchy hvm = m.make_hierarchy();
  ExecOptions opts;
  opts.hierarchy = &hvm;
  const ExecResult vm = execute_compiled(p, opts);
  ASSERT_GT(vm.fast_forward_events, 0u);

  memsim::MemoryHierarchy hnat = m.make_hierarchy();
  opts.hierarchy = &hnat;
  NativeReport report;
  const ExecResult nat = execute_native(p, opts, test_native_opts(), &report);
  ASSERT_TRUE(report.native) << report.warning;
  EXPECT_EQ(vm.fast_forward_events, nat.fast_forward_events);
  EXPECT_EQ(vm.fast_forwarded_iterations, nat.fast_forwarded_iterations);
  EXPECT_EQ(vm.checksum, nat.checksum);
  EXPECT_EQ(vm.loads, nat.loads);
  EXPECT_EQ(vm.stores, nat.stores);
  EXPECT_EQ(vm.profile.memory_bytes(), nat.profile.memory_bytes());
}

// Named Parallel* so the CI thread-sanitizer job's test filter picks it
// up: dlopen'ed kernels running concurrently on the pool's workers with
// private traces must be race-free and chunk-order deterministic.
TEST(ParallelNativeEngine, ChunkedKernelsMatchSerial) {
  if (!compiler_available()) GTEST_SKIP() << "no host C compiler";
  const machine::MachineModel m = machine::origin2000_r10k().scaled(16);
  for (const Program& p : {workloads::fig7_original(4096),
                           workloads::jacobi_chain(512, 4)}) {
    memsim::MemoryHierarchy hser = m.make_hierarchy();
    ExecOptions ser_opts;
    ser_opts.hierarchy = &hser;
    NativeReport ser_report;
    const ExecResult serial =
        execute_native(p, ser_opts, test_native_opts(), &ser_report);
    ASSERT_TRUE(ser_report.native) << ser_report.warning;
    for (const int cores : {2, 8}) {
      memsim::MemoryHierarchy hpar = m.make_hierarchy();
      ExecOptions par_opts;
      par_opts.hierarchy = &hpar;
      par_opts.cores = cores;
      NativeReport report;
      const ExecResult par =
          execute_native(p, par_opts, test_native_opts(), &report);
      ASSERT_TRUE(report.native) << report.warning;
      expect_identical(serial, par,
                       p.name() + " cores=" + std::to_string(cores));
      EXPECT_EQ(hser.load_count(), hpar.load_count());
      EXPECT_EQ(hser.store_count(), hpar.store_count());
    }
  }
}

TEST(NativeFallback, BrokenCompilerFallsBackToVm) {
  const Program p = workloads::fig7_original(1024);
  const ExecResult vm = execute_compiled(p);

  // A compiler override is honored as-is; a nonexistent one fails the
  // compile step and the engine degrades to the VM with a structured
  // warning -- same results, flagged provenance.
  NativeOptions opts = test_native_opts();
  opts.cache_dir = fresh_cache_dir("fallback");
  opts.compiler = "/nonexistent/bwc-test-cc";
  NativeReport report;
  const ExecResult nat = execute_native(p, {}, opts, &report);
  EXPECT_FALSE(report.native);
  EXPECT_FALSE(report.cache_hit);
  EXPECT_NE(report.warning.find("native-codegen-fallback"),
            std::string::npos)
      << report.warning;
  EXPECT_NE(report.warning.find("[compile-failed]"), std::string::npos)
      << report.warning;
  EXPECT_EQ(vm.checksum, nat.checksum);
  EXPECT_EQ(vm.flops, nat.flops);
  EXPECT_EQ(vm.loads, nat.loads);
  EXPECT_EQ(vm.stores, nat.stores);

  // A compiler that runs but fails (exit status, no object) reports the
  // same structured reason.
  opts.compiler = "/bin/false";
  const ExecResult nat2 = execute_native(p, {}, opts, &report);
  EXPECT_FALSE(report.native);
  EXPECT_NE(report.warning.find("[compile-failed]"), std::string::npos)
      << report.warning;
  EXPECT_EQ(vm.checksum, nat2.checksum);
}

TEST(NativeFallback, OutOfBoundsThrowsVmErrorNoFallback) {
  // Runtime errors are not toolchain errors: the native engine must
  // throw the VM's exact out-of-bounds message, never silently degrade.
  if (!compiler_available()) GTEST_SKIP() << "no host C compiler";
  Program p("oob_native");
  const ArrayId a = p.add_array("a", {4});
  p.add_scalar("x");
  p.append(loop("i", 1, 5, assign("x", at(a, v("i")))));

  std::string vm_message;
  try {
    execute_compiled(p);
    FAIL() << "VM did not throw";
  } catch (const Error& e) {
    vm_message = e.what();
  }
  try {
    execute_native(p, {}, test_native_opts());
    FAIL() << "native engine did not throw";
  } catch (const Error& e) {
    EXPECT_EQ(vm_message, std::string(e.what()));
  }

  // Multi-dimensional subscripts take the generic locate path; same
  // contract.
  Program p2("oob_native_2d");
  const ArrayId b = p2.add_array("b", {4, 4});
  p2.add_scalar("y");
  p2.append(loop("i", 1, 5, assign("y", at(b, v("i"), v("i")))));
  std::string vm2;
  try {
    execute_compiled(p2);
    FAIL() << "VM did not throw";
  } catch (const Error& e) {
    vm2 = e.what();
  }
  try {
    execute_native(p2, {}, test_native_opts());
    FAIL() << "native engine did not throw";
  } catch (const Error& e) {
    EXPECT_EQ(vm2, std::string(e.what()));
  }
}

TEST(NativeCache, SecondRunIsPureDlopen) {
  if (!compiler_available()) GTEST_SKIP() << "no host C compiler";
  const Program p = workloads::sec21_both_loops(2048);
  NativeOptions opts = test_native_opts();
  opts.cache_dir = fresh_cache_dir("cache-hit");

  NativeReport first;
  const ExecResult r1 = execute_native(p, {}, opts, &first);
  ASSERT_TRUE(first.native) << first.warning;
  EXPECT_FALSE(first.cache_hit);
  EXPECT_FALSE(first.compiler.empty());
  ASSERT_TRUE(std::filesystem::exists(first.object_path));

  NativeReport second;
  const ExecResult r2 = execute_native(p, {}, opts, &second);
  ASSERT_TRUE(second.native) << second.warning;
  EXPECT_TRUE(second.cache_hit);
  // No compiler ran: a hit is dlopen only.
  EXPECT_TRUE(second.compiler.empty());
  EXPECT_EQ(first.object_path, second.object_path);
  EXPECT_EQ(r1.checksum, r2.checksum);
  EXPECT_EQ(r1.flops, r2.flops);
  EXPECT_EQ(r1.loads, r2.loads);
  EXPECT_EQ(r1.stores, r2.stores);
}

TEST(NativeCache, StaleEntryEvictedAndRecompiled) {
  if (!compiler_available()) GTEST_SKIP() << "no host C compiler";
  const Program p = workloads::sec21_both_loops(1024);
  NativeOptions opts = test_native_opts();
  opts.cache_dir = fresh_cache_dir("cache-evict");

  NativeReport first;
  const ExecResult r1 = execute_native(p, {}, opts, &first);
  ASSERT_TRUE(first.native) << first.warning;

  // Tamper with the cached source: the object no longer corresponds to
  // its recorded source, so the next lookup must evict and recompile
  // rather than trust the fingerprint-named file.
  const std::string c_path =
      first.object_path.substr(0, first.object_path.size() - 3) + ".c";
  ASSERT_TRUE(std::filesystem::exists(c_path));
  {
    std::ofstream out(c_path, std::ios::app);
    out << "/* tampered */\n";
  }
  NativeReport second;
  const ExecResult r2 = execute_native(p, {}, opts, &second);
  ASSERT_TRUE(second.native) << second.warning;
  EXPECT_FALSE(second.cache_hit);
  EXPECT_FALSE(second.compiler.empty());
  EXPECT_EQ(r1.checksum, r2.checksum);

  // The cache is healthy again: content restored, next run hits.
  std::ifstream in(c_path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  EXPECT_EQ(ss.str(), emit_c_source(lower(p)));
  NativeReport third;
  execute_native(p, {}, opts, &third);
  EXPECT_TRUE(third.cache_hit);
}

TEST(NativeCache, EmissionAndFingerprintDeterministic) {
  const LoweredProgram lowered = lower(workloads::fig7_original(512));
  const std::string s1 = emit_c_source(lowered);
  const std::string s2 = emit_c_source(lowered);
  EXPECT_EQ(s1, s2);
  EXPECT_EQ(native_fingerprint(s1), native_fingerprint(s2));
  EXPECT_EQ(native_fingerprint(s1).size(), 32u);
  // The fingerprint covers the ABI version and compile flags through the
  // emitted header, so either changing invalidates every cached object.
  EXPECT_NE(s1.find("abi: "), std::string::npos);
  EXPECT_NE(s1.find("cflags: "), std::string::npos);
  EXPECT_NE(native_fingerprint(s1), native_fingerprint(s1 + " "));
}

TEST(NativeEngine, MeasureEngineNativeMatchesCompiled) {
  if (!compiler_available()) GTEST_SKIP() << "no host C compiler";
  const Program p = workloads::fig7_original(4096);
  const machine::MachineModel m =
      machine::origin2000_r10k().scaled(16).with_cores(4);
  const model::Measurement compiled = model::measure(p, m);
  model::MeasureOptions opts;
  opts.engine = model::ExecEngine::kNative;
  opts.native = test_native_opts();
  NativeReport report;
  opts.native_report = &report;
  const model::Measurement native = model::measure(p, m, opts);
  ASSERT_TRUE(report.native) << report.warning;
  EXPECT_EQ(compiled.exec.checksum, native.exec.checksum);
  EXPECT_EQ(compiled.profile.memory_bytes(), native.profile.memory_bytes());
  EXPECT_EQ(compiled.time.total_s, native.time.total_s);
  EXPECT_EQ(compiled.balance.bytes_per_flop, native.balance.bytes_per_flop);
}

}  // namespace
}  // namespace bwc::runtime
