// Tests for the bwc::pass layer: PipelineSpec parsing, the pass registry,
// ordering equivalence against hand-called transforms, analysis-cache
// correctness (on/off equivalence, stale-analysis auditing), structured
// reports, and the legacy render_log compatibility freeze.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "bwc/core/optimizer.h"
#include "bwc/fusion/solvers.h"
#include "bwc/ir/dsl.h"
#include "bwc/ir/printer.h"
#include "bwc/pass/pass_manager.h"
#include "bwc/pass/passes.h"
#include "bwc/pass/pipeline_spec.h"
#include "bwc/runtime/interpreter.h"
#include "bwc/support/error.h"
#include "bwc/support/prng.h"
#include "bwc/transform/distribute.h"
#include "bwc/transform/fuse.h"
#include "bwc/transform/interchange.h"
#include "bwc/transform/regrouping.h"
#include "bwc/transform/scalar_replacement.h"
#include "bwc/transform/storage_reduction.h"
#include "bwc/transform/store_elimination.h"
#include "bwc/workloads/extra_programs.h"
#include "bwc/workloads/paper_programs.h"
#include "bwc/workloads/random_programs.h"

namespace bwc::pass {
namespace {

using namespace ir::dsl;  // NOLINT
using ir::Program;

// -- PipelineSpec parsing -----------------------------------------------------

TEST(PipelineSpec, ParsesNamesAndParams) {
  const PipelineSpec spec = parse_pipeline_spec(
      "interchange, fuse(solver=exact, shift=1), reduce-storage");
  ASSERT_EQ(spec.passes.size(), 3u);
  EXPECT_EQ(spec.passes[0].name, "interchange");
  EXPECT_TRUE(spec.passes[0].params.empty());
  EXPECT_EQ(spec.passes[1].name, "fuse");
  EXPECT_EQ(spec.passes[1].param("solver"), "exact");
  EXPECT_EQ(spec.passes[1].param("shift"), "1");
  EXPECT_EQ(spec.passes[1].param("absent", "fallback"), "fallback");
  EXPECT_EQ(spec.passes[2].name, "reduce-storage");
}

TEST(PipelineSpec, ToStringRoundTrips) {
  const std::string canonical =
      "interchange,fuse(solver=exact,shift=1),reduce-storage";
  const PipelineSpec spec = parse_pipeline_spec(canonical);
  EXPECT_EQ(spec.to_string(), canonical);
  EXPECT_EQ(parse_pipeline_spec(spec.to_string()).to_string(), canonical);
}

TEST(PipelineSpec, EmptySpecIsEmptyPipeline) {
  EXPECT_TRUE(parse_pipeline_spec("").empty());
  EXPECT_TRUE(parse_pipeline_spec("  ").empty());
}

TEST(PipelineSpec, RejectsMalformedInput) {
  EXPECT_THROW(parse_pipeline_spec("fuse(solver=exact"), Error);
  EXPECT_THROW(parse_pipeline_spec("fuse)"), Error);
  EXPECT_THROW(parse_pipeline_spec("fuse,,reduce-storage"), Error);
  EXPECT_THROW(parse_pipeline_spec("fuse(solver)"), Error);
  EXPECT_THROW(parse_pipeline_spec("fuse(solver=)"), Error);
  EXPECT_THROW(parse_pipeline_spec("Fuse"), Error);
  EXPECT_THROW(parse_pipeline_spec("fuse(a=(b))"), Error);
}

TEST(PassRegistry, RejectsUnknownPassesAndParams) {
  EXPECT_THROW(build_pipeline(parse_pipeline_spec("bogus")), Error);
  EXPECT_THROW(build_pipeline(parse_pipeline_spec("fuse(bogus=1)")), Error);
  EXPECT_THROW(build_pipeline(parse_pipeline_spec("fuse(solver=none)")),
               Error);
  EXPECT_THROW(build_pipeline(parse_pipeline_spec("fuse(shift=2)")), Error);
  EXPECT_THROW(build_pipeline(parse_pipeline_spec("interchange(x=1)")),
               Error);
  core::OptimizerOptions opts;
  opts.passes = "bogus";
  EXPECT_THROW(core::optimize(workloads::fig7_original(16), opts), Error);
}

TEST(PassRegistry, BuildsEveryKnownPass) {
  const PipelineSpec spec = parse_pipeline_spec(
      "interchange,fuse(solver=greedy,shift=1,max-shift=4),reduce-storage,"
      "eliminate-stores,scalar-replace,regroup,distribute");
  const auto passes = build_pipeline(spec);
  ASSERT_EQ(passes.size(), 7u);
  for (std::size_t i = 0; i < passes.size(); ++i)
    EXPECT_EQ(passes[i]->name(), spec.passes[i].name);
}

// -- Ordering equivalence against hand-called transforms ----------------------

/// Apply one spec entry the way the pre-pass-manager code did, calling the
/// transform entry points directly.
void hand_apply(Program& p, const PassSpec& spec) {
  if (spec.name == "interchange") {
    transform::InterchangeResult r = transform::auto_interchange(p);
    if (!r.interchanged.empty()) p = std::move(r.program);
  } else if (spec.name == "fuse") {
    fusion::FusionGraphOptions go;
    go.allow_shifted_fusion = spec.param("shift") == "1";
    const fusion::FusionGraph graph = fusion::build_fusion_graph(p, go);
    const std::string solver = spec.param("solver", "best");
    fusion::FusionPlan plan;
    if (solver == "best") {
      plan = fusion::best_fusion(graph);
    } else if (solver == "exact") {
      plan = fusion::exact_enumeration(graph);
    } else if (solver == "greedy") {
      plan = fusion::greedy_fusion(graph);
    } else if (solver == "bisection") {
      plan = fusion::recursive_bisection(graph);
    } else if (solver == "edge-weighted") {
      plan = fusion::edge_weighted_baseline(graph);
    } else {
      FAIL() << "unexpected solver " << solver;
    }
    if (plan.num_partitions < graph.node_count())
      p = transform::apply_fusion(p, graph, plan);
  } else if (spec.name == "reduce-storage") {
    transform::StorageReductionResult r = transform::reduce_storage(p);
    if (!r.actions.empty()) p = std::move(r.program);
  } else if (spec.name == "eliminate-stores") {
    transform::StoreEliminationResult r = transform::eliminate_stores(p);
    if (!r.eliminated.empty()) p = std::move(r.program);
  } else if (spec.name == "scalar-replace") {
    transform::ScalarReplacementResult r = transform::replace_scalars(p);
    if (!r.actions.empty()) p = std::move(r.program);
  } else if (spec.name == "regroup") {
    transform::RegroupingResult r = transform::regroup_all(p);
    if (!r.actions.empty()) p = std::move(r.program);
  } else if (spec.name == "distribute") {
    transform::DistributionResult r = transform::distribute_loops(p);
    if (r.loops_after > r.loops_before) p = std::move(r.program);
  } else {
    FAIL() << "unexpected pass " << spec.name;
  }
}

/// The pipeline (via PipelineSpec + optimize) must produce a bit-identical
/// program to hand-calling the transforms in the same order, with the
/// analysis cache on and off.
void expect_matches_hand_calls(const Program& original,
                               const std::string& spec_text) {
  const PipelineSpec spec = parse_pipeline_spec(spec_text);
  Program hand = original.clone();
  for (const PassSpec& pass : spec.passes) hand_apply(hand, pass);

  for (const bool cache : {true, false}) {
    core::OptimizerOptions opts;
    opts.passes = spec_text;
    opts.verify = false;
    opts.cache_analyses = cache;
    const core::OptimizeResult result = core::optimize(original, opts);
    EXPECT_TRUE(ir::equal(hand, result.program))
        << "pipeline \"" << spec_text << "\" (cache=" << cache
        << ") diverged from hand-called transforms:\n-- hand:\n"
        << ir::to_string(hand) << "\n-- pipeline:\n"
        << ir::to_string(result.program);
    const double c0 = runtime::execute(original).checksum;
    const double c1 = runtime::execute(result.program).checksum;
    EXPECT_NEAR(c0, c1, 1e-9 * (std::abs(c0) + 1.0)) << spec_text;
  }
}

TEST(PassOrdering, DefaultPipelineOnPaperWorkloads) {
  const core::OptimizerOptions defaults;
  const std::string spec = core::default_pipeline(defaults);
  EXPECT_EQ(spec, "fuse(solver=best),reduce-storage,eliminate-stores");
  expect_matches_hand_calls(workloads::fig7_original(128), spec);
  expect_matches_hand_calls(workloads::fig6_original(24), spec);
  expect_matches_hand_calls(workloads::sec21_both_loops(128), spec);
  expect_matches_hand_calls(workloads::blur_sharpen(64), spec);
}

TEST(PassOrdering, NonDefaultOrderings) {
  expect_matches_hand_calls(
      workloads::fig7_original(128),
      "eliminate-stores,fuse(solver=greedy),reduce-storage");
  expect_matches_hand_calls(workloads::fig6_original(24),
                            "reduce-storage,fuse(solver=exact),scalar-replace");
  expect_matches_hand_calls(workloads::blur_sharpen(64),
                            "distribute,fuse(solver=best),regroup");
}

TEST(PassOrdering, RandomizedSweep) {
  // Random programs through random pipelines: any ordering of the pass
  // pool must match the hand-called sequence bit for bit and preserve
  // semantics.
  const std::vector<std::string> pool = {
      "interchange",       "fuse(solver=best)", "fuse(solver=greedy)",
      "fuse(solver=edge-weighted)", "reduce-storage",
      "eliminate-stores",  "scalar-replace",    "regroup",
      "distribute"};
  Prng rng(20260807);
  for (int trial = 0; trial < 25; ++trial) {
    workloads::RandomProgramParams params;
    params.num_loops = 2 + static_cast<int>(rng.uniform(5));
    params.num_arrays = 2 + static_cast<int>(rng.uniform(4));
    params.n = 24;
    const Program p = workloads::random_program(rng, params);
    std::string spec;
    const int length = 1 + static_cast<int>(rng.uniform(5));
    for (int k = 0; k < length; ++k) {
      if (k > 0) spec += ",";
      spec += pool[static_cast<std::size_t>(rng.uniform(pool.size()))];
    }
    SCOPED_TRACE("trial " + std::to_string(trial) + ": " + spec);
    expect_matches_hand_calls(p, spec);
  }
}

TEST(PassOrdering, VerifierDoesNotChangeTheResult) {
  for (const bool verify : {true, false}) {
    core::OptimizerOptions opts;
    opts.verify = verify;
    const core::OptimizeResult r =
        core::optimize(workloads::fig6_original(24), opts);
    const core::OptimizeResult base =
        core::optimize(workloads::fig6_original(24));
    EXPECT_TRUE(ir::equal(r.program, base.program)) << verify;
  }
}

// -- Analysis cache -----------------------------------------------------------

TEST(AnalysisCache, CachingIsObservableInStats) {
  core::OptimizerOptions opts;
  const core::OptimizeResult warm =
      core::optimize(workloads::fig6_original(24), opts);
  EXPECT_GT(warm.pipeline.analysis.hits, 0u);
  EXPECT_GT(warm.pipeline.analysis.misses, 0u);
  EXPECT_GT(warm.pipeline.analysis.invalidations, 0u);

  opts.cache_analyses = false;
  const core::OptimizeResult cold =
      core::optimize(workloads::fig6_original(24), opts);
  EXPECT_EQ(cold.pipeline.analysis.hits, 0u);
  EXPECT_GT(cold.pipeline.analysis.misses, warm.pipeline.analysis.misses);
}

/// A pass that mutates the program but claims it preserved every analysis:
/// the audit mode must catch the stale cache entries it leaves behind.
class LyingAppendPass : public Pass {
 public:
  explicit LyingAppendPass(bool lie) : lie_(lie) {}
  std::string name() const override { return "lying-append"; }
  std::string label() const override { return "lying append"; }
  PassResult run(ir::Program& program, AnalysisManager& am,
                 PassReport& report) override {
    (void)am;
    report.note("append", "appended a scalar statement");
    program.add_scalar("lie_s");
    program.append(assign("lie_s", lit(1.0)));
    PassResult result;
    result.changed = true;
    result.preserved =
        lie_ ? PreservedAnalyses::all() : PreservedAnalyses::none();
    return result;
  }

 private:
  bool lie_;
};

TEST(AnalysisCache, AuditCatchesSkippedInvalidation) {
  PipelineOptions options;
  options.verify = false;
  options.audit_analyses = true;
  PassManager manager(options);
  manager.add(std::make_unique<LyingAppendPass>(/*lie=*/true));
  Program p = workloads::fig7_original(64);
  try {
    manager.run(p);
    FAIL() << "stale analysis was not detected";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("stale analysis"),
              std::string::npos)
        << e.what();
  }
}

TEST(AnalysisCache, AuditAcceptsDeclaredInvalidation) {
  PipelineOptions options;
  options.verify = false;
  options.audit_analyses = true;
  PassManager manager(options);
  manager.add(std::make_unique<LyingAppendPass>(/*lie=*/false));
  Program p = workloads::fig7_original(64);
  const PipelineReport report = manager.run(p);
  ASSERT_EQ(report.passes.size(), 1u);
  EXPECT_TRUE(report.passes[0].changed);
}

TEST(AnalysisCache, AuditAcceptsTheDefaultPipeline) {
  core::OptimizerOptions opts;
  opts.auto_interchange = true;
  opts.scalar_replacement = true;
  PipelineOptions options;
  options.audit_analyses = true;
  PassManager manager(options);
  manager.add(build_pipeline(parse_pipeline_spec(
      "interchange,fuse(solver=best),reduce-storage,eliminate-stores,"
      "scalar-replace")));
  for (auto* make : {workloads::fig6_original, workloads::fig7_original}) {
    Program p = make(24);
    EXPECT_NO_THROW(manager.run(p));
  }
}

// -- Structured reports -------------------------------------------------------

TEST(PassReports, RecordPerPassFacts) {
  const core::OptimizeResult result =
      core::optimize(workloads::fig6_original(24));
  ASSERT_EQ(result.pipeline.passes.size(), 3u);
  const PassReport& fuse = result.pipeline.passes[0];
  EXPECT_EQ(fuse.pass, "fuse");
  EXPECT_EQ(fuse.label, "fusion");
  EXPECT_TRUE(fuse.changed);
  EXPECT_GE(fuse.wall_ms, 0.0);
  EXPECT_GT(fuse.ir_before.loops, fuse.ir_after.loops);
  EXPECT_GE(fuse.traffic_bound_before, 0);
  EXPECT_GE(fuse.traffic_bound_after, 0);
  ASSERT_FALSE(fuse.remarks.empty());
  EXPECT_EQ(fuse.remarks[0].code, "fusion-applied");
  EXPECT_EQ(fuse.remarks[0].kind, RemarkKind::kApplied);
  EXPECT_TRUE(fuse.verify.ran);

  // Storage reduction on fig6 shrinks the referenced footprint: the
  // predicted memory-traffic delta must be negative.
  const PassReport& storage = result.pipeline.passes[1];
  EXPECT_EQ(storage.pass, "reduce-storage");
  EXPECT_TRUE(storage.changed);
  EXPECT_LT(storage.traffic_bound_delta(), 0) << storage.traffic_bound_before;
  EXPECT_LT(storage.ir_after.referenced_bytes,
            storage.ir_before.referenced_bytes);
}

TEST(PassReports, UnchangedPassKeepsStatsAndSkipsVerify) {
  core::OptimizerOptions opts;
  opts.passes = "reduce-storage";
  const core::OptimizeResult result =
      core::optimize(workloads::fig7_original(64), opts);
  ASSERT_EQ(result.pipeline.passes.size(), 1u);
  const PassReport& r = result.pipeline.passes[0];
  EXPECT_FALSE(r.changed);
  EXPECT_FALSE(r.verify.ran);
  EXPECT_EQ(r.traffic_bound_before, r.traffic_bound_after);
  EXPECT_EQ(r.ir_before.referenced_bytes, r.ir_after.referenced_bytes);
  ASSERT_EQ(r.remarks.size(), 1u);
  EXPECT_EQ(r.remarks[0].kind, RemarkKind::kMissed);
}

TEST(PassReports, PlanIsExtractedFromExplicitPipelines) {
  core::OptimizerOptions opts;
  opts.passes = "eliminate-stores,fuse(solver=exact)";
  const core::OptimizeResult result =
      core::optimize(workloads::fig7_original(64), opts);
  EXPECT_EQ(result.plan.num_partitions, 1);
  EXPECT_EQ(result.plan.solver, "exact");
}

TEST(PassReports, JsonRenderingIsWellFormedEnoughToFreeze) {
  const core::OptimizeResult result =
      core::optimize(workloads::fig7_original(64));
  const std::string json = result.pipeline.to_json("fig7", "default");
  EXPECT_NE(json.find("\"schema\": \"bwc-remarks-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"pass\": \"fuse\""), std::string::npos);
  EXPECT_NE(json.find("\"analysis_cache\""), std::string::npos);
  EXPECT_NE(json.find("\"traffic_bound_delta_bytes\""), std::string::npos);
}

// -- Legacy log compatibility -------------------------------------------------

TEST(LegacyLog, RenderLogIsByteIdenticalToPreRefactorOutput) {
  // Frozen from the pre-pass-manager optimizer. Do not edit these strings
  // to make the test pass: they are the compatibility contract. The freeze
  // predates the static legality prover, so pin trace-only verification.
  core::OptimizerOptions legacy;
  legacy.static_verify = pass::StaticVerifyMode::kOff;
  const core::OptimizeResult fig7 =
      core::optimize(workloads::fig7_original(1000), legacy);
  const std::vector<std::string> expected_fig7 = {
      "fusion (best(exact)): 2 loops -> 1 partitions; arrays loaded 3 -> 2",
      "verify (fusion): translation certified, 4002 instance(s) checked",
      "storage reduction: no candidate arrays",
      "store elimination: removed writebacks to res",
      "verify (store elimination): store-elimination certified, 4002 "
      "instance(s) checked",
  };
  EXPECT_EQ(fig7.log_lines(), expected_fig7);
  std::string rendered;
  for (const auto& line : expected_fig7) rendered += "  - " + line + "\n";
  EXPECT_EQ(core::render_log(fig7), rendered);

  const core::OptimizeResult fig6 =
      core::optimize(workloads::fig6_original(2000), legacy);
  const std::vector<std::string> expected_fig6 = {
      "fusion (best(exact)): 4 loops -> 1 partitions; arrays loaded 7 -> 2",
      "verify (fusion): translation skipped: instance-level check needs "
      "~44000001 events, budget is 2000000",
      "storage reduction: shrank array a to column buffers (cur/prev), "
      "peeled column(s) 1",
      "storage reduction: contracted array b to scalar b_s",
      "storage reduction: referenced array bytes 64000000 -> 48000",
      "verify (storage reduction): storage-reduction skipped: "
      "instance-level check needs ~60000001 events, budget is 2000000",
      "store elimination: no candidate arrays",
  };
  EXPECT_EQ(fig6.log_lines(), expected_fig6);
}

TEST(LegacyLog, MulticorePreludeLineIsPreserved) {
  core::OptimizerOptions opts;
  opts.cores = 4;
  const core::OptimizeResult result =
      core::optimize(workloads::fig7_original(64), opts);
  ASSERT_FALSE(result.log_lines().empty());
  EXPECT_EQ(result.log_lines()[0],
            "target: 4 cores (minimizing shared-bus traffic)");
}

TEST(LegacyLog, NotesNeverAppearInRenderLog) {
  core::OptimizerOptions opts;
  opts.auto_interchange = true;  // no candidates in fig7: note-only pass
  const core::OptimizeResult result =
      core::optimize(workloads::fig7_original(64), opts);
  for (const auto& line : result.log_lines())
    EXPECT_EQ(line.find("interchange"), std::string::npos) << line;
  bool saw_note = false;
  for (const auto& report : result.pipeline.passes) {
    for (const auto& remark : report.remarks)
      saw_note = saw_note || remark.kind == RemarkKind::kNote;
  }
  EXPECT_TRUE(saw_note);
}

}  // namespace
}  // namespace bwc::pass
