file(REMOVE_RECURSE
  "../bench/ablation_cache_policies"
  "../bench/ablation_cache_policies.pdb"
  "CMakeFiles/ablation_cache_policies.dir/ablation_cache_policies.cpp.o"
  "CMakeFiles/ablation_cache_policies.dir/ablation_cache_policies.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_cache_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
