# Empty dependencies file for fig_machine_balance_measurement.
# This may be replaced when dependencies are built.
