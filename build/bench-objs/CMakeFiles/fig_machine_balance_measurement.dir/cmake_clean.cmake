file(REMOVE_RECURSE
  "../bench/fig_machine_balance_measurement"
  "../bench/fig_machine_balance_measurement.pdb"
  "CMakeFiles/fig_machine_balance_measurement.dir/fig_machine_balance_measurement.cpp.o"
  "CMakeFiles/fig_machine_balance_measurement.dir/fig_machine_balance_measurement.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_machine_balance_measurement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
