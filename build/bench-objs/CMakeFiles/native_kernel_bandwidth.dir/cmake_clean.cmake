file(REMOVE_RECURSE
  "../bench/native_kernel_bandwidth"
  "../bench/native_kernel_bandwidth.pdb"
  "CMakeFiles/native_kernel_bandwidth.dir/native_kernel_bandwidth.cpp.o"
  "CMakeFiles/native_kernel_bandwidth.dir/native_kernel_bandwidth.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/native_kernel_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
