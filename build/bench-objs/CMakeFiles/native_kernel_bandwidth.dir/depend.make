# Empty dependencies file for native_kernel_bandwidth.
# This may be replaced when dependencies are built.
