file(REMOVE_RECURSE
  "../bench/native_write_vs_read"
  "../bench/native_write_vs_read.pdb"
  "CMakeFiles/native_write_vs_read.dir/native_write_vs_read.cpp.o"
  "CMakeFiles/native_write_vs_read.dir/native_write_vs_read.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/native_write_vs_read.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
