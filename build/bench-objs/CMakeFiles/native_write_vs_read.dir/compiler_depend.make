# Empty compiler generated dependencies file for native_write_vs_read.
# This may be replaced when dependencies are built.
