file(REMOVE_RECURSE
  "../bench/fig4_fusion_example"
  "../bench/fig4_fusion_example.pdb"
  "CMakeFiles/fig4_fusion_example.dir/fig4_fusion_example.cpp.o"
  "CMakeFiles/fig4_fusion_example.dir/fig4_fusion_example.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_fusion_example.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
