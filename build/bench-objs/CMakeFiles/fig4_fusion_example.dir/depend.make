# Empty dependencies file for fig4_fusion_example.
# This may be replaced when dependencies are built.
