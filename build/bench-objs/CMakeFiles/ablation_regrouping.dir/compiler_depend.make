# Empty compiler generated dependencies file for ablation_regrouping.
# This may be replaced when dependencies are built.
