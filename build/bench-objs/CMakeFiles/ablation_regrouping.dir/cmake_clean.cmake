file(REMOVE_RECURSE
  "../bench/ablation_regrouping"
  "../bench/ablation_regrouping.pdb"
  "CMakeFiles/ablation_regrouping.dir/ablation_regrouping.cpp.o"
  "CMakeFiles/ablation_regrouping.dir/ablation_regrouping.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_regrouping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
