file(REMOVE_RECURSE
  "../bench/ablation_pipeline_passes"
  "../bench/ablation_pipeline_passes.pdb"
  "CMakeFiles/ablation_pipeline_passes.dir/ablation_pipeline_passes.cpp.o"
  "CMakeFiles/ablation_pipeline_passes.dir/ablation_pipeline_passes.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_pipeline_passes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
