# Empty dependencies file for ablation_pipeline_passes.
# This may be replaced when dependencies are built.
