# Empty compiler generated dependencies file for fig_required_bandwidth.
# This may be replaced when dependencies are built.
