file(REMOVE_RECURSE
  "../bench/fig_required_bandwidth"
  "../bench/fig_required_bandwidth.pdb"
  "CMakeFiles/fig_required_bandwidth.dir/fig_required_bandwidth.cpp.o"
  "CMakeFiles/fig_required_bandwidth.dir/fig_required_bandwidth.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_required_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
