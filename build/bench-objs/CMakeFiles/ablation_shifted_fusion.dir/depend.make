# Empty dependencies file for ablation_shifted_fusion.
# This may be replaced when dependencies are built.
