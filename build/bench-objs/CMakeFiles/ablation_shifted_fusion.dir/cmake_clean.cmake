file(REMOVE_RECURSE
  "../bench/ablation_shifted_fusion"
  "../bench/ablation_shifted_fusion.pdb"
  "CMakeFiles/ablation_shifted_fusion.dir/ablation_shifted_fusion.cpp.o"
  "CMakeFiles/ablation_shifted_fusion.dir/ablation_shifted_fusion.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_shifted_fusion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
