# Empty dependencies file for fig_latency_wall.
# This may be replaced when dependencies are built.
