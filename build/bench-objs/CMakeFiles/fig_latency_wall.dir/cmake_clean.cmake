file(REMOVE_RECURSE
  "../bench/fig_latency_wall"
  "../bench/fig_latency_wall.pdb"
  "CMakeFiles/fig_latency_wall.dir/fig_latency_wall.cpp.o"
  "CMakeFiles/fig_latency_wall.dir/fig_latency_wall.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_latency_wall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
