file(REMOVE_RECURSE
  "../bench/fig2_ratios"
  "../bench/fig2_ratios.pdb"
  "CMakeFiles/fig2_ratios.dir/fig2_ratios.cpp.o"
  "CMakeFiles/fig2_ratios.dir/fig2_ratios.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_ratios.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
