# Empty dependencies file for fig2_ratios.
# This may be replaced when dependencies are built.
