# Empty compiler generated dependencies file for fig_sp_utilization.
# This may be replaced when dependencies are built.
