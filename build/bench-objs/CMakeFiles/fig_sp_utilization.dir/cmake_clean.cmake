file(REMOVE_RECURSE
  "../bench/fig_sp_utilization"
  "../bench/fig_sp_utilization.pdb"
  "CMakeFiles/fig_sp_utilization.dir/fig_sp_utilization.cpp.o"
  "CMakeFiles/fig_sp_utilization.dir/fig_sp_utilization.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_sp_utilization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
