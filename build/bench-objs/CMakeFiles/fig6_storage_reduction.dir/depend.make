# Empty dependencies file for fig6_storage_reduction.
# This may be replaced when dependencies are built.
