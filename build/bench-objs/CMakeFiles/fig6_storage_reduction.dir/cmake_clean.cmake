file(REMOVE_RECURSE
  "../bench/fig6_storage_reduction"
  "../bench/fig6_storage_reduction.pdb"
  "CMakeFiles/fig6_storage_reduction.dir/fig6_storage_reduction.cpp.o"
  "CMakeFiles/fig6_storage_reduction.dir/fig6_storage_reduction.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_storage_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
