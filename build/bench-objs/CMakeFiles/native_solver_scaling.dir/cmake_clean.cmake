file(REMOVE_RECURSE
  "../bench/native_solver_scaling"
  "../bench/native_solver_scaling.pdb"
  "CMakeFiles/native_solver_scaling.dir/native_solver_scaling.cpp.o"
  "CMakeFiles/native_solver_scaling.dir/native_solver_scaling.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/native_solver_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
