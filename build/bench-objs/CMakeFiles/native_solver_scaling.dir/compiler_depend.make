# Empty compiler generated dependencies file for native_solver_scaling.
# This may be replaced when dependencies are built.
