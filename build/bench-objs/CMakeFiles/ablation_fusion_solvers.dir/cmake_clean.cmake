file(REMOVE_RECURSE
  "../bench/ablation_fusion_solvers"
  "../bench/ablation_fusion_solvers.pdb"
  "CMakeFiles/ablation_fusion_solvers.dir/ablation_fusion_solvers.cpp.o"
  "CMakeFiles/ablation_fusion_solvers.dir/ablation_fusion_solvers.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_fusion_solvers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
