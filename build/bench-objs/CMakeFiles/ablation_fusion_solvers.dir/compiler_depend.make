# Empty compiler generated dependencies file for ablation_fusion_solvers.
# This may be replaced when dependencies are built.
