file(REMOVE_RECURSE
  "../bench/fig_sec21_write_vs_read"
  "../bench/fig_sec21_write_vs_read.pdb"
  "CMakeFiles/fig_sec21_write_vs_read.dir/fig_sec21_write_vs_read.cpp.o"
  "CMakeFiles/fig_sec21_write_vs_read.dir/fig_sec21_write_vs_read.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_sec21_write_vs_read.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
