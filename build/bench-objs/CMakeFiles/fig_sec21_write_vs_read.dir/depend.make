# Empty dependencies file for fig_sec21_write_vs_read.
# This may be replaced when dependencies are built.
