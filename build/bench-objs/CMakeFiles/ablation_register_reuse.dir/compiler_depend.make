# Empty compiler generated dependencies file for ablation_register_reuse.
# This may be replaced when dependencies are built.
