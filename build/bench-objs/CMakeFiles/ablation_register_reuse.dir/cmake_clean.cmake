file(REMOVE_RECURSE
  "../bench/ablation_register_reuse"
  "../bench/ablation_register_reuse.pdb"
  "CMakeFiles/ablation_register_reuse.dir/ablation_register_reuse.cpp.o"
  "CMakeFiles/ablation_register_reuse.dir/ablation_register_reuse.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_register_reuse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
