file(REMOVE_RECURSE
  "../bench/fig1_balance"
  "../bench/fig1_balance.pdb"
  "CMakeFiles/fig1_balance.dir/fig1_balance.cpp.o"
  "CMakeFiles/fig1_balance.dir/fig1_balance.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_balance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
