file(REMOVE_RECURSE
  "../bench/fig8_store_elimination"
  "../bench/fig8_store_elimination.pdb"
  "CMakeFiles/fig8_store_elimination.dir/fig8_store_elimination.cpp.o"
  "CMakeFiles/fig8_store_elimination.dir/fig8_store_elimination.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_store_elimination.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
