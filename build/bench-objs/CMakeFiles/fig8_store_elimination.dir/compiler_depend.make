# Empty compiler generated dependencies file for fig8_store_elimination.
# This may be replaced when dependencies are built.
