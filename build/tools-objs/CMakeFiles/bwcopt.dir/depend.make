# Empty dependencies file for bwcopt.
# This may be replaced when dependencies are built.
