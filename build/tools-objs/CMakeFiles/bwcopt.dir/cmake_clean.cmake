file(REMOVE_RECURSE
  "../tools/bwcopt"
  "../tools/bwcopt.pdb"
  "CMakeFiles/bwcopt.dir/bwcopt.cpp.o"
  "CMakeFiles/bwcopt.dir/bwcopt.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bwcopt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
