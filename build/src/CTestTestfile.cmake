# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("bwc/support")
subdirs("bwc/graph")
subdirs("bwc/memsim")
subdirs("bwc/machine")
subdirs("bwc/ir")
subdirs("bwc/runtime")
subdirs("bwc/analysis")
subdirs("bwc/fusion")
subdirs("bwc/transform")
subdirs("bwc/model")
subdirs("bwc/workloads")
subdirs("bwc/core")
