
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bwc/runtime/interpreter.cpp" "src/bwc/runtime/CMakeFiles/bwc_runtime.dir/interpreter.cpp.o" "gcc" "src/bwc/runtime/CMakeFiles/bwc_runtime.dir/interpreter.cpp.o.d"
  "/root/repo/src/bwc/runtime/recorder.cpp" "src/bwc/runtime/CMakeFiles/bwc_runtime.dir/recorder.cpp.o" "gcc" "src/bwc/runtime/CMakeFiles/bwc_runtime.dir/recorder.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bwc/support/CMakeFiles/bwc_support.dir/DependInfo.cmake"
  "/root/repo/build/src/bwc/ir/CMakeFiles/bwc_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/bwc/memsim/CMakeFiles/bwc_memsim.dir/DependInfo.cmake"
  "/root/repo/build/src/bwc/machine/CMakeFiles/bwc_machine.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
