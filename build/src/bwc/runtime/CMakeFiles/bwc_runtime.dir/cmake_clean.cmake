file(REMOVE_RECURSE
  "CMakeFiles/bwc_runtime.dir/interpreter.cpp.o"
  "CMakeFiles/bwc_runtime.dir/interpreter.cpp.o.d"
  "CMakeFiles/bwc_runtime.dir/recorder.cpp.o"
  "CMakeFiles/bwc_runtime.dir/recorder.cpp.o.d"
  "libbwc_runtime.a"
  "libbwc_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bwc_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
