# Empty compiler generated dependencies file for bwc_runtime.
# This may be replaced when dependencies are built.
