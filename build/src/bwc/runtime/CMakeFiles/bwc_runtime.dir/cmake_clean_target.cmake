file(REMOVE_RECURSE
  "libbwc_runtime.a"
)
