file(REMOVE_RECURSE
  "CMakeFiles/bwc_graph.dir/digraph.cpp.o"
  "CMakeFiles/bwc_graph.dir/digraph.cpp.o.d"
  "CMakeFiles/bwc_graph.dir/flow_network.cpp.o"
  "CMakeFiles/bwc_graph.dir/flow_network.cpp.o.d"
  "CMakeFiles/bwc_graph.dir/hyper_cut.cpp.o"
  "CMakeFiles/bwc_graph.dir/hyper_cut.cpp.o.d"
  "CMakeFiles/bwc_graph.dir/hypergraph.cpp.o"
  "CMakeFiles/bwc_graph.dir/hypergraph.cpp.o.d"
  "CMakeFiles/bwc_graph.dir/random_graphs.cpp.o"
  "CMakeFiles/bwc_graph.dir/random_graphs.cpp.o.d"
  "CMakeFiles/bwc_graph.dir/undirected_graph.cpp.o"
  "CMakeFiles/bwc_graph.dir/undirected_graph.cpp.o.d"
  "CMakeFiles/bwc_graph.dir/vertex_cut.cpp.o"
  "CMakeFiles/bwc_graph.dir/vertex_cut.cpp.o.d"
  "libbwc_graph.a"
  "libbwc_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bwc_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
