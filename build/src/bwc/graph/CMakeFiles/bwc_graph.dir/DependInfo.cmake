
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bwc/graph/digraph.cpp" "src/bwc/graph/CMakeFiles/bwc_graph.dir/digraph.cpp.o" "gcc" "src/bwc/graph/CMakeFiles/bwc_graph.dir/digraph.cpp.o.d"
  "/root/repo/src/bwc/graph/flow_network.cpp" "src/bwc/graph/CMakeFiles/bwc_graph.dir/flow_network.cpp.o" "gcc" "src/bwc/graph/CMakeFiles/bwc_graph.dir/flow_network.cpp.o.d"
  "/root/repo/src/bwc/graph/hyper_cut.cpp" "src/bwc/graph/CMakeFiles/bwc_graph.dir/hyper_cut.cpp.o" "gcc" "src/bwc/graph/CMakeFiles/bwc_graph.dir/hyper_cut.cpp.o.d"
  "/root/repo/src/bwc/graph/hypergraph.cpp" "src/bwc/graph/CMakeFiles/bwc_graph.dir/hypergraph.cpp.o" "gcc" "src/bwc/graph/CMakeFiles/bwc_graph.dir/hypergraph.cpp.o.d"
  "/root/repo/src/bwc/graph/random_graphs.cpp" "src/bwc/graph/CMakeFiles/bwc_graph.dir/random_graphs.cpp.o" "gcc" "src/bwc/graph/CMakeFiles/bwc_graph.dir/random_graphs.cpp.o.d"
  "/root/repo/src/bwc/graph/undirected_graph.cpp" "src/bwc/graph/CMakeFiles/bwc_graph.dir/undirected_graph.cpp.o" "gcc" "src/bwc/graph/CMakeFiles/bwc_graph.dir/undirected_graph.cpp.o.d"
  "/root/repo/src/bwc/graph/vertex_cut.cpp" "src/bwc/graph/CMakeFiles/bwc_graph.dir/vertex_cut.cpp.o" "gcc" "src/bwc/graph/CMakeFiles/bwc_graph.dir/vertex_cut.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bwc/support/CMakeFiles/bwc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
