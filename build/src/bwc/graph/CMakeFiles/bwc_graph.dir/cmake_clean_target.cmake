file(REMOVE_RECURSE
  "libbwc_graph.a"
)
