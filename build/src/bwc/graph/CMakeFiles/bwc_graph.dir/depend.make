# Empty dependencies file for bwc_graph.
# This may be replaced when dependencies are built.
