# Empty dependencies file for bwc_analysis.
# This may be replaced when dependencies are built.
