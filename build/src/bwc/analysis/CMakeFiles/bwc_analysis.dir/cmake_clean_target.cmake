file(REMOVE_RECURSE
  "libbwc_analysis.a"
)
