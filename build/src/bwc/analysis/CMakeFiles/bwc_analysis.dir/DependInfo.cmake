
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bwc/analysis/access_summary.cpp" "src/bwc/analysis/CMakeFiles/bwc_analysis.dir/access_summary.cpp.o" "gcc" "src/bwc/analysis/CMakeFiles/bwc_analysis.dir/access_summary.cpp.o.d"
  "/root/repo/src/bwc/analysis/dependence.cpp" "src/bwc/analysis/CMakeFiles/bwc_analysis.dir/dependence.cpp.o" "gcc" "src/bwc/analysis/CMakeFiles/bwc_analysis.dir/dependence.cpp.o.d"
  "/root/repo/src/bwc/analysis/liveness.cpp" "src/bwc/analysis/CMakeFiles/bwc_analysis.dir/liveness.cpp.o" "gcc" "src/bwc/analysis/CMakeFiles/bwc_analysis.dir/liveness.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bwc/support/CMakeFiles/bwc_support.dir/DependInfo.cmake"
  "/root/repo/build/src/bwc/ir/CMakeFiles/bwc_ir.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
