file(REMOVE_RECURSE
  "CMakeFiles/bwc_analysis.dir/access_summary.cpp.o"
  "CMakeFiles/bwc_analysis.dir/access_summary.cpp.o.d"
  "CMakeFiles/bwc_analysis.dir/dependence.cpp.o"
  "CMakeFiles/bwc_analysis.dir/dependence.cpp.o.d"
  "CMakeFiles/bwc_analysis.dir/liveness.cpp.o"
  "CMakeFiles/bwc_analysis.dir/liveness.cpp.o.d"
  "libbwc_analysis.a"
  "libbwc_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bwc_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
