# Empty compiler generated dependencies file for bwc_fusion.
# This may be replaced when dependencies are built.
