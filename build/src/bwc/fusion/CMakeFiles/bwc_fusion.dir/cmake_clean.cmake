file(REMOVE_RECURSE
  "CMakeFiles/bwc_fusion.dir/dot_export.cpp.o"
  "CMakeFiles/bwc_fusion.dir/dot_export.cpp.o.d"
  "CMakeFiles/bwc_fusion.dir/fusion_graph.cpp.o"
  "CMakeFiles/bwc_fusion.dir/fusion_graph.cpp.o.d"
  "CMakeFiles/bwc_fusion.dir/kway_reduction.cpp.o"
  "CMakeFiles/bwc_fusion.dir/kway_reduction.cpp.o.d"
  "CMakeFiles/bwc_fusion.dir/solvers.cpp.o"
  "CMakeFiles/bwc_fusion.dir/solvers.cpp.o.d"
  "libbwc_fusion.a"
  "libbwc_fusion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bwc_fusion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
