
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bwc/fusion/dot_export.cpp" "src/bwc/fusion/CMakeFiles/bwc_fusion.dir/dot_export.cpp.o" "gcc" "src/bwc/fusion/CMakeFiles/bwc_fusion.dir/dot_export.cpp.o.d"
  "/root/repo/src/bwc/fusion/fusion_graph.cpp" "src/bwc/fusion/CMakeFiles/bwc_fusion.dir/fusion_graph.cpp.o" "gcc" "src/bwc/fusion/CMakeFiles/bwc_fusion.dir/fusion_graph.cpp.o.d"
  "/root/repo/src/bwc/fusion/kway_reduction.cpp" "src/bwc/fusion/CMakeFiles/bwc_fusion.dir/kway_reduction.cpp.o" "gcc" "src/bwc/fusion/CMakeFiles/bwc_fusion.dir/kway_reduction.cpp.o.d"
  "/root/repo/src/bwc/fusion/solvers.cpp" "src/bwc/fusion/CMakeFiles/bwc_fusion.dir/solvers.cpp.o" "gcc" "src/bwc/fusion/CMakeFiles/bwc_fusion.dir/solvers.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bwc/support/CMakeFiles/bwc_support.dir/DependInfo.cmake"
  "/root/repo/build/src/bwc/ir/CMakeFiles/bwc_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/bwc/graph/CMakeFiles/bwc_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/bwc/analysis/CMakeFiles/bwc_analysis.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
