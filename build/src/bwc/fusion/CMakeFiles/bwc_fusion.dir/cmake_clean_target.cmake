file(REMOVE_RECURSE
  "libbwc_fusion.a"
)
