file(REMOVE_RECURSE
  "CMakeFiles/bwc_ir.dir/affine.cpp.o"
  "CMakeFiles/bwc_ir.dir/affine.cpp.o.d"
  "CMakeFiles/bwc_ir.dir/expr.cpp.o"
  "CMakeFiles/bwc_ir.dir/expr.cpp.o.d"
  "CMakeFiles/bwc_ir.dir/parser.cpp.o"
  "CMakeFiles/bwc_ir.dir/parser.cpp.o.d"
  "CMakeFiles/bwc_ir.dir/printer.cpp.o"
  "CMakeFiles/bwc_ir.dir/printer.cpp.o.d"
  "CMakeFiles/bwc_ir.dir/program.cpp.o"
  "CMakeFiles/bwc_ir.dir/program.cpp.o.d"
  "CMakeFiles/bwc_ir.dir/stmt.cpp.o"
  "CMakeFiles/bwc_ir.dir/stmt.cpp.o.d"
  "libbwc_ir.a"
  "libbwc_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bwc_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
