
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bwc/ir/affine.cpp" "src/bwc/ir/CMakeFiles/bwc_ir.dir/affine.cpp.o" "gcc" "src/bwc/ir/CMakeFiles/bwc_ir.dir/affine.cpp.o.d"
  "/root/repo/src/bwc/ir/expr.cpp" "src/bwc/ir/CMakeFiles/bwc_ir.dir/expr.cpp.o" "gcc" "src/bwc/ir/CMakeFiles/bwc_ir.dir/expr.cpp.o.d"
  "/root/repo/src/bwc/ir/parser.cpp" "src/bwc/ir/CMakeFiles/bwc_ir.dir/parser.cpp.o" "gcc" "src/bwc/ir/CMakeFiles/bwc_ir.dir/parser.cpp.o.d"
  "/root/repo/src/bwc/ir/printer.cpp" "src/bwc/ir/CMakeFiles/bwc_ir.dir/printer.cpp.o" "gcc" "src/bwc/ir/CMakeFiles/bwc_ir.dir/printer.cpp.o.d"
  "/root/repo/src/bwc/ir/program.cpp" "src/bwc/ir/CMakeFiles/bwc_ir.dir/program.cpp.o" "gcc" "src/bwc/ir/CMakeFiles/bwc_ir.dir/program.cpp.o.d"
  "/root/repo/src/bwc/ir/stmt.cpp" "src/bwc/ir/CMakeFiles/bwc_ir.dir/stmt.cpp.o" "gcc" "src/bwc/ir/CMakeFiles/bwc_ir.dir/stmt.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bwc/support/CMakeFiles/bwc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
