# Empty compiler generated dependencies file for bwc_ir.
# This may be replaced when dependencies are built.
