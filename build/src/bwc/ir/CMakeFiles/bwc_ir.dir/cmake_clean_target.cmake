file(REMOVE_RECURSE
  "libbwc_ir.a"
)
