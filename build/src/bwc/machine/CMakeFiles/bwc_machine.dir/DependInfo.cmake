
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bwc/machine/latency_model.cpp" "src/bwc/machine/CMakeFiles/bwc_machine.dir/latency_model.cpp.o" "gcc" "src/bwc/machine/CMakeFiles/bwc_machine.dir/latency_model.cpp.o.d"
  "/root/repo/src/bwc/machine/machine_model.cpp" "src/bwc/machine/CMakeFiles/bwc_machine.dir/machine_model.cpp.o" "gcc" "src/bwc/machine/CMakeFiles/bwc_machine.dir/machine_model.cpp.o.d"
  "/root/repo/src/bwc/machine/timing.cpp" "src/bwc/machine/CMakeFiles/bwc_machine.dir/timing.cpp.o" "gcc" "src/bwc/machine/CMakeFiles/bwc_machine.dir/timing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bwc/support/CMakeFiles/bwc_support.dir/DependInfo.cmake"
  "/root/repo/build/src/bwc/memsim/CMakeFiles/bwc_memsim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
