file(REMOVE_RECURSE
  "CMakeFiles/bwc_machine.dir/latency_model.cpp.o"
  "CMakeFiles/bwc_machine.dir/latency_model.cpp.o.d"
  "CMakeFiles/bwc_machine.dir/machine_model.cpp.o"
  "CMakeFiles/bwc_machine.dir/machine_model.cpp.o.d"
  "CMakeFiles/bwc_machine.dir/timing.cpp.o"
  "CMakeFiles/bwc_machine.dir/timing.cpp.o.d"
  "libbwc_machine.a"
  "libbwc_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bwc_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
