file(REMOVE_RECURSE
  "libbwc_machine.a"
)
