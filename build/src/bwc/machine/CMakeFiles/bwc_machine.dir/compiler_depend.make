# Empty compiler generated dependencies file for bwc_machine.
# This may be replaced when dependencies are built.
