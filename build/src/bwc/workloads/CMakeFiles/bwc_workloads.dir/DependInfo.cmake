
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bwc/workloads/extra_programs.cpp" "src/bwc/workloads/CMakeFiles/bwc_workloads.dir/extra_programs.cpp.o" "gcc" "src/bwc/workloads/CMakeFiles/bwc_workloads.dir/extra_programs.cpp.o.d"
  "/root/repo/src/bwc/workloads/kernels.cpp" "src/bwc/workloads/CMakeFiles/bwc_workloads.dir/kernels.cpp.o" "gcc" "src/bwc/workloads/CMakeFiles/bwc_workloads.dir/kernels.cpp.o.d"
  "/root/repo/src/bwc/workloads/paper_programs.cpp" "src/bwc/workloads/CMakeFiles/bwc_workloads.dir/paper_programs.cpp.o" "gcc" "src/bwc/workloads/CMakeFiles/bwc_workloads.dir/paper_programs.cpp.o.d"
  "/root/repo/src/bwc/workloads/random_programs.cpp" "src/bwc/workloads/CMakeFiles/bwc_workloads.dir/random_programs.cpp.o" "gcc" "src/bwc/workloads/CMakeFiles/bwc_workloads.dir/random_programs.cpp.o.d"
  "/root/repo/src/bwc/workloads/sp_proxy.cpp" "src/bwc/workloads/CMakeFiles/bwc_workloads.dir/sp_proxy.cpp.o" "gcc" "src/bwc/workloads/CMakeFiles/bwc_workloads.dir/sp_proxy.cpp.o.d"
  "/root/repo/src/bwc/workloads/stream.cpp" "src/bwc/workloads/CMakeFiles/bwc_workloads.dir/stream.cpp.o" "gcc" "src/bwc/workloads/CMakeFiles/bwc_workloads.dir/stream.cpp.o.d"
  "/root/repo/src/bwc/workloads/stride_kernels.cpp" "src/bwc/workloads/CMakeFiles/bwc_workloads.dir/stride_kernels.cpp.o" "gcc" "src/bwc/workloads/CMakeFiles/bwc_workloads.dir/stride_kernels.cpp.o.d"
  "/root/repo/src/bwc/workloads/sweep3d_proxy.cpp" "src/bwc/workloads/CMakeFiles/bwc_workloads.dir/sweep3d_proxy.cpp.o" "gcc" "src/bwc/workloads/CMakeFiles/bwc_workloads.dir/sweep3d_proxy.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bwc/support/CMakeFiles/bwc_support.dir/DependInfo.cmake"
  "/root/repo/build/src/bwc/ir/CMakeFiles/bwc_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/bwc/fusion/CMakeFiles/bwc_fusion.dir/DependInfo.cmake"
  "/root/repo/build/src/bwc/runtime/CMakeFiles/bwc_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/bwc/graph/CMakeFiles/bwc_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/bwc/analysis/CMakeFiles/bwc_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/bwc/machine/CMakeFiles/bwc_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/bwc/memsim/CMakeFiles/bwc_memsim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
