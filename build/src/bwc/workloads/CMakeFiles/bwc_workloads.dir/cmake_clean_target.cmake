file(REMOVE_RECURSE
  "libbwc_workloads.a"
)
