file(REMOVE_RECURSE
  "CMakeFiles/bwc_workloads.dir/extra_programs.cpp.o"
  "CMakeFiles/bwc_workloads.dir/extra_programs.cpp.o.d"
  "CMakeFiles/bwc_workloads.dir/kernels.cpp.o"
  "CMakeFiles/bwc_workloads.dir/kernels.cpp.o.d"
  "CMakeFiles/bwc_workloads.dir/paper_programs.cpp.o"
  "CMakeFiles/bwc_workloads.dir/paper_programs.cpp.o.d"
  "CMakeFiles/bwc_workloads.dir/random_programs.cpp.o"
  "CMakeFiles/bwc_workloads.dir/random_programs.cpp.o.d"
  "CMakeFiles/bwc_workloads.dir/sp_proxy.cpp.o"
  "CMakeFiles/bwc_workloads.dir/sp_proxy.cpp.o.d"
  "CMakeFiles/bwc_workloads.dir/stream.cpp.o"
  "CMakeFiles/bwc_workloads.dir/stream.cpp.o.d"
  "CMakeFiles/bwc_workloads.dir/stride_kernels.cpp.o"
  "CMakeFiles/bwc_workloads.dir/stride_kernels.cpp.o.d"
  "CMakeFiles/bwc_workloads.dir/sweep3d_proxy.cpp.o"
  "CMakeFiles/bwc_workloads.dir/sweep3d_proxy.cpp.o.d"
  "libbwc_workloads.a"
  "libbwc_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bwc_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
