# Empty compiler generated dependencies file for bwc_workloads.
# This may be replaced when dependencies are built.
