
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bwc/transform/distribute.cpp" "src/bwc/transform/CMakeFiles/bwc_transform.dir/distribute.cpp.o" "gcc" "src/bwc/transform/CMakeFiles/bwc_transform.dir/distribute.cpp.o.d"
  "/root/repo/src/bwc/transform/fuse.cpp" "src/bwc/transform/CMakeFiles/bwc_transform.dir/fuse.cpp.o" "gcc" "src/bwc/transform/CMakeFiles/bwc_transform.dir/fuse.cpp.o.d"
  "/root/repo/src/bwc/transform/interchange.cpp" "src/bwc/transform/CMakeFiles/bwc_transform.dir/interchange.cpp.o" "gcc" "src/bwc/transform/CMakeFiles/bwc_transform.dir/interchange.cpp.o.d"
  "/root/repo/src/bwc/transform/regrouping.cpp" "src/bwc/transform/CMakeFiles/bwc_transform.dir/regrouping.cpp.o" "gcc" "src/bwc/transform/CMakeFiles/bwc_transform.dir/regrouping.cpp.o.d"
  "/root/repo/src/bwc/transform/rewrite.cpp" "src/bwc/transform/CMakeFiles/bwc_transform.dir/rewrite.cpp.o" "gcc" "src/bwc/transform/CMakeFiles/bwc_transform.dir/rewrite.cpp.o.d"
  "/root/repo/src/bwc/transform/scalar_replacement.cpp" "src/bwc/transform/CMakeFiles/bwc_transform.dir/scalar_replacement.cpp.o" "gcc" "src/bwc/transform/CMakeFiles/bwc_transform.dir/scalar_replacement.cpp.o.d"
  "/root/repo/src/bwc/transform/storage_reduction.cpp" "src/bwc/transform/CMakeFiles/bwc_transform.dir/storage_reduction.cpp.o" "gcc" "src/bwc/transform/CMakeFiles/bwc_transform.dir/storage_reduction.cpp.o.d"
  "/root/repo/src/bwc/transform/store_elimination.cpp" "src/bwc/transform/CMakeFiles/bwc_transform.dir/store_elimination.cpp.o" "gcc" "src/bwc/transform/CMakeFiles/bwc_transform.dir/store_elimination.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bwc/support/CMakeFiles/bwc_support.dir/DependInfo.cmake"
  "/root/repo/build/src/bwc/ir/CMakeFiles/bwc_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/bwc/analysis/CMakeFiles/bwc_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/bwc/fusion/CMakeFiles/bwc_fusion.dir/DependInfo.cmake"
  "/root/repo/build/src/bwc/graph/CMakeFiles/bwc_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
