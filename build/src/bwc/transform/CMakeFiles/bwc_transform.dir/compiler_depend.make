# Empty compiler generated dependencies file for bwc_transform.
# This may be replaced when dependencies are built.
