file(REMOVE_RECURSE
  "CMakeFiles/bwc_transform.dir/distribute.cpp.o"
  "CMakeFiles/bwc_transform.dir/distribute.cpp.o.d"
  "CMakeFiles/bwc_transform.dir/fuse.cpp.o"
  "CMakeFiles/bwc_transform.dir/fuse.cpp.o.d"
  "CMakeFiles/bwc_transform.dir/interchange.cpp.o"
  "CMakeFiles/bwc_transform.dir/interchange.cpp.o.d"
  "CMakeFiles/bwc_transform.dir/regrouping.cpp.o"
  "CMakeFiles/bwc_transform.dir/regrouping.cpp.o.d"
  "CMakeFiles/bwc_transform.dir/rewrite.cpp.o"
  "CMakeFiles/bwc_transform.dir/rewrite.cpp.o.d"
  "CMakeFiles/bwc_transform.dir/scalar_replacement.cpp.o"
  "CMakeFiles/bwc_transform.dir/scalar_replacement.cpp.o.d"
  "CMakeFiles/bwc_transform.dir/storage_reduction.cpp.o"
  "CMakeFiles/bwc_transform.dir/storage_reduction.cpp.o.d"
  "CMakeFiles/bwc_transform.dir/store_elimination.cpp.o"
  "CMakeFiles/bwc_transform.dir/store_elimination.cpp.o.d"
  "libbwc_transform.a"
  "libbwc_transform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bwc_transform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
