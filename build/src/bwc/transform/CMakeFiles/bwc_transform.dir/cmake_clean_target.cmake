file(REMOVE_RECURSE
  "libbwc_transform.a"
)
