file(REMOVE_RECURSE
  "CMakeFiles/bwc_core.dir/optimizer.cpp.o"
  "CMakeFiles/bwc_core.dir/optimizer.cpp.o.d"
  "libbwc_core.a"
  "libbwc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bwc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
