file(REMOVE_RECURSE
  "libbwc_core.a"
)
