# Empty dependencies file for bwc_core.
# This may be replaced when dependencies are built.
