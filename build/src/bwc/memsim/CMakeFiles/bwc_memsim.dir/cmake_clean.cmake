file(REMOVE_RECURSE
  "CMakeFiles/bwc_memsim.dir/cache_level.cpp.o"
  "CMakeFiles/bwc_memsim.dir/cache_level.cpp.o.d"
  "CMakeFiles/bwc_memsim.dir/hierarchy.cpp.o"
  "CMakeFiles/bwc_memsim.dir/hierarchy.cpp.o.d"
  "libbwc_memsim.a"
  "libbwc_memsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bwc_memsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
