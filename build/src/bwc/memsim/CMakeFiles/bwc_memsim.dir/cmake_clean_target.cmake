file(REMOVE_RECURSE
  "libbwc_memsim.a"
)
