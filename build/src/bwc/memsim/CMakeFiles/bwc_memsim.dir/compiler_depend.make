# Empty compiler generated dependencies file for bwc_memsim.
# This may be replaced when dependencies are built.
