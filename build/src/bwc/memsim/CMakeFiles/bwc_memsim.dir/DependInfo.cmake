
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bwc/memsim/cache_level.cpp" "src/bwc/memsim/CMakeFiles/bwc_memsim.dir/cache_level.cpp.o" "gcc" "src/bwc/memsim/CMakeFiles/bwc_memsim.dir/cache_level.cpp.o.d"
  "/root/repo/src/bwc/memsim/hierarchy.cpp" "src/bwc/memsim/CMakeFiles/bwc_memsim.dir/hierarchy.cpp.o" "gcc" "src/bwc/memsim/CMakeFiles/bwc_memsim.dir/hierarchy.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bwc/support/CMakeFiles/bwc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
