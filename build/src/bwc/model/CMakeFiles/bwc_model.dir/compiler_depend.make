# Empty compiler generated dependencies file for bwc_model.
# This may be replaced when dependencies are built.
