
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bwc/model/balance.cpp" "src/bwc/model/CMakeFiles/bwc_model.dir/balance.cpp.o" "gcc" "src/bwc/model/CMakeFiles/bwc_model.dir/balance.cpp.o.d"
  "/root/repo/src/bwc/model/measure.cpp" "src/bwc/model/CMakeFiles/bwc_model.dir/measure.cpp.o" "gcc" "src/bwc/model/CMakeFiles/bwc_model.dir/measure.cpp.o.d"
  "/root/repo/src/bwc/model/prediction.cpp" "src/bwc/model/CMakeFiles/bwc_model.dir/prediction.cpp.o" "gcc" "src/bwc/model/CMakeFiles/bwc_model.dir/prediction.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bwc/support/CMakeFiles/bwc_support.dir/DependInfo.cmake"
  "/root/repo/build/src/bwc/machine/CMakeFiles/bwc_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/bwc/runtime/CMakeFiles/bwc_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/bwc/ir/CMakeFiles/bwc_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/bwc/memsim/CMakeFiles/bwc_memsim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
