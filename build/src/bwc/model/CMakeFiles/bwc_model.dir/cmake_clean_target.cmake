file(REMOVE_RECURSE
  "libbwc_model.a"
)
