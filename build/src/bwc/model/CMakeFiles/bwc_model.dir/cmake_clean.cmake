file(REMOVE_RECURSE
  "CMakeFiles/bwc_model.dir/balance.cpp.o"
  "CMakeFiles/bwc_model.dir/balance.cpp.o.d"
  "CMakeFiles/bwc_model.dir/measure.cpp.o"
  "CMakeFiles/bwc_model.dir/measure.cpp.o.d"
  "CMakeFiles/bwc_model.dir/prediction.cpp.o"
  "CMakeFiles/bwc_model.dir/prediction.cpp.o.d"
  "libbwc_model.a"
  "libbwc_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bwc_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
