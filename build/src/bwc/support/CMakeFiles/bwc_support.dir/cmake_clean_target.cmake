file(REMOVE_RECURSE
  "libbwc_support.a"
)
