# Empty dependencies file for bwc_support.
# This may be replaced when dependencies are built.
