file(REMOVE_RECURSE
  "CMakeFiles/bwc_support.dir/csv.cpp.o"
  "CMakeFiles/bwc_support.dir/csv.cpp.o.d"
  "CMakeFiles/bwc_support.dir/error.cpp.o"
  "CMakeFiles/bwc_support.dir/error.cpp.o.d"
  "CMakeFiles/bwc_support.dir/stats.cpp.o"
  "CMakeFiles/bwc_support.dir/stats.cpp.o.d"
  "CMakeFiles/bwc_support.dir/table.cpp.o"
  "CMakeFiles/bwc_support.dir/table.cpp.o.d"
  "libbwc_support.a"
  "libbwc_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bwc_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
