# Empty compiler generated dependencies file for balance_audit.
# This may be replaced when dependencies are built.
