file(REMOVE_RECURSE
  "CMakeFiles/balance_audit.dir/balance_audit.cpp.o"
  "CMakeFiles/balance_audit.dir/balance_audit.cpp.o.d"
  "balance_audit"
  "balance_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/balance_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
