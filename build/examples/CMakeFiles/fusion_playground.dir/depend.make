# Empty dependencies file for fusion_playground.
# This may be replaced when dependencies are built.
