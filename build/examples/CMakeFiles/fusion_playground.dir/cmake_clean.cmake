file(REMOVE_RECURSE
  "CMakeFiles/fusion_playground.dir/fusion_playground.cpp.o"
  "CMakeFiles/fusion_playground.dir/fusion_playground.cpp.o.d"
  "fusion_playground"
  "fusion_playground.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fusion_playground.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
