file(REMOVE_RECURSE
  "CMakeFiles/distribute_test.dir/distribute_test.cpp.o"
  "CMakeFiles/distribute_test.dir/distribute_test.cpp.o.d"
  "distribute_test"
  "distribute_test.pdb"
  "distribute_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distribute_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
