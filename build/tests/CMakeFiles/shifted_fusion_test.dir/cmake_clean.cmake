file(REMOVE_RECURSE
  "CMakeFiles/shifted_fusion_test.dir/shifted_fusion_test.cpp.o"
  "CMakeFiles/shifted_fusion_test.dir/shifted_fusion_test.cpp.o.d"
  "shifted_fusion_test"
  "shifted_fusion_test.pdb"
  "shifted_fusion_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shifted_fusion_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
