# Empty compiler generated dependencies file for shifted_fusion_test.
# This may be replaced when dependencies are built.
