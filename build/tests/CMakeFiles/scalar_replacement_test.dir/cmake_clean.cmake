file(REMOVE_RECURSE
  "CMakeFiles/scalar_replacement_test.dir/scalar_replacement_test.cpp.o"
  "CMakeFiles/scalar_replacement_test.dir/scalar_replacement_test.cpp.o.d"
  "scalar_replacement_test"
  "scalar_replacement_test.pdb"
  "scalar_replacement_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scalar_replacement_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
