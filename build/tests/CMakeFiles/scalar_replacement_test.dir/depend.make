# Empty dependencies file for scalar_replacement_test.
# This may be replaced when dependencies are built.
