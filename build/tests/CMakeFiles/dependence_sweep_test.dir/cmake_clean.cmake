file(REMOVE_RECURSE
  "CMakeFiles/dependence_sweep_test.dir/dependence_sweep_test.cpp.o"
  "CMakeFiles/dependence_sweep_test.dir/dependence_sweep_test.cpp.o.d"
  "dependence_sweep_test"
  "dependence_sweep_test.pdb"
  "dependence_sweep_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dependence_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
