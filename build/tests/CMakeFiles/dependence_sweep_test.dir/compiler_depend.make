# Empty compiler generated dependencies file for dependence_sweep_test.
# This may be replaced when dependencies are built.
