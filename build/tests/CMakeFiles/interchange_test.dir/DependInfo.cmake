
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/interchange_test.cpp" "tests/CMakeFiles/interchange_test.dir/interchange_test.cpp.o" "gcc" "tests/CMakeFiles/interchange_test.dir/interchange_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bwc/model/CMakeFiles/bwc_model.dir/DependInfo.cmake"
  "/root/repo/build/src/bwc/workloads/CMakeFiles/bwc_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/bwc/runtime/CMakeFiles/bwc_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/bwc/machine/CMakeFiles/bwc_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/bwc/memsim/CMakeFiles/bwc_memsim.dir/DependInfo.cmake"
  "/root/repo/build/src/bwc/core/CMakeFiles/bwc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/bwc/transform/CMakeFiles/bwc_transform.dir/DependInfo.cmake"
  "/root/repo/build/src/bwc/fusion/CMakeFiles/bwc_fusion.dir/DependInfo.cmake"
  "/root/repo/build/src/bwc/graph/CMakeFiles/bwc_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/bwc/analysis/CMakeFiles/bwc_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/bwc/ir/CMakeFiles/bwc_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/bwc/support/CMakeFiles/bwc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
