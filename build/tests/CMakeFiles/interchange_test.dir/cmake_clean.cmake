file(REMOVE_RECURSE
  "CMakeFiles/interchange_test.dir/interchange_test.cpp.o"
  "CMakeFiles/interchange_test.dir/interchange_test.cpp.o.d"
  "interchange_test"
  "interchange_test.pdb"
  "interchange_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interchange_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
