# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/memsim_test[1]_include.cmake")
include("/root/repo/build/tests/machine_test[1]_include.cmake")
include("/root/repo/build/tests/ir_test[1]_include.cmake")
include("/root/repo/build/tests/runtime_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/fusion_test[1]_include.cmake")
include("/root/repo/build/tests/transform_test[1]_include.cmake")
include("/root/repo/build/tests/model_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/param_test[1]_include.cmake")
include("/root/repo/build/tests/extension_test[1]_include.cmake")
include("/root/repo/build/tests/pipeline_test[1]_include.cmake")
include("/root/repo/build/tests/shifted_fusion_test[1]_include.cmake")
include("/root/repo/build/tests/coverage_test[1]_include.cmake")
include("/root/repo/build/tests/parser_test[1]_include.cmake")
include("/root/repo/build/tests/distribute_test[1]_include.cmake")
include("/root/repo/build/tests/dependence_sweep_test[1]_include.cmake")
include("/root/repo/build/tests/interchange_test[1]_include.cmake")
include("/root/repo/build/tests/scalar_replacement_test[1]_include.cmake")
