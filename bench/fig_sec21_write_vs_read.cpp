// Section 2.1: the motivating example.
//
// Two loops over a 2,000,000-element double array; the first also writes
// it back. Paper wall-clock: Origin2000 0.104 s vs 0.054 s (1.9x),
// Exemplar 0.055 s vs 0.036 s (1.5x). "The first loop takes twice as long
// because it writes the array to memory and consequently consumes twice as
// much memory bandwidth."
#include "bench_common.h"

#include <iostream>

#include "bwc/model/measure.h"
#include "bwc/support/table.h"
#include "bwc/workloads/paper_programs.h"

int main() {
  using namespace bwc;
  bench::print_header(
      "Section 2.1: write loop vs read loop (N = 2,000,000)");

  const std::int64_t n = 2000000;
  const ir::Program write_loop = workloads::sec21_write_loop(n);
  const ir::Program read_loop = workloads::sec21_read_loop(n);

  struct MachineUnderTest {
    machine::MachineModel scaled;
    machine::MachineModel full;
  };
  const MachineUnderTest machines[] = {
      {bench::o2k(), machine::origin2000_r10k()},
      {bench::exemplar(), machine::exemplar_pa8000()},
  };

  TextTable t("Predicted time (bandwidth-bound model)");
  t.set_header({"machine", "write loop (s)", "read loop (s)", "ratio",
                "mem bytes write", "mem bytes read"});
  for (const auto& m : machines) {
    double times[2];
    std::uint64_t bytes[2];
    const ir::Program* programs[] = {&write_loop, &read_loop};
    for (int i = 0; i < 2; ++i) {
      memsim::MemoryHierarchy h = m.scaled.make_hierarchy();
      runtime::ExecOptions opts;
      opts.hierarchy = &h;
      const auto exec = runtime::execute(*programs[i], opts);
      times[i] = machine::predict_time(exec.profile, m.full).total_s;
      bytes[i] = exec.profile.memory_bytes();
    }
    t.add_row({m.full.name, fmt_fixed(times[0], 4), fmt_fixed(times[1], 4),
               fmt_fixed(times[0] / times[1], 2) + "x",
               fmt_bytes(static_cast<double>(bytes[0])),
               fmt_bytes(static_cast<double>(bytes[1]))});
  }
  std::cout << t.render();
  std::cout << "\npaper wall-clock: Origin2000 0.104 vs 0.054 s (1.93x); "
               "Exemplar 0.055 vs 0.036 s (1.53x)\n"
               "claim: performance is set by bandwidth consumed, not "
               "latency -- the write loop moves ~2x the bytes.\n";
  return 0;
}
