// bwcd serving throughput over loopback: cold requests (every one a
// distinct program, full pipeline + measurement each) vs cache hits
// (one request repeated, served from the content-addressed compile
// cache without re-running the pipeline).
//
// The gap between the two rates is what the compile cache buys an
// interactive client; the smoke floors pin that the daemon keeps
// serving at sane rates and that the cache actually short-circuits the
// pipeline (hit rate strictly above cold rate, hit responses
// bit-identical to their cold originals).
//
//   server_throughput [--smoke] [--json]
//
// --smoke uses smaller counts and exits non-zero when a floor is
// violated -- CI runs this mode. --json emits one metrics object for
// tools/check_bench_regression.py. Numbers are recorded in
// EXPERIMENTS.md.
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"
#include "bwc/ir/printer.h"
#include "bwc/server/client.h"
#include "bwc/server/daemon.h"
#include "bwc/server/protocol.h"
#include "bwc/workloads/paper_programs.h"

namespace {

using namespace bwc;

// Floors for --smoke, far under measured rates (hits serve in ~0.2 ms,
// cold in ~2 ms on an idle host) so only a real serving regression --
// not scheduler noise -- trips them.
constexpr double kHitRpsFloor = 300.0;
constexpr double kColdRpsFloor = 40.0;

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

server::Request optimize_request(std::int64_t n) {
  server::Request r;
  r.op = server::Request::Op::kOptimize;
  r.program = ir::to_string(workloads::fig7_original(n));
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false, json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--json") == 0) json = true;
  }

  const int cold_requests = smoke ? 40 : 200;
  const int hit_requests = smoke ? 200 : 1000;

  char cache_dir[128];
  std::snprintf(cache_dir, sizeof cache_dir,
                "/tmp/bwc-server-bench-cache-%d", static_cast<int>(::getpid()));
  std::system((std::string("rm -rf ") + cache_dir).c_str());

  server::DaemonOptions options;
  options.threads = 4;
  options.queue_max = 256;
  options.service.cache_dir = cache_dir;
  server::Daemon daemon(options);
  daemon.start();
  server::Client client("127.0.0.1", daemon.port());

  // ---- cold: every request a distinct program, full pipeline each ----
  std::vector<server::Request> cold_pool;
  cold_pool.reserve(cold_requests);
  for (int i = 0; i < cold_requests; ++i)
    cold_pool.push_back(optimize_request(1000 + i));

  int failures = 0;
  const double cold_t0 = now_s();
  for (const server::Request& request : cold_pool) {
    const server::Response response = client.call(request);
    if (response.status != "ok" || response.cache_hit) ++failures;
  }
  const double cold_s = now_s() - cold_t0;
  const double rps_cold = cold_requests / cold_s;

  // ---- hit: one request repeated, served from the compile cache ----
  const server::Request repeated = cold_pool.front();
  const server::Response reference = client.call(repeated);
  if (reference.status != "ok" || !reference.cache_hit) ++failures;
  const double hit_t0 = now_s();
  for (int i = 0; i < hit_requests; ++i) {
    const server::Response response = client.call(repeated);
    if (response.status != "ok" || !response.cache_hit ||
        response.result_json != reference.result_json)
      ++failures;
  }
  const double hit_s = now_s() - hit_t0;
  const double rps_hit = hit_requests / hit_s;

  const server::Service::Stats stats = daemon.service().stats();
  const double hit_over_cold = rps_hit / rps_cold;
  daemon.stop();
  std::system((std::string("rm -rf ") + cache_dir).c_str());

  if (json) {
    std::printf(
        "{\"bench\": \"server_throughput\", \"rps_cold\": %.1f, "
        "\"rps_hit\": %.1f, \"hit_over_cold\": %.3f}\n",
        rps_cold, rps_hit, hit_over_cold);
  } else {
    bench::print_header("bwcd serving throughput over loopback" +
                        std::string(smoke ? " (smoke)" : ""));
    std::printf("%-22s %10s %12s\n", "phase", "requests", "req/s");
    std::printf("%-22s %10d %12.1f\n", "cold (unique programs)",
                cold_requests, rps_cold);
    std::printf("%-22s %10d %12.1f\n", "cache hit (repeated)", hit_requests,
                rps_hit);
    std::printf("\ncache: %llu hits / %llu misses, pipeline runs %llu; "
                "hit/cold rate ratio %.1fx\n",
                static_cast<unsigned long long>(stats.cache_hits),
                static_cast<unsigned long long>(stats.cache_misses),
                static_cast<unsigned long long>(stats.pipeline_runs),
                hit_over_cold);
  }

  if (failures > 0) {
    std::printf("FAIL: %d responses wrong (status/cache/bit-identity)\n",
                failures);
    return 1;
  }
  // The cache must short-circuit the pipeline: exactly one run per
  // distinct program, none for the repeats.
  if (stats.pipeline_runs != static_cast<std::uint64_t>(cold_requests)) {
    std::printf("FAIL: pipeline ran %llu times for %d distinct programs\n",
                static_cast<unsigned long long>(stats.pipeline_runs),
                cold_requests);
    return 1;
  }
  if (smoke && (rps_hit < kHitRpsFloor || rps_cold < kColdRpsFloor)) {
    std::printf("FAIL: throughput under regression floor "
                "(hit %.1f < %.1f or cold %.1f < %.1f req/s)\n",
                rps_hit, kHitRpsFloor, rps_cold, kColdRpsFloor);
    return 1;
  }
  if (smoke && rps_hit <= rps_cold) {
    std::printf("FAIL: cache hits no faster than cold serving\n");
    return 1;
  }
  return 0;
}
