// Figure 2: Ratios of bandwidth demand to supply, and the CPU-utilization
// bound they imply.
//
// Paper values (Origin2000): conv 1.6/1.3/6.5, dmxpy 2.1/2.1/10.5,
// mm-jki 6.0/2.1/7.4, FFT 2.1/0.8/3.4, NAS/SP 2.7/1.6/6.1,
// Sweep3D 3.8/2.3/9.8. Memory is the worst-provisioned level everywhere;
// dmxpy's CPU utilization is bounded at 9.5%, SP at 16%, Sweep3D at 10%.
#include "bench_common.h"

#include <iostream>

#include "bwc/model/balance.h"
#include "bwc/workloads/kernels.h"
#include "bwc/workloads/sp_proxy.h"
#include "bwc/workloads/sweep3d_proxy.h"

int main() {
  using namespace bwc;
  bench::print_header(
      "Figure 2: demand/supply ratios and CPU utilization bounds "
      "(simulated Origin2000)");

  const machine::MachineModel machine = bench::o2k();
  std::vector<model::ProgramBalance> rows;

  {
    workloads::AddressSpace space;
    workloads::Convolution conv(200000, 3, space);
    rows.push_back(model::ProgramBalance::from_profile(
        "convolution", bench::steady_state_profile(machine, [&](auto& rec) {
          conv.run(rec);
        })));
  }
  {
    workloads::AddressSpace space;
    workloads::Dmxpy dmxpy(120000, 16, space);
    rows.push_back(model::ProgramBalance::from_profile(
        "dmxpy", bench::steady_state_profile(machine, [&](auto& rec) {
          dmxpy.run(rec);
        })));
  }
  {
    workloads::AddressSpace space;
    workloads::MatMul mm(384, space);
    rows.push_back(model::ProgramBalance::from_profile(
        "mm-jki (-O2)", bench::steady_state_profile(machine, [&](auto& rec) {
          mm.reset_c();
          mm.run_jki(rec);
        })));
  }
  {
    workloads::AddressSpace space;
    workloads::Fft fft(131072, space);
    rows.push_back(model::ProgramBalance::from_profile(
        "FFT", bench::steady_state_profile(
                   machine, [&](auto& rec) { fft.run(rec); })));
  }
  {
    workloads::AddressSpace space;
    workloads::SpProxy sp(24, space);
    rows.push_back(model::ProgramBalance::from_profile(
        "NAS/SP (proxy)", bench::steady_state_profile(machine, [&](auto& rec) {
          sp.step(rec);
        })));
  }
  {
    workloads::AddressSpace space;
    workloads::Sweep3dProxy sweep(28, 6, space);
    rows.push_back(model::ProgramBalance::from_profile(
        "Sweep3D (proxy)",
        bench::steady_state_profile(machine,
                                    [&](auto& rec) { sweep.sweep(rec); })));
  }

  std::cout << model::render_ratio_table(rows, machine::origin2000_r10k());

  // The headline claims of Section 2.2.
  int memory_worst = 0;
  for (const auto& b : rows) {
    const auto ratios =
        model::demand_supply_ratios(b, machine::origin2000_r10k());
    if (ratios[2] >= ratios[0] && ratios[2] >= ratios[1]) ++memory_worst;
  }
  std::cout << "\nmemory boundary is the worst-provisioned level for "
            << memory_worst << "/" << rows.size()
            << " applications (paper: all except blocked mm)\n"
            << "paper ratios (mem): conv 6.5, dmxpy 10.5, mm 7.4, FFT 3.4, "
               "SP 6.1, Sweep3D 9.8\n";
  return 0;
}
