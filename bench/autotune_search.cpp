// Autotuner search quality and scaling: certificate rate, winner-vs-
// default traffic, and thread-pool speedup.
//
//   autotune_search [--smoke] [--json]
//
// Runs the pipeline autotuner (tune/autotune.h) over the bundled paper
// workloads with the small budget and reports, per workload, the
// winner's memsim-measured traffic against the default core::optimize
// pipeline and whether a within-gap lower-bound optimality certificate
// was earned. The search is deterministic (fixed seed), so every metric
// except the wall-clock speedup is exactly reproducible and pinned in
// BENCH_baseline.json via tools/check_bench_regression.py.
//
// --smoke enforces the acceptance floors and exits non-zero when any
// fails:
//   - the winner is never worse than the default pipeline (exactness);
//   - the winner is strictly better on at least one workload;
//   - a within-gap certificate is earned on at least two workloads;
//   - with >= 4 hardware threads, a fixed-budget search runs >= 2x
//     faster on 4 threads than on 1 (skipped, with a note, on smaller
//     machines -- the determinism contract is thread-count-independent
//     and is tested separately in tests/autotune_test.cpp).
// --json emits one JSON object for the regression checker. The speedup
// metric is only emitted when it was measured, and deliberately has no
// baseline entry (wall clock on shared CI wobbles; the >= 2x smoke
// floor is the gate).
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "bwc/ir/program.h"
#include "bwc/tune/autotune.h"
#include "bwc/workloads/extra_programs.h"
#include "bwc/workloads/paper_programs.h"

namespace {

using namespace bwc;

constexpr double kSpeedupFloor = 2.0;  // 4 threads vs 1, fixed budget

struct Case {
  std::string key;
  ir::Program program;
  std::uint64_t scale;
};

tune::TuneOptions options_for(std::uint64_t scale, int threads) {
  tune::TuneOptions o;
  o.budget = tune::parse_budget("small");
  o.threads = threads;
  o.machine = machine::origin2000_r10k().scaled(scale).with_cores(1);
  return o;
}

double seconds_of(int threads) {
  // A search that cannot stop early (jacobi stays far from its floor at
  // this scale), so every thread count scores the identical candidate
  // set and the comparison is pure scoring throughput.
  const ir::Program program = workloads::jacobi_chain(128, 4);
  tune::TuneOptions o = options_for(16, threads);
  o.budget = 64;
  const auto t0 = std::chrono::steady_clock::now();
  (void)tune::tune(program, o);
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false, json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--json") == 0) json = true;
  }

  std::vector<Case> cases;
  cases.push_back({"fig7", workloads::fig7_original(128), 16});
  cases.push_back({"sec21", workloads::sec21_both_loops(128), 16});
  cases.push_back({"blur", workloads::blur_sharpen(128), 16});
  cases.push_back({"cascade", workloads::reduction_cascade(128, 3), 16});
  cases.push_back({"stride", workloads::transposed_sweep(256), 512});

  if (!json) {
    bench::print_header("Autotuner: winner vs default, certificate rate" +
                        std::string(smoke ? " (smoke)" : ""));
    std::printf("%-10s %14s %14s %8s %6s\n", "workload", "default B",
                "winner B", "ratio", "cert");
  }

  bool never_worse = true;
  int strictly_better = 0;
  int certificates = 0;
  std::vector<std::pair<std::string, double>> metrics;
  for (const Case& c : cases) {
    const tune::TuneResult r = tune::tune(c.program, options_for(c.scale, 2));
    const double ratio =
        static_cast<double>(r.default_measured_bytes) /
        static_cast<double>(r.winner_measured_bytes > 0
                                ? r.winner_measured_bytes
                                : 1);
    never_worse =
        never_worse && r.winner_measured_bytes <= r.default_measured_bytes;
    if (r.winner_measured_bytes < r.default_measured_bytes)
      ++strictly_better;
    if (r.certificate.within_gap) ++certificates;
    if (!json) {
      std::printf("%-10s %14lld %14lld %7.2fx %6s\n", c.key.c_str(),
                  static_cast<long long>(r.default_measured_bytes),
                  static_cast<long long>(r.winner_measured_bytes), ratio,
                  r.certificate.within_gap ? "yes" : "no");
    }
    metrics.emplace_back("traffic_ratio_" + c.key, ratio);
  }
  const double cert_rate =
      static_cast<double>(certificates) / static_cast<double>(cases.size());
  metrics.emplace_back("certificate_rate", cert_rate);

  // Thread-pool scaling on a fixed budget, when the hardware can show it.
  const unsigned hw = std::thread::hardware_concurrency();
  double speedup = 0.0;
  if (hw >= 4) {
    const double t1 = seconds_of(1);
    const double t4 = seconds_of(4);
    speedup = t1 / t4;
    if (!json)
      std::printf("\nsearch wall clock, fixed budget: %.3fs @1 thread, "
                  "%.3fs @4 threads (%.2fx)\n",
                  t1, t4, speedup);
  } else if (!json) {
    std::printf("\nsearch speedup: skipped (%u hardware thread(s) < 4)\n",
                hw);
  }

  if (json) {
    std::printf("{\"bench\": \"autotune_search\"");
    for (const auto& [key, value] : metrics)
      std::printf(", \"%s\": %.3f", key.c_str(), value);
    if (hw >= 4) std::printf(", \"search_speedup_4v1\": %.3f", speedup);
    std::printf("}\n");
  } else {
    std::printf("\ncertificates: %d/%zu, strictly better: %d, never worse: "
                "%s\n",
                certificates, cases.size(), strictly_better,
                never_worse ? "yes" : "NO");
  }

  if (smoke) {
    bool ok = true;
    if (!never_worse) {
      std::printf("FAIL: winner worse than the default pipeline\n");
      ok = false;
    }
    if (strictly_better < 1) {
      std::printf("FAIL: no workload strictly improved over the default\n");
      ok = false;
    }
    if (certificates < 2) {
      std::printf("FAIL: %d within-gap certificate(s), need >= 2\n",
                  certificates);
      ok = false;
    }
    if (hw >= 4 && speedup < kSpeedupFloor) {
      std::printf("FAIL: search speedup %.2fx below the %.1fx floor\n",
                  speedup, kSpeedupFloor);
      ok = false;
    }
    if (!ok) return 1;
  }
  return 0;
}
