// Ablation: contribution of each pipeline pass.
//
// DESIGN.md design-choice #3: run the Figure 6 and Figure 7 programs with
// every subset of {fusion, storage reduction, store elimination} and
// report memory traffic and predicted time, isolating each pass's share
// of the total win.
#include "bench_common.h"

#include <iostream>

#include "bwc/core/optimizer.h"
#include "bwc/model/measure.h"
#include "bwc/support/table.h"
#include "bwc/workloads/paper_programs.h"

int main() {
  using namespace bwc;
  bench::print_header("Ablation: pipeline pass subsets");

  const machine::MachineModel machine = bench::o2k();

  struct Variant {
    const char* name;
    bool fuse, storage, stores;
  };
  const Variant variants[] = {
      {"none", false, false, false},
      {"fusion", true, false, false},
      {"fusion + storage reduction", true, true, false},
      {"fusion + store elimination", true, false, true},
      {"full pipeline", true, true, true},
      {"storage reduction only", false, true, false},
      {"store elimination only", false, false, true},
  };

  for (auto maker : {workloads::fig7_original, workloads::fig6_original}) {
    const std::int64_t n =
        maker == workloads::fig7_original ? 400000 : 400;
    const ir::Program original = maker(n);
    const double base_checksum =
        model::measure(original, machine).exec.checksum;

    TextTable t(original.name() + " (N = " + std::to_string(n) + ")");
    t.set_header({"passes", "mem traffic", "predicted ms", "speedup",
                  "semantics"});
    double base_time = 0.0;
    for (const auto& variant : variants) {
      core::OptimizerOptions opts;
      opts.solver = variant.fuse ? core::FusionSolver::kBest
                                 : core::FusionSolver::kNone;
      opts.reduce_storage = variant.storage;
      opts.eliminate_stores = variant.stores;
      const auto optimized = core::optimize(original, opts);
      const auto m = model::measure(optimized.program, machine);
      if (base_time == 0.0) base_time = m.time.total_s;
      const bool same = std::abs(m.exec.checksum - base_checksum) <=
                        1e-9 * (std::abs(base_checksum) + 1.0);
      t.add_row({variant.name,
                 fmt_bytes(static_cast<double>(m.profile.memory_bytes())),
                 fmt_fixed(m.time.total_s * 1e3, 2),
                 fmt_fixed(base_time / m.time.total_s, 2) + "x",
                 same ? "preserved" : "BROKEN"});
    }
    std::cout << t.render() << "\n";
  }
  std::cout << "reading: storage passes depend on fusion having localized "
               "live ranges first -- alone they find nothing, matching the "
               "paper's pipeline ordering.\n";
  return 0;
}
