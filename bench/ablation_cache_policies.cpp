// Ablation: write policies and the cost of writebacks.
//
// Store elimination matters because "memory writebacks equally consume
// bandwidth as memory reads". This sweep quantifies writeback/allocation
// costs on the simulator with two traversals:
//  - a write-only fill (1w0r): allocation policy decides whether every
//    stored line is first fetched (2x traffic) or streamed through (1x);
//  - a read-modify-write (1w2r): the target lines are read anyway, so the
//    policies converge -- the writeback itself is the irreducible cost
//    that only *removing the store* (the compiler pass) can eliminate.
#include "bench_common.h"

#include <iostream>

#include "bwc/support/table.h"
#include "bwc/workloads/stride_kernels.h"

namespace {

using namespace bwc;

void run_policy_table(const workloads::StrideKernelSpec& spec,
                      std::int64_t n) {
  struct Config {
    const char* name;
    memsim::WritePolicy write;
    memsim::AllocatePolicy alloc;
  };
  const Config configs[] = {
      {"write-back + write-allocate", memsim::WritePolicy::kWriteBack,
       memsim::AllocatePolicy::kWriteAllocate},
      {"write-back + no-allocate", memsim::WritePolicy::kWriteBack,
       memsim::AllocatePolicy::kNoWriteAllocate},
      {"write-through + write-allocate", memsim::WritePolicy::kWriteThrough,
       memsim::AllocatePolicy::kWriteAllocate},
      {"write-through + no-allocate", memsim::WritePolicy::kWriteThrough,
       memsim::AllocatePolicy::kNoWriteAllocate},
  };

  TextTable t("kernel " + spec.name);
  t.set_header({"policy", "mem reads", "mem writes", "total", "vs useful"});
  for (const auto& c : configs) {
    machine::MachineModel m = bench::o2k();
    for (auto& cache : m.caches) {
      cache.write_policy = c.write;
      cache.allocate_policy = c.alloc;
    }
    workloads::AddressSpace space;
    workloads::StrideKernel kernel(spec, n, space);
    const auto profile = bench::steady_state_profile(
        m, [&](auto& rec) { kernel.run(rec); });
    const auto& mem = profile.boundaries.back();
    t.add_row({c.name,
               fmt_bytes(static_cast<double>(mem.bytes_toward_cpu)),
               fmt_bytes(static_cast<double>(mem.bytes_from_cpu)),
               fmt_bytes(static_cast<double>(mem.total())),
               fmt_fixed(static_cast<double>(mem.total()) /
                             static_cast<double>(kernel.useful_bytes()),
                         2) +
                   "x"});
  }
  std::cout << t.render() << "\n";
}

}  // namespace

int main() {
  bench::print_header("Ablation: cache write policies");

  const std::int64_t n = 150000;
  run_policy_table({"1w0r (fill)", 1, 0}, n);
  run_policy_table({"1w2r (read-modify-write)", 1, 2}, n);

  std::cout
      << "reading: allocation policy only helps write-only streams; once "
         "the data is read anyway\n"
         "(every kernel of Figure 3), the writeback is irreducible at the "
         "hardware level -- it takes\n"
         "the compiler removing the store (Section 3.3) to reclaim that "
         "bandwidth.\n";

  // The discard-dirty hint: suppressing writebacks after the fact only
  // catches lines still resident, a small tail for streaming footprints.
  {
    const machine::MachineModel m = bench::o2k();
    memsim::MemoryHierarchy h = m.make_hierarchy();
    workloads::AddressSpace space;
    workloads::StrideKernel kernel({"1w2r", 1, 2}, n, space);
    {
      runtime::Recorder warmup(&h);
      kernel.run(warmup);
    }
    h.reset_stats();
    runtime::Recorder rec(&h);
    kernel.run(rec);
    const std::uint64_t with_wb = h.boundaries().back().bytes_from_cpu;
    std::cout << "\nwriteback bytes per pass: " << with_wb
              << "; a cache-flush-style discard hint can only reclaim the "
                 "cache-resident tail (~"
              << m.caches.back().size_bytes
              << " bytes) -- store elimination removes all of it.\n";
  }
  return 0;
}
