// Multicore extension: speedup vs core count under the shared-bandwidth
// machine model (docs/MODEL.md section 7), original vs optimized.
//
// The paper's single-core claim is that memory bandwidth, not CPU speed,
// bounds performance; on a multicore the imbalance compounds -- P cores
// share one memory bus, so a bandwidth-bound program stops scaling at the
// bus-saturation core count P_sat = ceil(T_private(1) / T_shared). The
// compiler's traffic reductions lower T_shared, which both raises the
// speedup plateau and delays the knee: the fusion / store-elimination
// wins *grow* with core count.
//
// This binary is CI-gated: it exits nonzero unless, for every workload,
// the optimized variant saturates at strictly more cores than the
// original or plateaus at a strictly lower shared-bus time. Row values
// come from bench/fig_data.h and are regression-locked by
// tests/bench_golden_test.cpp against tests/golden/fig_multicore_scaling.csv.
// --json emits per-workload saturation points and plateau speedups for
// tools/check_bench_regression.py.
#include "fig_data.h"

#include <cstdio>
#include <cstring>
#include <iostream>
#include <map>

#include "bwc/support/csv.h"
#include "bwc/support/table.h"

int main(int argc, char** argv) {
  using namespace bwc;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      // Last row of each (workload, variant) group = largest core count.
      std::map<std::string, bench::ScalingRow> last;
      for (const auto& r : bench::multicore_scaling_rows())
        last[r.workload + "_" + r.variant] = r;
      std::printf("{\"bench\": \"fig_multicore_scaling\"");
      // `_ms` keys are lower-is-better; the checker keys direction off the
      // suffix.
      for (const auto& [key, r] : last)
        std::printf(", \"%s_sat_cores\": %d, \"%s_plateau_ms\": %.4f",
                    key.c_str(), r.saturation_cores, key.c_str(),
                    r.predicted_ms);
      std::printf("}\n");
      return 0;
    }
  }
  bench::print_header(
      "Multicore scaling: shared memory bus, original vs optimized");

  const std::vector<bench::ScalingRow> rows =
      bench::multicore_scaling_rows();

  // One table per (workload, variant) group, in row order.
  std::string group;
  TextTable* table = nullptr;
  std::vector<TextTable> tables;
  for (const auto& r : rows) {
    const std::string key = r.workload + "/" + r.variant;
    if (key != group) {
      group = key;
      tables.emplace_back(key + " (bus saturates at " +
                          std::to_string(r.saturation_cores) + " cores)");
      tables.back().set_header({"cores", "predicted ms", "speedup",
                                "binding"});
      table = &tables.back();
    }
    table->add_row({std::to_string(r.cores), fmt_fixed(r.predicted_ms, 3),
                    fmt_fixed(r.speedup, 2), r.binding});
  }
  for (const auto& t : tables) std::cout << t.render();

  bench::multicore_scaling_csv(rows).write_file("fig_multicore_scaling.csv");
  std::cout << "series written to fig_multicore_scaling.csv\n";

  // CI gate: optimization must delay the saturation knee or lower the
  // plateau time (= raise the plateau throughput) on every workload.
  struct Group {
    int saturation_cores = 0;
    double max_cores_ms = 0.0;  // time at the largest measured core count
  };
  std::map<std::string, std::map<std::string, Group>> groups;
  for (const auto& r : rows) {
    Group& g = groups[r.workload][r.variant];
    g.saturation_cores = r.saturation_cores;
    g.max_cores_ms = r.predicted_ms;  // rows are cores-ascending
  }
  bool ok = true;
  for (const auto& [workload, variants] : groups) {
    const Group& orig = variants.at("original");
    const Group& opt = variants.at("optimized");
    const bool later_knee = opt.saturation_cores > orig.saturation_cores;
    const bool higher_plateau = opt.max_cores_ms < orig.max_cores_ms;
    std::cout << workload << ": saturation " << orig.saturation_cores
              << " -> " << opt.saturation_cores << " cores, time at "
              << bench::kScalingMaxCores << " cores "
              << fmt_fixed(orig.max_cores_ms, 3) << " -> "
              << fmt_fixed(opt.max_cores_ms, 3) << " ms: "
              << (later_knee || higher_plateau ? "ok"
                                               : "REGRESSION -- gate failed")
              << "\n";
    ok = ok && (later_knee || higher_plateau);
  }
  return ok ? 0 : 1;
}
