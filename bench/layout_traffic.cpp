// Layout-transform line traffic: what the fourth transform family buys.
//
//   layout_traffic [--smoke] [--json]
//
// Replays each workload against a single-level cache with the layout
// estimator's reference geometry (32 KiB, 32-byte lines, 2-way -- the
// memsim L1 default) before and after the layout passes, and reports the
// line-traffic ratio plus the per-array breakdown the passes publish in
// their PassReport (the per_array remark field). The simulation is
// deterministic, so every ratio is exactly reproducible and pinned in
// BENCH_baseline.json via tools/check_bench_regression.py.
//
//   stride            bwcopt's --program stride (transposed_sweep 256)
//                     under the full layout pipeline: transpose fixes the
//                     input image's column walk, padding de-conflicts the
//                     output that is swept in both orders.
//   transposed_sweep  the same program at 512 x 512 (column stride 4 KiB:
//                     every sweep maps onto 4 of 512 sets).
//   conflict_streams  three 16 KiB read streams whose bases share one
//                     set phase; regroup-arrays interleaves them into a
//                     single stream.
//
// --smoke enforces the acceptance floors and exits non-zero when any
// fails:
//   - every workload's checksum is bit-identical before and after;
//   - every layout pipeline is verified (core::optimize runs with
//     verification on; a refuted pass would throw);
//   - line traffic shrinks >= 1.5x on stride and transposed_sweep, and
//     on conflict_streams;
//   - the layout passes publish a non-empty per-array breakdown.
// --json emits one JSON object for the regression checker.
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "bwc/core/optimizer.h"
#include "bwc/ir/program.h"
#include "bwc/memsim/cache_config.h"
#include "bwc/memsim/hierarchy.h"
#include "bwc/pass/report.h"
#include "bwc/runtime/compiled.h"
#include "bwc/workloads/extra_programs.h"

namespace {

using namespace bwc;

constexpr double kRatioFloor = 1.5;

struct Case {
  std::string key;
  ir::Program program;
  std::string passes;
};

struct Measured {
  std::uint64_t line_bytes = 0;
  double checksum = 0.0;
};

/// Cold replay against one default-geometry cache level: the boundary
/// behind it sees exactly the line traffic the layout estimator models.
Measured measure(const ir::Program& program) {
  memsim::MemoryHierarchy h({memsim::CacheConfig{}});
  runtime::ExecOptions opts;
  opts.hierarchy = &h;
  const runtime::ExecResult r = runtime::execute_compiled(program, opts);
  return {h.memory_traffic_bytes(), r.checksum};
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false, json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--json") == 0) json = true;
  }

  const std::string full = "transpose-layout,regroup-arrays,pad-arrays";
  std::vector<Case> cases;
  cases.push_back({"stride", workloads::transposed_sweep(256), full});
  cases.push_back(
      {"transposed_sweep", workloads::transposed_sweep(512), full});
  cases.push_back(
      {"conflict_streams", workloads::conflict_streams(2048, 3),
       "regroup-arrays"});

  if (!json) {
    bench::print_header("Layout passes: line traffic before/after" +
                        std::string(smoke ? " (smoke)" : ""));
    std::printf("%-18s %14s %14s %8s\n", "workload", "before B", "after B",
                "ratio");
  }

  bool ok = true;
  std::vector<std::pair<std::string, double>> metrics;
  for (const Case& c : cases) {
    const Measured before = measure(c.program);

    core::OptimizerOptions opts;
    opts.passes = c.passes;  // verification stays on (opts.verify)
    const core::OptimizeResult result = core::optimize(c.program, opts);
    const Measured after = measure(result.program);

    const double ratio = static_cast<double>(before.line_bytes) /
                         static_cast<double>(after.line_bytes > 0
                                                 ? after.line_bytes
                                                 : 1);
    metrics.emplace_back("line_ratio_" + c.key, ratio);

    bool breakdown = false;
    for (const pass::PassReport& p : result.pipeline.passes)
      if (!p.per_array.empty()) breakdown = true;

    if (!json) {
      std::printf("%-18s %14llu %14llu %7.2fx\n", c.key.c_str(),
                  static_cast<unsigned long long>(before.line_bytes),
                  static_cast<unsigned long long>(after.line_bytes), ratio);
      for (const pass::PassReport& p : result.pipeline.passes) {
        if (!p.changed) continue;
        for (const pass::ArrayTraffic& t : p.per_array) {
          if (t.bytes_before == t.bytes_after) continue;
          std::printf("    %s: %s estimated %lld -> %lld bytes\n",
                      p.pass.c_str(), t.name.c_str(),
                      static_cast<long long>(t.bytes_before),
                      static_cast<long long>(t.bytes_after));
        }
      }
    }

    if (before.checksum != after.checksum) {
      std::printf("FAIL: %s checksum changed (%.17g -> %.17g)\n",
                  c.key.c_str(), before.checksum, after.checksum);
      ok = false;
    }
    if (smoke && ratio < kRatioFloor) {
      std::printf("FAIL: %s line-traffic ratio %.2fx below the %.1fx floor\n",
                  c.key.c_str(), ratio, kRatioFloor);
      ok = false;
    }
    if (smoke && !breakdown) {
      std::printf("FAIL: %s pipeline published no per-array breakdown\n",
                  c.key.c_str());
      ok = false;
    }
  }

  if (json) {
    std::printf("{\"bench\": \"layout_traffic\"");
    for (const auto& [key, value] : metrics)
      std::printf(", \"%s\": %.3f", key.c_str(), value);
    std::printf("}\n");
  }
  return ok ? 0 : 1;
}
