// Figure 6: array shrinking and peeling.
//
// The paper's running example: after fusion, the two N^2 arrays a and b
// collapse to two N-sized arrays plus two scalars ("a dramatic reduction
// in storage space"), cutting bandwidth consumption at every hierarchy
// level. This binary runs the original, fused, and storage-reduced
// programs on the simulated Origin2000 and reports footprint, per-level
// traffic and predicted time.
#include "bench_common.h"

#include <iostream>

#include "bwc/core/optimizer.h"
#include "bwc/ir/printer.h"
#include "bwc/model/measure.h"
#include "bwc/support/table.h"
#include "bwc/transform/storage_reduction.h"
#include "bwc/workloads/paper_programs.h"

int main() {
  using namespace bwc;
  bench::print_header("Figure 6: array shrinking and peeling (N = 512)");

  const std::int64_t n = 512;
  const machine::MachineModel machine = bench::o2k();
  const ir::Program original = workloads::fig6_original(n);

  core::OptimizerOptions fusion_only;
  fusion_only.reduce_storage = false;
  fusion_only.eliminate_stores = false;
  const ir::Program fused = core::optimize(original, fusion_only).program;
  const core::OptimizeResult full = core::optimize(original);

  TextTable t("Simulated Origin2000 (caches/16)");
  t.set_header({"version", "referenced bytes", "L1-Reg", "L2-L1", "Mem-L2",
                "predicted ms", "checksum"});
  const ir::Program* versions[] = {&original, &fused, &full.program};
  const char* names[] = {"original", "after fusion",
                         "after shrinking+peeling"};
  for (int i = 0; i < 3; ++i) {
    const auto m = model::measure(*versions[i], machine);
    std::vector<std::string> row = {
        names[i],
        fmt_bytes(static_cast<double>(
            transform::referenced_array_bytes(*versions[i])))};
    for (const auto& b : m.profile.boundaries)
      row.push_back(fmt_bytes(static_cast<double>(b.total())));
    row.push_back(fmt_fixed(m.time.total_s * 1e3, 2));
    row.push_back(fmt_fixed(m.exec.checksum, 3));
    t.add_row(row);
  }
  std::cout << t.render();

  std::cout << "\npass log:\n" << core::render_log(full);
  std::cout << "\npaper: two N^2 arrays -> two N arrays + two scalars.\n"
            << "here:  two N^2 arrays -> three N buffers + one scalar\n"
            << "       (cur/prev column pair instead of scalar+column;\n"
            << "       same N^2 -> N asymptotics).\n";
  std::cout << "\nstorage-reduced program:\n"
            << ir::to_string(full.program);
  return 0;
}
