// Optimizer-pipeline throughput: wall-clock cost of a full
// core::optimize() run, and what the pass layer's analysis cache buys.
//
// The pass manager serves statement summaries, liveness, the fusion graph
// and traffic bounds from the AnalysisManager cache across passes
// (src/bwc/pass/analysis_manager.h); with the cache disabled every query
// recomputes from the IR, which is what each pass did for itself before
// the pass-manager refactor. The cached and uncached runs produce
// bit-identical programs -- checked here on every workload -- so the
// ratio isolates the cost of re-derived analyses.
//
// The gated workloads model steady-state re-optimization: the program is
// first driven to the pipeline's fixed point (nothing changes any more,
// the incremental-recompile case), then a convergence pipeline -- the
// fuse/reduce-storage/eliminate-stores trio run twice, as a driver
// checking for a fixed point would -- is timed. Building the fusion
// graph dominates every other analysis by ~10x on multi-loop programs,
// and at the fixed point no pass invalidates it, so the cached run
// builds it once where the uncached run rebuilds it per fuse pass. The
// paper workloads are reported ungated for context: they are tiny and
// converge in one round, so fixed per-run costs (clone, solver) dilute
// the cache signal.
//
// The verifier is off: it is deliberately independent of the analysis
// layer (docs/VERIFY.md) and its instance-level replay would swamp the
// compile-time signal under measurement.
//
//   native_pipeline_throughput [--smoke] [--json]
//
// --smoke exits non-zero if cached/uncached outputs differ or the cache
// speedup on any gated workload falls below the regression floor -- CI
// runs this mode so perf regressions fail loudly. --json emits one JSON
// object of metrics for tools/check_bench_regression.py. Numbers are
// recorded in EXPERIMENTS.md.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "bwc/core/optimizer.h"
#include "bwc/ir/printer.h"
#include "bwc/support/prng.h"
#include "bwc/workloads/extra_programs.h"
#include "bwc/workloads/paper_programs.h"
#include "bwc/workloads/random_programs.h"

namespace {

using namespace bwc;

// Regression floor for --smoke. Measured cache speedups are ~1.9-2.6x on
// the gated steady-state workloads; the floor proves the cache pays
// >= 1.5x while leaving headroom for timer noise on loaded hosts.
constexpr double kCacheSpeedupFloor = 1.5;

// The fuse/reduce-storage/eliminate-stores trio twice over: the pipeline
// a fixed-point driver runs. The second fuse pass is where the cache
// pays -- at the fixed point nothing between the two invalidates the
// fusion graph. Heuristic solver: exact enumeration's Bell-number
// blowup would time the solver, not the pipeline machinery.
const char kTrio[] = "fuse(solver=greedy),reduce-storage,eliminate-stores";

double seconds_of(const std::function<void()>& fn, int reps) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return best;
}

struct Workload {
  std::string key;
  ir::Program program;
  std::string spec;
  /// Gated workloads enter the --smoke regression floor; the others are
  /// reported for context.
  bool gate = true;
};

/// A multi-loop stencil chain: the shape fusion sweeps exist for, and
/// large enough statically that analysis dominates optimize() cost.
ir::Program loop_chain(int loops, std::int64_t n, std::uint64_t seed) {
  Prng rng(seed);
  workloads::RandomProgramParams params;
  params.num_loops = loops;
  params.num_arrays = 2 + loops / 2;
  params.n = n;
  return workloads::random_program(rng, params);
}

/// Drives `program` to the fixed point of `spec`: re-optimizing no
/// longer changes it, so a timed run exercises pure analysis + pass
/// machinery with zero transform work in either arm.
ir::Program fixed_point(ir::Program program, const std::string& spec) {
  core::OptimizerOptions opts;
  opts.passes = spec;
  opts.verify = false;
  for (int iter = 0; iter < 8; ++iter) {
    ir::Program next = core::optimize(program, opts).program;
    const bool stable = ir::equal(program, next);
    program = std::move(next);
    if (stable) return program;
  }
  std::fprintf(stderr, "warning: no fixed point after 8 rounds\n");
  return program;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false, json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--json") == 0) json = true;
  }

  const int reps = smoke ? 3 : 5;
  const std::string trio2 = std::string(kTrio) + "," + kTrio;
  const std::string full_spec =
      std::string("interchange,") + kTrio + ",scalar-replace";

  std::vector<Workload> workloads;
  workloads.push_back(
      {"fig7", workloads::fig7_original(smoke ? 10000 : 100000), full_spec,
       /*gate=*/false});
  workloads.push_back({"fig6", workloads::fig6_original(smoke ? 256 : 2000),
                       full_spec, /*gate=*/false});
  workloads.push_back({"blur", workloads::blur_sharpen(smoke ? 64 : 256),
                       full_spec, /*gate=*/false});
  workloads.push_back({"steady24", fixed_point(loop_chain(24, 64, 7), trio2),
                       trio2, /*gate=*/true});
  workloads.push_back({"steady48", fixed_point(loop_chain(48, 64, 11), trio2),
                       trio2, /*gate=*/true});

  if (!json) {
    bench::print_header(
        "Optimizer-pipeline throughput: analysis cache on vs off" +
        std::string(smoke ? " (smoke)" : ""));
    std::printf("%-10s %-6s %12s %12s %9s\n", "workload", "gated",
                "cached ms", "uncached ms", "speedup");
  }

  bool exact = true;
  double min_gated = 1e300;
  std::vector<std::pair<std::string, double>> metrics;
  for (const Workload& w : workloads) {
    core::OptimizerOptions opts;
    opts.passes = w.spec;
    opts.verify = false;
    opts.cache_analyses = true;
    const core::OptimizeResult cached = core::optimize(w.program, opts);
    opts.cache_analyses = false;
    const core::OptimizeResult uncached = core::optimize(w.program, opts);
    if (!ir::equal(cached.program, uncached.program)) {
      std::printf("!! cache on/off mismatch on %s\n", w.key.c_str());
      exact = false;
    }

    opts.cache_analyses = true;
    const double warm =
        seconds_of([&] { (void)core::optimize(w.program, opts); }, reps);
    opts.cache_analyses = false;
    const double cold =
        seconds_of([&] { (void)core::optimize(w.program, opts); }, reps);
    const double speedup = cold / warm;
    if (!json) {
      std::printf("%-10s %-6s %12.3f %12.3f %8.2fx\n", w.key.c_str(),
                  w.gate ? "yes" : "no", warm * 1e3, cold * 1e3, speedup);
    }
    metrics.emplace_back("cache_speedup_" + w.key, speedup);
    if (w.gate) min_gated = std::min(min_gated, speedup);
  }

  if (json) {
    std::printf("{\"bench\": \"native_pipeline_throughput\"");
    for (const auto& [key, value] : metrics)
      std::printf(", \"%s\": %.3f", key.c_str(), value);
    std::printf("}\n");
  } else {
    std::printf("\nexactness: %s, min gated cache speedup: %.2fx\n",
                exact ? "bit-identical" : "MISMATCH", min_gated);
  }
  if (!exact) return 1;
  if (smoke && min_gated < kCacheSpeedupFloor) {
    std::printf("FAIL: cache speedup below regression floor %.1fx\n",
                kCacheSpeedupFloor);
    return 1;
  }
  return 0;
}
