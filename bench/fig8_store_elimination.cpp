// Figure 8: effect of store elimination.
//
// Paper measurements for the Figure 7 program:
//                    original   fusion only   + store elimination
//   Origin2000        0.32 s      0.22 s           0.16 s
//   Exemplar          0.24 s      0.21 s           0.14 s
// "The combined effect is a speedup of almost 2 on both machines."
#include "bench_common.h"

#include <iostream>

#include "bwc/core/optimizer.h"
#include "bwc/model/measure.h"
#include "bwc/support/table.h"
#include "bwc/workloads/paper_programs.h"

int main() {
  using namespace bwc;
  bench::print_header("Figure 8: effect of store elimination (N = 2,000,000)");

  const std::int64_t n = 2000000;
  const ir::Program original = workloads::fig7_original(n);

  core::OptimizerOptions fusion_only;
  fusion_only.reduce_storage = false;
  fusion_only.eliminate_stores = false;
  const ir::Program fused = core::optimize(original, fusion_only).program;
  const ir::Program eliminated = core::optimize(original).program;

  struct MachineUnderTest {
    machine::MachineModel scaled;
    machine::MachineModel full;
  };
  const MachineUnderTest machines[] = {
      {bench::o2k(), machine::origin2000_r10k()},
      {bench::exemplar(), machine::exemplar_pa8000()},
  };

  TextTable t("Predicted execution time (bandwidth-bound model, seconds)");
  t.set_header({"machine", "original", "fusion only", "store elimination",
                "total speedup"});
  for (const auto& m : machines) {
    double times[3];
    const ir::Program* versions[] = {&original, &fused, &eliminated};
    for (int i = 0; i < 3; ++i) {
      memsim::MemoryHierarchy h = m.scaled.make_hierarchy();
      runtime::ExecOptions opts;
      opts.hierarchy = &h;
      const auto exec = runtime::execute(*versions[i], opts);
      times[i] = machine::predict_time(exec.profile, m.full).total_s;
    }
    t.add_row({m.full.name, fmt_fixed(times[0], 3), fmt_fixed(times[1], 3),
               fmt_fixed(times[2], 3),
               fmt_fixed(times[0] / times[2], 2) + "x"});
  }
  std::cout << t.render();
  std::cout << "\npaper: Origin2000 0.32 / 0.22 / 0.16 s (2.0x); "
               "Exemplar 0.24 / 0.21 / 0.14 s (1.7x)\n"
               "claim under reproduction: fusion alone helps; removing the "
               "writeback stacks to ~2x.\n";
  return 0;
}
