// Figure 1: Program and machine balance.
//
// Paper values (bytes per flop, SGI Origin2000):
//   convolution  6.4 / 5.1 / 5.2      FFT      8.3 / 3.0 / 2.7
//   dmxpy        8.3 / 8.3 / 8.4      NAS/SP  10.8 / 6.4 / 4.9
//   mm (-O2)    24.0 / 8.2 / 5.9      Sweep3D 15.0 / 9.1 / 7.8
//   mm (-O3)    8.08 / 0.97 / 0.04    machine  4   / 4   / 0.8
//
// This binary measures the same six applications (the -O2/-O3 matrix
// multiply contrast is naive jki vs cache-blocked) on the simulated
// Origin2000 hierarchy and prints the same table.
#include "bench_common.h"

#include <iostream>

#include "bwc/model/balance.h"
#include "bwc/workloads/kernels.h"
#include "bwc/workloads/sp_proxy.h"
#include "bwc/workloads/sweep3d_proxy.h"

int main() {
  using namespace bwc;
  bench::print_header(
      "Figure 1: program and machine balance (simulated Origin2000, "
      "caches/16)");

  const machine::MachineModel machine = bench::o2k();
  std::vector<model::ProgramBalance> rows;

  {
    workloads::AddressSpace space;
    workloads::Convolution conv(200000, 3, space);
    rows.push_back(model::ProgramBalance::from_profile(
        "convolution",
        bench::steady_state_profile(machine,
                                    [&](auto& rec) { conv.run(rec); })));
  }
  {
    workloads::AddressSpace space;
    workloads::Dmxpy dmxpy(120000, 16, space);
    rows.push_back(model::ProgramBalance::from_profile(
        "dmxpy",
        bench::steady_state_profile(machine,
                                    [&](auto& rec) { dmxpy.run(rec); })));
  }
  {
    workloads::AddressSpace space;
    workloads::MatMul mm(384, space);
    rows.push_back(model::ProgramBalance::from_profile(
        "mm (-O2, jki)", bench::steady_state_profile(machine, [&](auto& rec) {
          mm.reset_c();
          mm.run_jki(rec);
        })));
  }
  {
    workloads::AddressSpace space;
    workloads::MatMul mm(384, space);
    rows.push_back(model::ProgramBalance::from_profile(
        "mm (-O3, blocked)",
        bench::steady_state_profile(machine, [&](auto& rec) {
          mm.reset_c();
          mm.run_blocked(rec, 16);
        })));
  }
  {
    workloads::AddressSpace space;
    workloads::Fft fft(131072, space);
    rows.push_back(model::ProgramBalance::from_profile(
        "FFT", bench::steady_state_profile(
                   machine, [&](auto& rec) { fft.run(rec); })));
  }
  {
    workloads::AddressSpace space;
    workloads::SpProxy sp(24, space);
    rows.push_back(model::ProgramBalance::from_profile(
        "NAS/SP (proxy)", bench::steady_state_profile(machine, [&](auto& rec) {
          sp.step(rec);
        })));
  }
  {
    workloads::AddressSpace space;
    workloads::Sweep3dProxy sweep(28, 6, space);
    rows.push_back(model::ProgramBalance::from_profile(
        "Sweep3D (proxy)",
        bench::steady_state_profile(machine,
                                    [&](auto& rec) { sweep.sweep(rec); })));
  }

  std::cout << model::render_balance_table(rows, machine::origin2000_r10k());
  std::cout << "\nPaper (hardware counters, full-size Origin2000):\n"
               "  convolution 6.4/5.1/5.2  dmxpy 8.3/8.3/8.4  "
               "mm-O2 24/8.2/5.9  mm-O3 8.08/0.97/0.04\n"
               "  FFT 8.3/3.0/2.7  NAS/SP 10.8/6.4/4.9  Sweep3D "
               "15.0/9.1/7.8  machine 4/4/0.8\n";
  return 0;
}
