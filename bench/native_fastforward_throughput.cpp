// Steady-state fast-forward throughput: wall-clock of the compiled replay
// engine with and without periodic-loop macrosimulation (--fast-forward),
// on fig3-scale stride-1 kernels.
//
// Fast-forward certifies the memory hierarchy's periodic fixpoint and
// advances the remaining trips analytically (docs/runtime.md); the values
// of the skipped iterations still run -- against a no-op recorder -- so
// every observable stays bit-identical while the per-access simulation
// cost disappears. The speedup therefore measures how much of replay time
// full cache simulation was, and it grows with the fraction of the trip
// space past the cold fill: the N-sweep legs (x1, x8, x64) document that
// scaling, which is what makes paper-scale problem sizes tractable.
//
//   native_fastforward_throughput [--smoke] [--json]
//
// --smoke shrinks sizes and exits non-zero if the two legs disagree on
// any observable, a gated kernel fails to engage fast-forward, or the
// speedup falls below the regression floor -- CI runs this mode. --json
// emits one JSON object of metrics for tools/check_bench_regression.py.
// Numbers are recorded in EXPERIMENTS.md.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "bench_common.h"
#include "bwc/ir/dsl.h"
#include "bwc/runtime/compiled.h"
#include "bwc/workloads/paper_programs.h"

namespace {

using namespace bwc;

// Regression floor for --smoke. Measured speedups on the gated kernels
// are well above this (see EXPERIMENTS.md); the floor leaves headroom for
// timer noise on loaded CI hosts while still catching a broken detector
// (which would collapse the ratio to ~1x).
constexpr double kSpeedupFloor = 20.0;

/// Stride-1 update sweeps: `reps` passes of a[i] = a[i] + c. The repeat
/// loop is the steady-state shape the paper times; after the first pass
/// the hierarchy is warm and fast-forward certifies almost immediately.
ir::Program stride1_update(std::int64_t n, std::int64_t reps) {
  using namespace ir::dsl;  // NOLINT
  ir::Program p("stride1 update x" + std::to_string(reps));
  const ir::ArrayId a = p.add_array("A", {n});
  p.mark_output_array(a);
  p.append(loop("r", 1, reps,
                loop("i", 1, n,
                     assign(a, {v("i")}, at(a, v("i")) + lit(0.4)))));
  return p;
}

/// 1w2r kernel (Figure 3's family): two read streams, one written.
ir::Program stride1_1w2r(std::int64_t n, std::int64_t reps) {
  using namespace ir::dsl;  // NOLINT
  ir::Program p("stride1 1w2r x" + std::to_string(reps));
  const ir::ArrayId a = p.add_array("A", {n});
  const ir::ArrayId b = p.add_array("B", {n});
  p.mark_output_array(a);
  p.append(loop("r", 1, reps,
                loop("i", 1, n,
                     assign(a, {v("i")},
                            at(a, v("i")) + at(b, v("i"))))));
  return p;
}

double seconds_of(const std::function<void()>& fn, int reps) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return best;
}

bool results_match(const runtime::ExecResult& a, const runtime::ExecResult& b,
                   const char* label) {
  bool ok = a.checksum == b.checksum && a.flops == b.flops &&
            a.loads == b.loads && a.stores == b.stores &&
            a.profile.boundaries.size() == b.profile.boundaries.size();
  if (ok) {
    for (std::size_t i = 0; i < a.profile.boundaries.size(); ++i) {
      ok = ok &&
           a.profile.boundaries[i].bytes_toward_cpu ==
               b.profile.boundaries[i].bytes_toward_cpu &&
           a.profile.boundaries[i].bytes_from_cpu ==
               b.profile.boundaries[i].bytes_from_cpu;
    }
  }
  if (!ok) std::printf("!! fast-forward mismatch on %s\n", label);
  return ok;
}

struct FfRow {
  double off_s = 0.0;
  double on_s = 0.0;
  std::uint64_t skipped = 0;  // fast-forwarded iterations
  double speedup() const { return off_s / on_s; }
};

/// Time one program with fast-forward off vs on, both replayed by the
/// compiled engine against the machine's hierarchy with coalescing on
/// (the measurement configuration).
FfRow profile_fast_forward(const ir::Program& p,
                           const machine::MachineModel& machine, int reps,
                           bool* exact) {
  const runtime::LoweredProgram lowered = runtime::lower(p);
  const auto run = [&](bool fast_forward) {
    memsim::MemoryHierarchy h = machine.make_hierarchy();
    runtime::ExecOptions opts;
    opts.hierarchy = &h;
    opts.fast_forward = fast_forward;
    return runtime::execute_lowered(lowered, opts);
  };
  const runtime::ExecResult off = run(false);
  const runtime::ExecResult on = run(true);
  *exact = results_match(off, on, p.name().c_str()) && *exact;

  FfRow row;
  row.skipped = on.fast_forwarded_iterations;
  row.off_s = seconds_of([&] { run(false); }, reps);
  // The on leg is an order of magnitude cheaper, so best-of more reps
  // costs little and keeps scheduler jitter out of the gated ratio.
  row.on_s = seconds_of([&] { run(true); }, 3 * reps);
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false, json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--json") == 0) json = true;
  }

  // The gated kernels run several sweeps over an array well past the
  // hierarchy's capacity: one-time array init (identical in both legs)
  // amortizes, and the per-sweep cold-fill/drain span the detector must
  // simulate is a small fraction of the trip space. That is the regime
  // fast-forward exists for, and where its speedup is honest to gate.
  const std::int64_t n0 = smoke ? 3000000 : 6000000;
  const std::int64_t sweeps = smoke ? 6 : 8;
  const int reps = smoke ? 2 : 3;
  const machine::MachineModel o2k = bench::o2k();

  if (!json) {
    bench::print_header(
        "Steady-state fast-forward: compiled replay, ff off vs on" +
        std::string(smoke ? " (smoke)" : ""));
    std::printf("%-26s %10s %12s %12s %9s %14s\n", "program", "N", "off s",
                "on s", "speedup", "skipped iters");
  }

  bool exact = true;
  bool engaged = true;
  double min_speedup = 1e300;
  std::vector<std::pair<std::string, double>> metrics;
  // `speedup` keys carry the wall-clock ratio (noisy; the baseline check
  // allows 20%); `skipped` keys carry the fast-forwarded iteration count,
  // which is deterministic and catches any detector-engagement regression
  // exactly.
  const auto bench_one = [&](const ir::Program& p, std::int64_t n,
                             const char* key, bool emit_speedup, bool gate) {
    const FfRow row = profile_fast_forward(p, o2k, reps, &exact);
    if (!json)
      std::printf("%-26s %10lld %12.4f %12.4f %8.2fx %14llu\n",
                  p.name().c_str(), static_cast<long long>(n), row.off_s,
                  row.on_s, row.speedup(),
                  static_cast<unsigned long long>(row.skipped));
    if (key != nullptr) {
      if (emit_speedup)
        metrics.emplace_back(std::string("speedup_") + key, row.speedup());
      metrics.emplace_back(std::string("skipped_") + key,
                           static_cast<double>(row.skipped));
    }
    engaged = engaged && row.skipped > 0;
    if (gate) min_speedup = std::min(min_speedup, row.speedup());
  };

  // Only the update kernel carries the hard floor: its off leg is pure
  // simulation cost, so the ratio is stable run to run. The 1w2r kernel's
  // on leg is bandwidth-bound across three streams and its ratio hovers at
  // the floor under CI jitter; it stays exactness- and engagement-gated
  // here, and its speedup is guarded by the >20% regression check against
  // BENCH_baseline.json instead of an absolute floor.
  bench_one(stride1_update(n0, sweeps), n0, "update", /*emit_speedup=*/true,
            /*gate=*/true);
  bench_one(stride1_1w2r(n0, sweeps), n0, "1w2r", /*emit_speedup=*/true,
            /*gate=*/false);

  // N-sweep: the cold-fill/drain span is a fixed per-sweep cost (the
  // stream must sweep the hierarchy's capacity before the fixpoint can
  // certify), so the skipped fraction -- and with it the speedup -- grows
  // with N. The x64 leg is paper-scale and runs in CI too: completing a
  // 64x-larger problem inside the smoke budget is the point of the
  // subsystem.
  const std::int64_t base = 150000;
  for (const std::int64_t mult : {std::int64_t{1}, std::int64_t{8},
                                  std::int64_t{64}}) {
    const std::int64_t n = base * mult;
    const std::string key = "sweep_x" + std::to_string(mult);
    bench_one(stride1_update(n, 4), n, key.c_str(), /*emit_speedup=*/false,
              /*gate=*/false);
  }

  if (json) {
    std::printf("{\"bench\": \"native_fastforward_throughput\"");
    for (const auto& [key, value] : metrics)
      std::printf(", \"%s\": %.3f", key.c_str(), value);
    std::printf("}\n");
  } else {
    std::printf("\nexactness: %s, engaged: %s, min gated speedup: %.2fx\n",
                exact ? "byte-identical" : "MISMATCH",
                engaged ? "yes" : "NO", min_speedup);
  }
  if (!exact || !engaged) return 1;
  if (smoke && min_speedup < kSpeedupFloor) {
    std::printf("FAIL: speedup below regression floor %.1fx\n",
                kSpeedupFloor);
    return 1;
  }
  return 0;
}
