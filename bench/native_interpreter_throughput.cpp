// Replay-engine throughput: accesses/sec of the tree-walking reference
// interpreter vs the compiled engine (slot-resolved bytecode, fused
// stride-1 stream loops, coalesced cache access), on fig3-scale stride-1
// kernels and a 2-D pipeline.
//
// Every figure and ablation in this repo is produced by replaying access
// streams, so engine throughput bounds the whole evaluation's turnaround.
// Reported both without a hierarchy (pure interpretation overhead) and
// with the scaled Origin2000 hierarchy attached (the measurement
// configuration, where coalescing batches stride-1 runs into line-granular
// simulator accesses).
//
//   native_interpreter_throughput [--smoke] [--json]
//
// --smoke shrinks the problem size, and exits non-zero if the two engines
// disagree on any observable or the compiled engine's speedup falls below
// the regression floor -- CI runs this mode so perf regressions fail
// loudly. --json emits one JSON object of metrics for
// tools/check_bench_regression.py. Numbers are recorded in EXPERIMENTS.md.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "bench_common.h"
#include "bwc/ir/dsl.h"
#include "bwc/runtime/compiled.h"
#include "bwc/runtime/interpreter.h"
#include "bwc/workloads/paper_programs.h"

namespace {

using namespace bwc;

// Regression floors for --smoke, per configuration. Measured speedups are
// ~5-9x (semantics) and ~2-2.9x (o2k hierarchy, where per-element cache
// simulation is a large shared cost and the interleaved 1w2r stream defeats
// coalescing); the floors leave headroom for timer noise on loaded hosts.
constexpr double kSemanticsSpeedupFloor = 3.5;
constexpr double kHierarchySpeedupFloor = 1.5;

/// Fig3-style steady-state kernels: `reps` stride-1 sweeps over the same
/// arrays. The outer repeat loop amortizes one-time array initialization
/// (identical in both engines) so the measurement isolates replay
/// throughput, matching how the paper times its traversal kernels.
ir::Program stride1_sweep(std::int64_t n, std::int64_t reps) {
  using namespace ir::dsl;  // NOLINT
  ir::Program p("stride1 sweep x" + std::to_string(reps));
  const ir::ArrayId a = p.add_array("A", {n});
  p.add_scalar("sum");
  p.mark_output_scalar("sum");
  p.append(assign("sum", lit(0.0)));
  p.append(loop("r", 1, reps,
                loop("i", 1, n,
                     assign(a, {v("i")}, at(a, v("i")) + lit(0.4))),
                loop("i", 1, n,
                     assign("sum", sref("sum") + at(a, v("i"))))));
  return p;
}

/// 1w2r-style kernel (Figure 3's family): two read streams, one written.
ir::Program stride1_1w2r(std::int64_t n, std::int64_t reps) {
  using namespace ir::dsl;  // NOLINT
  ir::Program p("stride1 1w2r x" + std::to_string(reps));
  const ir::ArrayId a = p.add_array("A", {n});
  const ir::ArrayId b = p.add_array("B", {n});
  p.mark_output_array(a);
  p.append(loop("r", 1, reps,
                loop("i", 1, n,
                     assign(a, {v("i")},
                            at(a, v("i")) + at(b, v("i"))))));
  return p;
}

double seconds_of(const std::function<void()>& fn, int reps) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return best;
}

struct EngineRow {
  double ref_aps = 0.0;       // reference interpreter accesses/sec
  double compiled_aps = 0.0;  // compiled engine accesses/sec
  double speedup() const { return compiled_aps / ref_aps; }
};

bool results_match(const runtime::ExecResult& a, const runtime::ExecResult& b,
                   const char* label) {
  bool ok = a.checksum == b.checksum && a.flops == b.flops &&
            a.loads == b.loads && a.stores == b.stores &&
            a.profile.boundaries.size() == b.profile.boundaries.size();
  if (ok) {
    for (std::size_t i = 0; i < a.profile.boundaries.size(); ++i) {
      ok = ok &&
           a.profile.boundaries[i].bytes_toward_cpu ==
               b.profile.boundaries[i].bytes_toward_cpu &&
           a.profile.boundaries[i].bytes_from_cpu ==
               b.profile.boundaries[i].bytes_from_cpu;
    }
  }
  if (!ok) std::printf("!! engine mismatch on %s\n", label);
  return ok;
}

/// Time one program under both engines. `machine` may be null for the
/// no-simulation configuration.
EngineRow profile_engines(const ir::Program& p,
                          const machine::MachineModel* machine, int reps,
                          bool* exact) {
  const runtime::LoweredProgram lowered = runtime::lower(p);
  const auto run_ref = [&] {
    memsim::MemoryHierarchy h =
        machine != nullptr ? machine->make_hierarchy()
                           : memsim::MemoryHierarchy({});
    runtime::ExecOptions opts;
    opts.hierarchy = machine != nullptr ? &h : nullptr;
    return runtime::execute(p, opts);
  };
  const auto run_compiled = [&] {
    memsim::MemoryHierarchy h =
        machine != nullptr ? machine->make_hierarchy()
                           : memsim::MemoryHierarchy({});
    runtime::ExecOptions opts;
    opts.hierarchy = machine != nullptr ? &h : nullptr;
    return runtime::execute_lowered(lowered, opts);
  };

  const runtime::ExecResult ref = run_ref();
  const runtime::ExecResult fast = run_compiled();
  *exact = results_match(ref, fast, p.name().c_str()) && *exact;

  const double accesses = static_cast<double>(ref.loads + ref.stores);
  EngineRow row;
  row.ref_aps = accesses / seconds_of([&] { run_ref(); }, reps);
  row.compiled_aps = accesses / seconds_of([&] { run_compiled(); }, reps);
  return row;
}

void print_row(const std::string& name, const char* config,
               const EngineRow& row) {
  std::printf("%-28s %-14s %12.2e %12.2e %8.2fx\n", name.c_str(), config,
              row.ref_aps, row.compiled_aps, row.speedup());
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false, json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--json") == 0) json = true;
  }

  const std::int64_t n1 = smoke ? 100000 : 1000000;  // fig3-scale stride-1
  const std::int64_t sweeps = smoke ? 6 : 10;        // steady-state repeats
  const std::int64_t n2 = smoke ? 96 : 400;          // 2-D pipeline
  const int reps = smoke ? 2 : 3;
  const machine::MachineModel o2k = bench::o2k();

  if (!json) {
    bench::print_header(
        "Replay-engine throughput: reference interpreter vs compiled engine" +
        std::string(smoke ? " (smoke)" : ""));
    std::printf("%-28s %-14s %12s %12s %9s\n", "program", "config",
                "ref acc/s", "compiled", "speedup");
  }

  bool exact = true;
  double min_semantics = 1e300, min_hierarchy = 1e300;
  std::vector<std::pair<std::string, double>> metrics;
  // `gate`: steady-state stride-1 kernels enter the regression floors; the
  // cold single-pass programs (dominated by identical init cost in both
  // engines) are reported for context only.
  const auto bench_one = [&](const ir::Program& p, const char* key,
                             bool gate) {
    const EngineRow plain = profile_engines(p, nullptr, reps, &exact);
    const EngineRow sim = profile_engines(p, &o2k, reps, &exact);
    if (!json) {
      print_row(p.name(), "semantics", plain);
      print_row(p.name(), "o2k hierarchy", sim);
    }
    if (key != nullptr) {
      metrics.emplace_back(std::string("semantics_") + key, plain.speedup());
      metrics.emplace_back(std::string("hierarchy_") + key, sim.speedup());
    }
    if (gate) {
      min_semantics = std::min(min_semantics, plain.speedup());
      min_hierarchy = std::min(min_hierarchy, sim.speedup());
    }
  };

  bench_one(stride1_sweep(n1, sweeps), "sweep", /*gate=*/true);
  bench_one(stride1_1w2r(n1, sweeps), "1w2r", /*gate=*/true);
  bench_one(workloads::fig7_original(n1), nullptr, /*gate=*/false);
  bench_one(workloads::fig6_original(n2), nullptr, /*gate=*/false);

  if (json) {
    std::printf("{\"bench\": \"native_interpreter_throughput\"");
    for (const auto& [key, value] : metrics)
      std::printf(", \"%s\": %.3f", key.c_str(), value);
    std::printf("}\n");
  } else {
    std::printf(
        "\nexactness: %s, min steady-state speedup: %.2fx semantics, "
        "%.2fx hierarchy\n",
        exact ? "byte-identical" : "MISMATCH", min_semantics, min_hierarchy);
  }
  if (!exact) return 1;
  if (smoke && (min_semantics < kSemanticsSpeedupFloor ||
                min_hierarchy < kHierarchySpeedupFloor)) {
    std::printf("FAIL: speedup below regression floors %.1fx/%.1fx\n",
                kSemanticsSpeedupFloor, kHierarchySpeedupFloor);
    return 1;
  }
  return 0;
}
