// Complexity claims of Section 3.1, measured.
//
// The paper proves two-partitioning polynomial ("cubic to the number of
// arrays, linear to the number of loops") and general multi-partitioning
// NP-complete. This google-benchmark binary times the solvers as the
// graph grows: the exact enumeration's Bell-number blow-up against the
// polynomial min-cut two-partitioning and the heuristics.
#include <benchmark/benchmark.h>

#include "bwc/fusion/solvers.h"
#include "bwc/support/prng.h"

namespace {

using namespace bwc;

/// Random fusion graph with exactly one fusion-preventing pair (the
/// paper's restricted two-partitioning form), so every solver applies.
fusion::FusionGraph make_graph(int loops, int arrays, std::uint64_t seed) {
  Prng rng(seed);
  std::vector<std::vector<int>> pins(static_cast<std::size_t>(arrays));
  for (auto& p : pins) {
    for (int l = 0; l < loops; ++l) {
      if (rng.chance(0.4)) p.push_back(l);
    }
    if (p.empty())
      p.push_back(static_cast<int>(rng.uniform(
          static_cast<std::uint64_t>(loops))));
  }
  return fusion::graph_from_spec(loops, pins, /*deps=*/{},
                                 /*preventing=*/{{0, loops - 1}});
}

void BM_ExactEnumeration(benchmark::State& state) {
  const int loops = static_cast<int>(state.range(0));
  const auto g = make_graph(loops, loops, 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fusion::exact_enumeration(g, 16).cost);
  }
  state.SetLabel("Bell(" + std::to_string(loops) + ") partitions");
}
BENCHMARK(BM_ExactEnumeration)->DenseRange(4, 11)->Unit(benchmark::kMicrosecond);

void BM_TwoPartitionMinCut(benchmark::State& state) {
  const int loops = static_cast<int>(state.range(0));
  const auto g = make_graph(loops, loops, 42);
  for (auto _ : state) {
    auto plan = fusion::exact_two_partition(g);
    benchmark::DoNotOptimize(plan.has_value() ? plan->cost : -1);
  }
}
BENCHMARK(BM_TwoPartitionMinCut)
    ->RangeMultiplier(2)
    ->Range(4, 128)
    ->Unit(benchmark::kMicrosecond);

void BM_GreedyFusion(benchmark::State& state) {
  const int loops = static_cast<int>(state.range(0));
  const auto g = make_graph(loops, loops, 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fusion::greedy_fusion(g).cost);
  }
}
BENCHMARK(BM_GreedyFusion)
    ->RangeMultiplier(2)
    ->Range(4, 128)
    ->Unit(benchmark::kMicrosecond);

void BM_RecursiveBisection(benchmark::State& state) {
  const int loops = static_cast<int>(state.range(0));
  const auto g = make_graph(loops, loops, 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fusion::recursive_bisection(g).cost);
  }
}
BENCHMARK(BM_RecursiveBisection)
    ->RangeMultiplier(2)
    ->Range(4, 64)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
