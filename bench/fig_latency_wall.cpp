// Section 1's argument, quantified: latency tolerance converges to the
// bandwidth wall.
//
// "When CPU simultaneously fetches two data items from memory, the actual
// latency per access is halved, but the memory bandwidth consumption is
// doubled. Since actual latency is the inverse of the consumed bandwidth,
// memory latency cannot be fully tolerated without infinite bandwidth."
//
// Sweep the non-blocking/prefetch overlap depth k for a stride-1 kernel:
// predicted time falls as 1/k while latency dominates, then flatlines at
// the bandwidth bound -- the point past which only *bandwidth reduction*
// (the paper's compiler) helps.
#include "bench_common.h"

#include <iostream>

#include "bwc/machine/latency_model.h"
#include "bwc/support/table.h"
#include "bwc/workloads/stride_kernels.h"

int main() {
  using namespace bwc;
  bench::print_header(
      "Latency tolerance vs the bandwidth wall (1w2r kernel, Origin2000)");

  workloads::AddressSpace space;
  workloads::StrideKernel kernel({"1w2r", 1, 2}, 150000, space);
  const machine::MachineModel full = machine::origin2000_r10k();
  const auto profile = bench::steady_state_profile(
      bench::o2k(), [&](auto& rec) { kernel.run(rec); });

  const machine::LatencyModel lm = machine::default_latency(full);
  const std::vector<double> overlaps = {1, 2, 4, 8, 16, 32, 64};
  const auto sweep =
      machine::latency_tolerance_sweep(profile, full, lm, overlaps);

  TextTable t("Predicted time vs outstanding-miss depth k");
  t.set_header({"overlap k", "latency term (ms)", "bandwidth bound (ms)",
                "total (ms)", "limited by"});
  for (std::size_t i = 0; i < overlaps.size(); ++i) {
    const auto& p = sweep[i];
    t.add_row({fmt_fixed(overlaps[i], 0),
               fmt_fixed(p.latency_term_s * 1e3, 2),
               fmt_fixed(p.bandwidth_bound_s * 1e3, 2),
               fmt_fixed(p.total_s * 1e3, 2),
               p.bandwidth_limited ? "bandwidth" : "latency"});
  }
  std::cout << t.render();

  const double blocking = sweep.front().total_s;
  const double wall = sweep.back().total_s;
  std::cout << "\nblocking cache: " << fmt_fixed(blocking * 1e3, 2)
            << " ms; infinite-overlap floor: " << fmt_fixed(wall * 1e3, 2)
            << " ms (" << fmt_fixed(blocking / wall, 1)
            << "x is all latency tolerance can ever buy here).\n"
            << "Past the crossover, every further gain must come from "
               "consuming less bandwidth -- the paper's compiler.\n";
  return 0;
}
