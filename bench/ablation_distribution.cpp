// Ablation: loop distribution as the inverse of fusion.
//
// Distribution (fission) is the bandwidth *pessimization* the paper's
// fusion undoes: each split loop re-streams its arrays. This bench walks a
// blur/sharpen image chain through distribute -> fuse -> full pipeline and
// shows the traffic moving both directions, plus the normalization
// property: maximal distribution followed by bandwidth-minimal fusion is
// never worse than fusing the original loop structure directly.
#include "bench_common.h"

#include <iostream>

#include "bwc/core/optimizer.h"
#include "bwc/fusion/solvers.h"
#include "bwc/model/measure.h"
#include "bwc/support/table.h"
#include "bwc/transform/distribute.h"
#include "bwc/workloads/extra_programs.h"

int main() {
  using namespace bwc;
  bench::print_header(
      "Ablation: distribution vs fusion on the blur/sharpen chain "
      "(n = 400000)");

  const ir::Program original = workloads::blur_sharpen(400000);
  const machine::MachineModel machine = bench::o2k();

  core::OptimizerOptions fusion_only;
  fusion_only.reduce_storage = false;
  fusion_only.eliminate_stores = false;
  const ir::Program fused = core::optimize(original, fusion_only).program;
  const ir::Program full = core::optimize(original).program;
  const ir::Program refissioned =
      transform::distribute_loops(fused).program;

  TextTable t("Simulated Origin2000");
  t.set_header({"version", "loops", "mem traffic", "predicted ms"});
  struct Row {
    const char* name;
    const ir::Program* p;
  };
  for (const Row& row : {Row{"original (4 loops)", &original},
                         Row{"fused", &fused},
                         Row{"fused, then re-distributed", &refissioned},
                         Row{"full pipeline (fuse+contract)", &full}}) {
    const auto m = model::measure(*row.p, machine);
    t.add_row({row.name,
               std::to_string(row.p->top_loop_indices().size()),
               fmt_bytes(static_cast<double>(m.profile.memory_bytes())),
               fmt_fixed(m.time.total_s * 1e3, 2)});
  }
  std::cout << t.render();

  // Normalization: distribute first, then fuse.
  const auto direct =
      fusion::best_fusion(fusion::build_fusion_graph(original));
  const auto d = transform::distribute_loops(original);
  const auto renorm =
      fusion::best_fusion(fusion::build_fusion_graph(d.program));
  std::cout << "\nnormalization: direct fusion cost " << direct.cost
            << ", distribute-then-fuse cost " << renorm.cost
            << " (never worse; distribution gives the solver a clean "
               "slate).\n";
  return 0;
}
