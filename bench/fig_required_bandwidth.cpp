// Section 2.3's machine-design claim: "To fully utilize a processor of
// comparable speed as MIPS R10K on Origin2000, a machine would need 3.4 to
// 10.5 times of the 300 MB/s memory bandwidth of Origin2000. Therefore, a
// machine must have 1.02 GB/s to 3.15 GB/s of memory bandwidth, far
// exceeding the capacity of current machines."
//
// This binary computes, for each measured application, the memory
// bandwidth required for full CPU utilization, and the speedup a given
// bandwidth upgrade would deliver.
#include "bench_common.h"

#include <algorithm>
#include <iostream>

#include "bwc/model/prediction.h"
#include "bwc/support/table.h"
#include "bwc/workloads/kernels.h"
#include "bwc/workloads/sweep3d_proxy.h"

int main() {
  using namespace bwc;
  bench::print_header(
      "Required memory bandwidth for full CPU utilization (Origin2000)");

  const machine::MachineModel full = machine::origin2000_r10k();
  const machine::MachineModel scaled = bench::o2k();

  struct App {
    std::string name;
    machine::ExecutionProfile profile;
  };
  std::vector<App> apps;
  {
    workloads::AddressSpace space;
    workloads::Convolution conv(200000, 3, space);
    apps.push_back({"convolution", bench::steady_state_profile(
                                       scaled, [&](auto& rec) {
                                         conv.run(rec);
                                       })});
  }
  {
    workloads::AddressSpace space;
    workloads::Dmxpy dmxpy(120000, 16, space);
    apps.push_back({"dmxpy", bench::steady_state_profile(
                                 scaled, [&](auto& rec) { dmxpy.run(rec); })});
  }
  {
    workloads::AddressSpace space;
    workloads::Sweep3dProxy sweep(28, 6, space);
    apps.push_back({"Sweep3D (proxy)",
                    bench::steady_state_profile(
                        scaled, [&](auto& rec) { sweep.sweep(rec); })});
  }

  TextTable t("Bandwidth requirements and upgrade payoff");
  t.set_header({"application", "needed (MB/s)", "vs machine",
                "speedup @2x bw", "speedup @10x bw"});
  double lo = 1e18, hi = 0;
  for (const auto& app : apps) {
    const auto balance =
        model::ProgramBalance::from_profile(app.name, app.profile);
    const double need = model::required_memory_bandwidth_mbps(balance, full);
    lo = std::min(lo, need);
    hi = std::max(hi, need);
    t.add_row({app.name, fmt_fixed(need, 0),
               fmt_fixed(need / full.memory_bandwidth_mbps(), 1) + "x",
               fmt_fixed(model::speedup_from_memory_bandwidth(
                             app.profile, full,
                             2 * full.memory_bandwidth_mbps()),
                         2) +
                   "x",
               fmt_fixed(model::speedup_from_memory_bandwidth(
                             app.profile, full,
                             10 * full.memory_bandwidth_mbps()),
                         2) +
                   "x"});
  }
  std::cout << t.render();
  std::cout << "\nrequired range: " << fmt_fixed(lo / 1000.0, 2) << " - "
            << fmt_fixed(hi / 1000.0, 2)
            << " GB/s (paper: 1.02 - 3.15 GB/s for its application set)\n";

  // And the tuning report for the worst offender.
  std::cout << "\n"
            << model::render_tuning_report(
                   model::tuning_report(apps[1].profile, full));
  return 0;
}
