// Section 2.1 on the host machine: real wall-clock confirmation that a
// read+write traversal costs roughly the read traversal plus the writeback
// stream, on modern silicon just as on the Origin2000.
//
// Run with --benchmark_filter/--benchmark_format like any google-benchmark
// binary; bytes_per_second reports the *useful* STREAM-style traffic.
#include <benchmark/benchmark.h>

#include <vector>

namespace {

// Large enough to exceed even a server-class L3 so the traversals are
// genuinely memory-bound, as the paper's 16 MB arrays were against a 4 MB
// cache.
constexpr std::int64_t kN = 1 << 24;  // 16.7M doubles = 128 MB

std::vector<double>& shared_array() {
  static std::vector<double> a(kN, 1.0);
  return a;
}

void BM_Sec21_WriteLoop(benchmark::State& state) {
  auto& a = shared_array();
  for (auto _ : state) {
    for (std::int64_t i = 0; i < kN; ++i) a[static_cast<std::size_t>(i)] += 0.4;
    benchmark::DoNotOptimize(a.data());
    benchmark::ClobberMemory();
  }
  state.SetBytesProcessed(state.iterations() * kN * 16);  // read + write
}
BENCHMARK(BM_Sec21_WriteLoop);

void BM_Sec21_ReadLoop(benchmark::State& state) {
  auto& a = shared_array();
  for (auto _ : state) {
    // Four accumulators: keep the reduction bandwidth-bound rather than
    // serialized on the FP add latency chain.
    double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
    for (std::int64_t i = 0; i + 3 < kN; i += 4) {
      s0 += a[static_cast<std::size_t>(i)];
      s1 += a[static_cast<std::size_t>(i + 1)];
      s2 += a[static_cast<std::size_t>(i + 2)];
      s3 += a[static_cast<std::size_t>(i + 3)];
    }
    double sum = s0 + s1 + s2 + s3;
    benchmark::DoNotOptimize(sum);
  }
  state.SetBytesProcessed(state.iterations() * kN * 8);  // read only
}
BENCHMARK(BM_Sec21_ReadLoop);

// The fused + store-eliminated version of Figure 7, natively: one pass,
// no writeback of res.
void BM_Fig7_Original(benchmark::State& state) {
  std::vector<double> res(kN, 1.0), data(kN, 0.5);
  for (auto _ : state) {
    for (std::int64_t i = 0; i < kN; ++i)
      res[static_cast<std::size_t>(i)] += data[static_cast<std::size_t>(i)];
    double sum = 0.0;
    for (std::int64_t i = 0; i < kN; ++i)
      sum += res[static_cast<std::size_t>(i)];
    benchmark::DoNotOptimize(sum);
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_Fig7_Original);

void BM_Fig7_StoreEliminated(benchmark::State& state) {
  std::vector<double> res(kN, 1.0), data(kN, 0.5);
  for (auto _ : state) {
    double sum = 0.0;
    for (std::int64_t i = 0; i < kN; ++i) {
      const double t = res[static_cast<std::size_t>(i)] +
                       data[static_cast<std::size_t>(i)];
      sum += t;
    }
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_Fig7_StoreEliminated);

}  // namespace

BENCHMARK_MAIN();
