// Footnote 2: measuring machine balance.
//
// "The machine balance is calculated by taking the flop rate and register
// throughput from hardware specification and measuring memory bandwidth
// through STREAM and cache bandwidth through CacheBench." This binary runs
// that measurement protocol against the simulated machines: the STREAM
// kernels recover the memory bandwidth, and a CacheBench-style working-set
// sweep exposes the bandwidth plateau of each hierarchy level.
#include "bench_common.h"

#include <iostream>

#include "bwc/support/table.h"
#include "bwc/workloads/stream.h"

int main() {
  using namespace bwc;
  bench::print_header("Footnote 2: STREAM + CacheBench machine measurement");

  const machine::MachineModel scaled = bench::o2k();
  const machine::MachineModel full = machine::origin2000_r10k();

  // STREAM on the simulated Origin2000.
  {
    TextTable t("STREAM (simulated Origin2000, MB/s; spec memory bw 320)");
    t.set_header({"kernel", "STREAM MB/s", "raw traffic MB/s"});
    workloads::AddressSpace space;
    workloads::Stream stream(200000, space);
    for (auto op : {workloads::StreamOp::kCopy, workloads::StreamOp::kScale,
                    workloads::StreamOp::kAdd, workloads::StreamOp::kTriad}) {
      const auto profile = bench::steady_state_profile(
          scaled, [&](auto& rec) { stream.run(op, rec); });
      const auto t_pred = machine::predict_time(profile, full);
      const double reported = machine::effective_bandwidth_mbps(
          stream.useful_bytes(op), t_pred.total_s);
      const double raw = machine::effective_bandwidth_mbps(
          profile.memory_bytes(), t_pred.total_s);
      t.add_row({workloads::stream_op_name(op), fmt_fixed(reported, 1),
                 fmt_fixed(raw, 1)});
    }
    std::cout << t.render();
    std::cout << "(STREAM under-reports on write-allocate caches: the "
                 "target line is fetched before being overwritten)\n";
  }

  // CacheBench-style read sweep: bandwidth plateaus per level.
  {
    TextTable t("\nCacheBench-style read sweep (simulated Origin2000)");
    t.set_header({"working set", "read bandwidth MB/s", "level"});
    for (std::uint64_t kb : {1, 2, 8, 64, 512, 4096}) {
      workloads::AddressSpace space;
      workloads::WorkingSetSweep sweep(kb * 1024, space);
      const auto profile = bench::steady_state_profile(
          scaled, [&](auto& rec) { sweep.read_passes(4, rec); });
      const auto t_pred = machine::predict_time(profile, full);
      const double bw = machine::effective_bandwidth_mbps(
          4ull * sweep.bytes(), t_pred.total_s);
      const char* level = kb * 1024 <= scaled.caches[0].size_bytes ? "L1"
                          : kb * 1024 <= scaled.caches[1].size_bytes
                              ? "L2"
                              : "memory";
      t.add_row({fmt_bytes(static_cast<double>(kb * 1024)),
                 fmt_fixed(bw, 1), level});
    }
    std::cout << t.render();
  }

  // Machine balance rows derived from spec (what Figures 1/2 consume).
  std::cout << "\nspec machine balance (bytes/flop):";
  for (double b : full.machine_balance()) std::cout << " " << fmt_fixed(b, 2);
  std::cout << "  (paper: 4 / 4 / 0.8)\n";
  return 0;
}
