// Section 2.3: bandwidth utilization of NAS/SP's major subroutines.
//
// Paper: "5 out of its 7 major computation subroutines utilized 84% or
// higher of the memory bandwidth of Origin2000" -- i.e. the full
// application, not just kernels, runs pinned at the memory-bandwidth
// limit; only the flop-heavy line solves sit below it.
#include "bench_common.h"

#include <iostream>

#include "bwc/support/table.h"
#include "bwc/workloads/sp_proxy.h"

int main() {
  using namespace bwc;
  bench::print_header(
      "Section 2.3: SP subroutine memory-bandwidth utilization "
      "(simulated Origin2000)");

  workloads::AddressSpace space;
  workloads::SpProxy sp(24, space);
  const machine::MachineModel scaled = bench::o2k();
  const machine::MachineModel full = machine::origin2000_r10k();

  TextTable t("Per-subroutine bandwidth utilization");
  t.set_header({"subroutine", "bytes/flop (mem)", "utilization", ">= 84%?"});
  int saturated = 0;
  for (int s = 0; s < workloads::SpProxy::kSubroutines; ++s) {
    const auto profile = bench::steady_state_profile(
        scaled, [&](auto& rec) { sp.run_subroutine(s, rec); });
    const double util =
        machine::memory_bandwidth_utilization(profile, full);
    const double balance = static_cast<double>(profile.memory_bytes()) /
                           static_cast<double>(profile.flops);
    if (util >= 0.84) ++saturated;
    t.add_row({workloads::SpProxy::subroutine_names()[
                   static_cast<std::size_t>(s)],
               fmt_fixed(balance, 2), fmt_fixed(util * 100.0, 1) + "%",
               util >= 0.84 ? "yes" : "no"});
  }
  std::cout << t.render();
  std::cout << "\n" << saturated << "/7 subroutines at >= 84% utilization "
            << "(paper: 5/7)\n";
  return 0;
}
