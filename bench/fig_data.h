// Row computation shared between the figure binaries and the golden-file
// regression tests (tests/bench_golden_test.cpp).
//
// Everything here is deterministic simulation: traffic comes from the
// memory-hierarchy simulator (bit-stable by construction) and times from
// the analytic bandwidth-bound model, so the same rows can be checked
// into tests/golden/ and diffed on every CI run. The binaries own the
// presentation (tables, commentary, CSV files); this header owns the
// numbers.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "bench_common.h"
#include "bwc/core/optimizer.h"
#include "bwc/support/csv.h"
#include "bwc/support/table.h"
#include "bwc/machine/timing.h"
#include "bwc/model/measure.h"
#include "bwc/model/prediction.h"
#include "bwc/workloads/paper_programs.h"
#include "bwc/workloads/stride_kernels.h"

namespace bwc::bench {

// ---- Figure 3: stride-1 kernel effective bandwidth ----------------------

struct Fig3Row {
  std::string kernel;
  double o2k_mbps = 0.0;
  double exemplar_mbps = 0.0;
};

/// Steady-state effective bandwidth of one kernel: traffic measured on the
/// scaled-cache machine (paper-scale working-set/cache ratio), time
/// evaluated on the full machine's bandwidths.
inline double fig3_effective_mbps(const machine::MachineModel& scaled_machine,
                                  const machine::MachineModel& full_machine,
                                  const workloads::StrideKernelSpec& spec,
                                  std::int64_t n) {
  workloads::AddressSpace space;
  workloads::StrideKernel kernel(spec, n, space);
  const auto profile = steady_state_profile(
      scaled_machine, [&](auto& rec) { kernel.run(rec); });
  const auto t = machine::predict_time(profile, full_machine);
  return machine::effective_bandwidth_mbps(kernel.useful_bytes(), t.total_s);
}

inline constexpr std::int64_t kFig3N = 150000;  // ~1.2 MB arrays vs 256 KB

inline std::vector<Fig3Row> fig3_rows(std::int64_t n = kFig3N) {
  std::vector<Fig3Row> rows;
  for (const auto& spec : workloads::figure3_kernels()) {
    Fig3Row r;
    r.kernel = spec.name;
    r.o2k_mbps =
        fig3_effective_mbps(o2k(), machine::origin2000_r10k(), spec, n);
    r.exemplar_mbps =
        fig3_effective_mbps(exemplar(), machine::exemplar_pa8000(), spec, n);
    rows.push_back(r);
  }
  return rows;
}

/// The exact CSV the fig3 binary writes; the golden test compares this
/// (cell for cell, numeric cells under tolerance) against
/// tests/golden/fig3_kernel_bandwidth.csv.
inline CsvWriter fig3_csv(const std::vector<Fig3Row>& rows) {
  CsvWriter csv({"kernel", "o2k_mbps", "exemplar_mbps"});
  for (const auto& r : rows)
    csv.add_row({r.kernel, fmt_fixed(r.o2k_mbps, 2),
                 fmt_fixed(r.exemplar_mbps, 2)});
  return csv;
}

// ---- Multicore scaling: speedup vs cores, original vs optimized ---------

struct ScalingRow {
  std::string workload;  // fig7 | sec21
  std::string variant;   // original | optimized
  int cores = 1;
  double predicted_ms = 0.0;
  double speedup = 1.0;  // T(1) / T(cores), same variant
  std::string binding;
  /// Bus-saturation prediction for this (workload, variant); repeated on
  /// every row of the group so the CSV is self-contained.
  int saturation_cores = 0;
};

inline constexpr int kScalingMaxCores = 8;
inline constexpr std::int64_t kScalingN = 100000;

/// Machine for the scaling figure: the Origin2000 with the memory bus
/// upgraded 8x -- inside the 3.4-10.5x range Section 2.3 of the paper
/// says these codes need to reach full single-core utilization. On the
/// stock O2K every workload is bus-bound already at one core (the
/// paper's point; the curve is flat at speedup 1), so the multicore knee
/// only becomes visible once the single-core bottleneck is relieved:
/// cores then re-saturate the shared bus, and the compiler's traffic
/// reduction is what pushes the knee out.
inline machine::MachineModel scaling_machine() {
  machine::MachineModel m = o2k();
  m.name += " (8x bus)";
  m.boundary_bandwidth_mbps.back() *= 8.0;
  return m;
}

/// Speedup-vs-cores rows for the paper workloads on the Origin2000 model,
/// before and after the bandwidth optimizer. The profile is measured once
/// per variant with the parallel compiled engine (traffic is core-count
/// invariant -- held bit-identical by tests/parallel_runtime_test.cpp) and
/// the multicore shared-bandwidth timing model is evaluated at each core
/// count. Optimization lowers shared-bus traffic, so the optimized curves
/// saturate later and plateau higher (gated in fig_multicore_scaling and
/// in the golden test).
inline std::vector<ScalingRow> multicore_scaling_rows(
    int max_cores = kScalingMaxCores) {
  const machine::MachineModel machine = scaling_machine();
  struct Workload {
    std::string name;
    ir::Program program;
  };
  std::vector<Workload> workloads;
  workloads.push_back({"fig7", bwc::workloads::fig7_original(kScalingN)});
  workloads.push_back({"sec21", bwc::workloads::sec21_both_loops(kScalingN)});

  std::vector<ScalingRow> rows;
  for (const Workload& w : workloads) {
    const core::OptimizeResult opt = core::optimize(w.program);
    const struct {
      const char* variant;
      const ir::Program& program;
    } variants[] = {{"original", w.program}, {"optimized", opt.program}};
    for (const auto& v : variants) {
      const model::Measurement m = model::measure(v.program, machine);
      const model::ScalingCurve curve =
          model::scaling_curve(w.name + "/" + v.variant, m.profile, machine,
                               max_cores);
      for (const model::ScalingPoint& p : curve.points) {
        ScalingRow r;
        r.workload = w.name;
        r.variant = v.variant;
        r.cores = p.cores;
        r.predicted_ms = p.seconds * 1e3;
        r.speedup = p.speedup;
        r.binding = p.binding_resource;
        r.saturation_cores = curve.saturation_cores;
        rows.push_back(r);
      }
    }
  }
  return rows;
}

/// The exact CSV the fig_multicore_scaling binary writes; golden-locked
/// against tests/golden/fig_multicore_scaling.csv.
inline CsvWriter multicore_scaling_csv(const std::vector<ScalingRow>& rows) {
  CsvWriter csv({"workload", "variant", "cores", "predicted_ms", "speedup",
                 "binding", "saturation_cores"});
  for (const auto& r : rows)
    csv.add_row({r.workload, r.variant, std::to_string(r.cores),
                 fmt_fixed(r.predicted_ms, 4), fmt_fixed(r.speedup, 3),
                 r.binding, std::to_string(r.saturation_cores)});
  return csv;
}

}  // namespace bwc::bench
