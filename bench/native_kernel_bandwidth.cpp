// Figure 3 on the host machine: wall-clock effective bandwidth of the 13
// stride-1 kernels (NullRecorder instantiation = plain computation).
// bytes_per_second is the paper's useful-traffic metric.
#include <benchmark/benchmark.h>

#include "bwc/workloads/stride_kernels.h"

namespace {

using bwc::workloads::AddressSpace;
using bwc::workloads::figure3_kernels;
using bwc::workloads::NullRecorder;
using bwc::workloads::StrideKernel;

constexpr std::int64_t kN = 2000000;

void BM_StrideKernel(benchmark::State& state) {
  const auto& spec = figure3_kernels()[static_cast<std::size_t>(state.range(0))];
  AddressSpace space;
  StrideKernel kernel(spec, kN, space);
  NullRecorder rec;
  for (auto _ : state) {
    benchmark::DoNotOptimize(kernel.run(rec));
    benchmark::ClobberMemory();
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(kernel.useful_bytes()));
  state.SetLabel(spec.name);
}
BENCHMARK(BM_StrideKernel)->DenseRange(0, 12)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
