// Figure 3: Effective memory bandwidth of the 13 stride-1 read/write
// kernels on both machines.
//
// Paper: on the Origin2000 (R10K) all kernels land within 20% of each
// other near the ~300 MB/s machine limit; on the Exemplar (PA-8000) they
// range 417-551 MB/s with 3w6r as a conflict-driven outlier on the
// direct-mapped cache.
//
// Row values come from bench/fig_data.h and are regression-locked by
// tests/bench_golden_test.cpp against tests/golden/fig3_kernel_bandwidth.csv.
// --json emits per-machine median bandwidths for
// tools/check_bench_regression.py.
#include "fig_data.h"

#include <cstdio>
#include <cstring>
#include <iostream>

#include "bwc/support/csv.h"
#include "bwc/support/stats.h"
#include "bwc/support/table.h"

int main(int argc, char** argv) {
  using namespace bwc;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      std::vector<double> o2k_series, ex_series;
      for (const auto& r : bench::fig3_rows()) {
        o2k_series.push_back(r.o2k_mbps);
        ex_series.push_back(r.exemplar_mbps);
      }
      std::printf(
          "{\"bench\": \"fig3_kernel_bandwidth\", "
          "\"o2k_median_mbps\": %.3f, \"exemplar_median_mbps\": %.3f}\n",
          median(o2k_series), median(ex_series));
      return 0;
    }
  }
  bench::print_header(
      "Figure 3: effective memory bandwidth of stride-1 kernels");

  const std::vector<bench::Fig3Row> rows = bench::fig3_rows();

  TextTable t("Effective bandwidth (MB/s), steady state");
  t.set_header({"kernel", "Origin2000 (R10K)", "Exemplar (PA-8000)"});
  std::vector<double> o2k_series, ex_series;
  for (const auto& r : rows) {
    t.add_row({r.kernel, fmt_fixed(r.o2k_mbps, 1),
               fmt_fixed(r.exemplar_mbps, 1)});
    o2k_series.push_back(r.o2k_mbps);
    ex_series.push_back(r.exemplar_mbps);
  }
  std::cout << t.render();

  std::cout << "\nOrigin2000 spread (max-min)/min: "
            << fmt_fixed(relative_spread(o2k_series) * 100, 1)
            << "% (paper: within 20%)\n";
  std::cout << "Exemplar range: " << fmt_fixed(summarize(ex_series).min, 1)
            << " - " << fmt_fixed(summarize(ex_series).max, 1)
            << " MB/s (paper: 417-551 MB/s, 3w6r low outlier)\n";

  bench::fig3_csv(rows).write_file("fig3_kernel_bandwidth.csv");
  std::cout << "series written to fig3_kernel_bandwidth.csv\n";
  return 0;
}
