// Figure 3: Effective memory bandwidth of the 13 stride-1 read/write
// kernels on both machines.
//
// Paper: on the Origin2000 (R10K) all kernels land within 20% of each
// other near the ~300 MB/s machine limit; on the Exemplar (PA-8000) they
// range 417-551 MB/s with 3w6r as a conflict-driven outlier on the
// direct-mapped cache.
#include "bench_common.h"

#include <iostream>

#include "bwc/support/csv.h"
#include "bwc/support/stats.h"
#include "bwc/support/table.h"
#include "bwc/workloads/stride_kernels.h"

namespace {

struct Row {
  std::string name;
  double o2k_mbps = 0;
  double exemplar_mbps = 0;
};

double effective_on(const bwc::machine::MachineModel& scaled_machine,
                    const bwc::machine::MachineModel& full_machine,
                    const bwc::workloads::StrideKernelSpec& spec,
                    std::int64_t n) {
  using namespace bwc;
  workloads::AddressSpace space;
  workloads::StrideKernel kernel(spec, n, space);
  const auto profile = bench::steady_state_profile(
      scaled_machine, [&](auto& rec) { kernel.run(rec); });
  const auto t = machine::predict_time(profile, full_machine);
  return machine::effective_bandwidth_mbps(kernel.useful_bytes(), t.total_s);
}

}  // namespace

int main() {
  using namespace bwc;
  bench::print_header(
      "Figure 3: effective memory bandwidth of stride-1 kernels");

  const std::int64_t n = 150000;  // arrays ~1.2 MB vs 256 KB scaled caches
  std::vector<Row> rows;
  for (const auto& spec : workloads::figure3_kernels()) {
    Row r;
    r.name = spec.name;
    r.o2k_mbps = effective_on(bench::o2k(), machine::origin2000_r10k(),
                              spec, n);
    r.exemplar_mbps = effective_on(bench::exemplar(),
                                   machine::exemplar_pa8000(), spec, n);
    rows.push_back(r);
  }

  TextTable t("Effective bandwidth (MB/s), steady state");
  t.set_header({"kernel", "Origin2000 (R10K)", "Exemplar (PA-8000)"});
  std::vector<double> o2k_series, ex_series;
  for (const auto& r : rows) {
    t.add_row({r.name, fmt_fixed(r.o2k_mbps, 1), fmt_fixed(r.exemplar_mbps, 1)});
    o2k_series.push_back(r.o2k_mbps);
    ex_series.push_back(r.exemplar_mbps);
  }
  std::cout << t.render();

  std::cout << "\nOrigin2000 spread (max-min)/min: "
            << fmt_fixed(relative_spread(o2k_series) * 100, 1)
            << "% (paper: within 20%)\n";
  std::cout << "Exemplar range: " << fmt_fixed(summarize(ex_series).min, 1)
            << " - " << fmt_fixed(summarize(ex_series).max, 1)
            << " MB/s (paper: 417-551 MB/s, 3w6r low outlier)\n";

  CsvWriter csv({"kernel", "o2k_mbps", "exemplar_mbps"});
  for (const auto& r : rows)
    csv.add_row({r.name, fmt_fixed(r.o2k_mbps, 2),
                 fmt_fixed(r.exemplar_mbps, 2)});
  csv.write_file("fig3_kernel_bandwidth.csv");
  std::cout << "series written to fig3_kernel_bandwidth.csv\n";
  return 0;
}
