// Native codegen throughput: wall-clock of the dlopen'ed specialized-C
// engine (runtime/codegen.h) against the bytecode VM it replaces, on
// stride-1 stream kernels at fig3 scale.
//
// Two legs per kernel. The `values` leg replays without a memory
// hierarchy: both engines compute the same values and bulk counters, so
// the ratio isolates loop-kernel quality -- the VM's templated cursor
// walk vs a host-compiled plain `for` loop -- and carries the hard >= 2x
// regression floor in --smoke. The `sim` leg replays against the O2K
// hierarchy with coalescing and fast-forward in the measurement
// configuration; per-access simulation dominates there, so its speedup
// is modest and is guarded by the 20% regression check against
// BENCH_baseline.json rather than an absolute floor. The reduce kernel
// is the non-periodic representative: register-accumulator loops are
// never fast-forwarded, so its sim leg is honest end-to-end replay.
//
//   native_codegen_throughput [--smoke] [--json]
//
// --smoke shrinks sizes and exits non-zero if any engine pair disagrees
// on any observable or the median values-leg speedup falls below the
// floor -- CI runs this mode. --json emits one JSON object of metrics
// for tools/check_bench_regression.py. Numbers are in EXPERIMENTS.md.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "bench_common.h"
#include "bwc/ir/dsl.h"
#include "bwc/runtime/codegen.h"
#include "bwc/runtime/compiled.h"

namespace {

using namespace bwc;

// Median of the values-leg speedups must clear this in --smoke. Measured
// ratios are well above (see EXPERIMENTS.md); a broken emitter or a
// silently engaged fallback collapses the ratio to ~1x and trips it.
constexpr double kValuesSpeedupFloor = 2.0;

ir::Program stride1_update(std::int64_t n, std::int64_t reps) {
  using namespace ir::dsl;  // NOLINT
  ir::Program p("stride1 update x" + std::to_string(reps));
  const ir::ArrayId a = p.add_array("A", {n});
  p.mark_output_array(a);
  p.append(loop("r", 1, reps,
                loop("i", 1, n,
                     assign(a, {v("i")}, at(a, v("i")) + lit(0.4)))));
  return p;
}

ir::Program stride1_1w2r(std::int64_t n, std::int64_t reps) {
  using namespace ir::dsl;  // NOLINT
  ir::Program p("stride1 1w2r x" + std::to_string(reps));
  const ir::ArrayId a = p.add_array("A", {n});
  const ir::ArrayId b = p.add_array("B", {n});
  p.mark_output_array(a);
  p.append(loop("r", 1, reps,
                loop("i", 1, n,
                     assign(a, {v("i")},
                            at(a, v("i")) + at(b, v("i"))))));
  return p;
}

/// Repeated full-array sum into a register accumulator: lowers to the
/// kReduce stream shape, which neither parallelizes nor fast-forwards.
ir::Program stride1_reduce(std::int64_t n, std::int64_t reps) {
  using namespace ir::dsl;  // NOLINT
  ir::Program p("stride1 reduce x" + std::to_string(reps));
  const ir::ArrayId a = p.add_array("A", {n});
  p.add_scalar("s");
  p.mark_output_scalar("s");
  p.append(loop("r", 1, reps,
                loop("i", 1, n, assign("s", sref("s") + at(a, v("i"))))));
  return p;
}

double seconds_of(const std::function<void()>& fn, int reps) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return best;
}

bool results_match(const runtime::ExecResult& a, const runtime::ExecResult& b,
                   const char* label) {
  bool ok = a.checksum == b.checksum && a.flops == b.flops &&
            a.loads == b.loads && a.stores == b.stores &&
            a.scalars == b.scalars &&
            a.profile.boundaries.size() == b.profile.boundaries.size();
  if (ok) {
    for (std::size_t i = 0; i < a.profile.boundaries.size(); ++i) {
      ok = ok &&
           a.profile.boundaries[i].bytes_toward_cpu ==
               b.profile.boundaries[i].bytes_toward_cpu &&
           a.profile.boundaries[i].bytes_from_cpu ==
               b.profile.boundaries[i].bytes_from_cpu;
    }
  }
  if (!ok) std::printf("!! native/VM mismatch on %s\n", label);
  return ok;
}

struct Row {
  double vm_s = 0.0;
  double native_s = 0.0;
  double speedup() const { return vm_s / native_s; }
};

/// Time the VM and the precompiled native workload on identical options
/// (compile/dlopen cost stays outside the timed region; the cache makes
/// it a one-time cost in real use too). `run(use_native)` owns the
/// per-run hierarchy so every replay starts cold.
Row time_pair(const std::function<runtime::ExecResult(bool)>& run, int reps,
              const char* label, bool* exact) {
  *exact = results_match(run(false), run(true), label) && *exact;
  Row row;
  row.vm_s = seconds_of([&] { run(false); }, reps);
  row.native_s = seconds_of([&] { run(true); }, reps);
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false, json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--json") == 0) json = true;
  }

  if (!runtime::host_compiler_available({})) {
    std::printf("SKIP: no host C compiler for --engine native\n");
    // Nothing to gate without a toolchain; the codegen CI job installs
    // one, so a silent skip there would fail the differential tests
    // first.
    return 0;
  }

  const std::int64_t n = smoke ? 2000000 : 6000000;
  const std::int64_t sweeps = smoke ? 4 : 8;
  const int reps = smoke ? 3 : 5;
  const machine::MachineModel o2k = bench::o2k();

  if (!json) {
    bench::print_header(
        "Native codegen: dlopen'ed kernels vs bytecode VM" +
        std::string(smoke ? " (smoke)" : ""));
    std::printf("%-24s %6s %10s %10s %9s\n", "program", "leg", "vm s",
                "native s", "speedup");
  }

  bool exact = true;
  std::vector<double> values_speedups;
  std::vector<std::pair<std::string, double>> metrics;
  // `emit_sim` only for the reduce kernel: the update/1w2r sim legs are
  // fast-forwarded down to milliseconds, so their ratios hover near 1x
  // with scheduler-level noise -- printed for humans, not baselined.
  const auto bench_one = [&](const ir::Program& p, const char* key,
                             bool emit_sim) {
    const runtime::LoweredProgram lowered = runtime::lower(p);
    const runtime::CompiledWorkload native = runtime::compile_workload(lowered);

    // Values leg: no hierarchy, bulk counters only. This is the gated
    // ratio -- pure kernel throughput.
    const Row values = time_pair(
        [&](bool use_native) {
          runtime::ExecOptions opts;
          return use_native
                     ? runtime::execute_lowered_native(lowered, opts, native)
                     : runtime::execute_lowered(lowered, opts);
        },
        reps, p.name().c_str(), &exact);
    values_speedups.push_back(values.speedup());
    metrics.emplace_back(std::string("speedup_values_") + key,
                         values.speedup());
    if (!json)
      std::printf("%-24s %6s %10.4f %10.4f %8.2fx\n", p.name().c_str(),
                  "values", values.vm_s, values.native_s, values.speedup());

    // Sim leg: full measurement configuration (hierarchy, coalescing,
    // fast-forward). Baseline-tracked, no absolute floor.
    const Row sim = time_pair(
        [&](bool use_native) {
          memsim::MemoryHierarchy h = o2k.make_hierarchy();
          runtime::ExecOptions opts;
          opts.hierarchy = &h;
          return use_native
                     ? runtime::execute_lowered_native(lowered, opts, native)
                     : runtime::execute_lowered(lowered, opts);
        },
        reps, p.name().c_str(), &exact);
    if (emit_sim)
      metrics.emplace_back(std::string("speedup_sim_") + key, sim.speedup());
    if (!json)
      std::printf("%-24s %6s %10.4f %10.4f %8.2fx\n", p.name().c_str(), "sim",
                  sim.vm_s, sim.native_s, sim.speedup());
  };

  bench_one(stride1_reduce(n, sweeps), "reduce", /*emit_sim=*/true);
  bench_one(stride1_update(n, sweeps), "update", /*emit_sim=*/false);
  bench_one(stride1_1w2r(n, sweeps), "1w2r", /*emit_sim=*/false);

  std::sort(values_speedups.begin(), values_speedups.end());
  const double median = values_speedups[values_speedups.size() / 2];
  metrics.emplace_back("speedup_values_median", median);

  if (json) {
    std::printf("{\"bench\": \"native_codegen_throughput\"");
    for (const auto& [key, value] : metrics)
      std::printf(", \"%s\": %.3f", key.c_str(), value);
    std::printf("}\n");
  } else {
    std::printf("\nexactness: %s, median values speedup: %.2fx\n",
                exact ? "byte-identical" : "MISMATCH", median);
  }
  if (!exact) return 1;
  if (smoke && median < kValuesSpeedupFloor) {
    std::printf("FAIL: median values speedup below floor %.1fx\n",
                kValuesSpeedupFloor);
    return 1;
  }
  return 0;
}
