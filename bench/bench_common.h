// Shared helpers for the paper-reproduction benchmark binaries.
//
// Each binary regenerates one table or figure of the paper's evaluation.
// The substrate is the simulated memory hierarchy plus the bandwidth-bound
// timing model; absolute numbers differ from the 1999 hardware, but the
// shapes (who wins, by what factor, where crossovers fall) are the claims
// under reproduction. See EXPERIMENTS.md for paper-vs-measured records.
#pragma once

#include <cstdio>
#include <string>

#include "bwc/ir/program.h"
#include "bwc/machine/machine_model.h"
#include "bwc/machine/timing.h"
#include "bwc/memsim/hierarchy.h"
#include "bwc/runtime/compiled.h"
#include "bwc/runtime/recorder.h"

namespace bwc::bench {

/// Cache scale divisor used throughout: paper-scale working-set/cache
/// ratios at tractable simulation sizes (balance is scale-invariant).
inline constexpr std::uint64_t kCacheScale = 16;

inline machine::MachineModel o2k() {
  return machine::origin2000_r10k().scaled(kCacheScale);
}
inline machine::MachineModel exemplar() {
  return machine::exemplar_pa8000().scaled(kCacheScale);
}

/// Run `workload(rec)` to steady state on the machine's hierarchy: one
/// warm-up pass, then one measured pass. Returns the measured profile.
///
/// The warm-up pass only has to leave the hierarchy in the exact state a
/// full pass would, so it runs with the online steady-state fast-forward
/// detector attached (memsim/fastforward.h): periodic spans of the access
/// stream are absorbed and folded in analytically, which cuts warm-up
/// simulation cost without changing the warmed state or the measured pass
/// by a byte. Machines whose hierarchies are not translation-invariant
/// (page randomization) warm up by full simulation automatically.
///
/// Counter hygiene (regression-tested in tests/runtime_test.cpp): the
/// warm-up pass uses its own Recorder whose scope ends -- settling the
/// detector and flushing any coalesced run into the hierarchy -- before
/// reset_stats() clears the boundary counters; the measured pass then
/// starts from a *fresh* Recorder, so warm-up flops and access counts
/// never leak into the profile while the cache contents stay warm.
template <typename Fn>
machine::ExecutionProfile steady_state_profile(
    const machine::MachineModel& machine, Fn&& workload) {
  memsim::MemoryHierarchy h = machine.make_hierarchy();
  {
    runtime::Recorder warmup(&h, /*coalesce=*/true,
                             /*warmup_fast_forward=*/true);
    workload(warmup);
  }
  h.reset_stats();
  runtime::Recorder rec(&h, /*coalesce=*/true);
  workload(rec);
  return rec.profile();
}

/// Single cold pass (for programs that run once, like the paper examples).
/// Coalescing is byte-exact (see recorder.h), so the fast path is on.
template <typename Fn>
machine::ExecutionProfile cold_profile(const machine::MachineModel& machine,
                                       Fn&& workload) {
  memsim::MemoryHierarchy h = machine.make_hierarchy();
  runtime::Recorder rec(&h, /*coalesce=*/true);
  workload(rec);
  return rec.profile();
}

/// Cold-cache profile of an IR program, replayed by the compiled engine
/// (slot-resolved bytecode + coalesced cache access; see docs/runtime.md).
inline machine::ExecutionProfile program_cold_profile(
    const machine::MachineModel& machine, const ir::Program& program) {
  memsim::MemoryHierarchy h = machine.make_hierarchy();
  runtime::ExecOptions opts;
  opts.hierarchy = &h;
  return runtime::execute_compiled(program, opts).profile;
}

/// Steady-state profile of an IR program: lower once, warm the hierarchy
/// with one pass, measure the second.
inline machine::ExecutionProfile program_steady_profile(
    const machine::MachineModel& machine, const ir::Program& program) {
  const runtime::LoweredProgram lowered = runtime::lower(program);
  memsim::MemoryHierarchy h = machine.make_hierarchy();
  runtime::ExecOptions opts;
  opts.hierarchy = &h;
  runtime::execute_lowered(lowered, opts);
  h.reset_stats();
  return runtime::execute_lowered(lowered, opts).profile;
}

inline void print_header(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

}  // namespace bwc::bench
