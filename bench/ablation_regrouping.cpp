// Ablation: inter-array data regrouping on a direct-mapped cache.
//
// The Figure 3 footnote blames the Exemplar's 3w6r dip on "excessive cache
// conflicts because it accesses 6 large arrays on a direct-mapped cache".
// Regrouping (paper Section 4 / Ding's dissertation) interleaves arrays
// accessed together, collapsing six conflicting streams into one: the
// conflicts -- and the bandwidth they waste -- disappear.
#include "bench_common.h"

#include <iostream>

#include "bwc/ir/dsl.h"
#include "bwc/model/measure.h"
#include "bwc/support/table.h"
#include "bwc/transform/regrouping.h"

namespace {

using namespace bwc;
using namespace bwc::ir::dsl;

/// The 3w6r kernel as an IR program: six arrays, three also written,
/// swept `passes` times (regrouping's packing prologue amortizes over
/// repeated sweeps, as in a real iterative application).
ir::Program three_w_six_r(std::int64_t n, std::int64_t passes) {
  ir::Program p("3w6r");
  std::vector<ir::ArrayId> arrays;
  for (int k = 0; k < 6; ++k)
    arrays.push_back(p.add_array("a" + std::to_string(k), {n}));
  p.add_scalar("acc");
  p.mark_output_scalar("acc");

  // acc-feeding read of the three read-only arrays, update of the rest.
  ir::StmtList body;
  ir::ExprPtr sum = at(arrays[3], v("i"));
  sum = std::move(sum) + at(arrays[4], v("i"));
  sum = std::move(sum) + at(arrays[5], v("i"));
  body.push_back(assign("acc", sref("acc") + sum->clone()));
  for (int k = 0; k < 3; ++k) {
    body.push_back(assign(arrays[static_cast<std::size_t>(k)], {v("i")},
                          at(arrays[static_cast<std::size_t>(k)], v("i")) *
                                  lit(0.5) +
                              sum->clone()));
  }
  ir::StmtList sweep;
  sweep.push_back(loop_b("i", 1, n, std::move(body)));
  p.append(loop_b("t", 1, passes, std::move(sweep)));
  return p;
}

}  // namespace

int main() {
  bench::print_header(
      "Ablation: inter-array regrouping vs direct-mapped conflicts "
      "(3w6r as a program)");

  const std::int64_t n = 100000;
  const ir::Program original = three_w_six_r(n, /*passes=*/4);
  const transform::RegroupingResult regrouped =
      transform::regroup_all(original);

  TextTable t("Simulated Exemplar (direct-mapped, random page placement)");
  t.set_header({"version", "mem traffic", "predicted ms", "checksum"});
  const machine::MachineModel exemplar = bench::exemplar();
  const auto before = model::measure(original, exemplar);
  const auto after = model::measure(regrouped.program, exemplar);
  t.add_row({"six separate arrays",
             fmt_bytes(static_cast<double>(before.profile.memory_bytes())),
             fmt_fixed(before.time.total_s * 1e3, 2),
             fmt_fixed(before.exec.checksum, 3)});
  t.add_row({"regrouped (interleaved)",
             fmt_bytes(static_cast<double>(after.profile.memory_bytes())),
             fmt_fixed(after.time.total_s * 1e3, 2),
             fmt_fixed(after.exec.checksum, 3)});
  std::cout << t.render();
  for (const auto& a : regrouped.actions) std::cout << "  - " << a << "\n";

  std::cout << "\nregrouping collapses six page-aligned streams into two, "
               "eliminating the direct-mapped\npage collisions ("
            << fmt_fixed(before.time.total_s / after.time.total_s, 2)
            << "x) -- the fix for the Figure 3 footnote's 3w6r pathology.\n";

  const machine::MachineModel o2k = bench::o2k();
  const auto b2 = model::measure(original, o2k);
  const auto a2 = model::measure(regrouped.program, o2k);
  std::cout << "on the 2-way Origin2000 model: "
            << fmt_fixed(b2.time.total_s * 1e3, 2) << " -> "
            << fmt_fixed(a2.time.total_s * 1e3, 2)
            << " ms (the scaled 2 KB L1 also suffers aligned-stream "
               "conflicts that regrouping removes).\n";
  return 0;
}
