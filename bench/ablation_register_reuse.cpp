// Ablation: register reuse and the register-bandwidth ceiling.
//
// The paper's balance study (Figure 2) ranks register bandwidth the second
// most critical resource after memory. Its reference [2] (Callahan, Cocke
// & Kennedy) restores register balance by keeping reused array elements in
// registers. This bench composes the two on the blur/sharpen chain: fusion
// + contraction fix the memory boundary, then scalar replacement rotates
// the remaining stencil reads through registers, cutting the L1-Reg
// bytes/flop -- each pass relieves the boundary the tuning report names
// next. (On guarded fused bodies -- e.g. after shifted fusion -- the
// rotation pass conservatively declines; hoisted loads must not evaluate
// subscripts a guard was protecting.)
#include "bench_common.h"

#include <iostream>

#include "bwc/core/optimizer.h"
#include "bwc/model/measure.h"
#include "bwc/support/table.h"
#include "bwc/workloads/extra_programs.h"

int main() {
  using namespace bwc;
  bench::print_header(
      "Ablation: register reuse after fusion (blur/sharpen, n = 200000)");

  const ir::Program p = workloads::blur_sharpen(200000);
  const machine::MachineModel machine = bench::o2k();

  struct Variant {
    const char* name;
    core::FusionSolver solver;
    bool storage, scalars;
  };
  TextTable t("Simulated Origin2000 (bytes per flop at each boundary)");
  t.set_header({"pipeline", "L1-Reg", "L2-L1", "Mem-L2", "predicted ms",
                "binding"});
  for (const Variant& variant :
       {Variant{"none", core::FusionSolver::kNone, false, false},
        Variant{"scalar replacement only", core::FusionSolver::kNone, false,
                true},
        Variant{"fusion + contraction", core::FusionSolver::kBest, true,
                false},
        Variant{"fusion + contraction + scalar repl.",
                core::FusionSolver::kBest, true, true}}) {
    core::OptimizerOptions opts;
    opts.solver = variant.solver;
    opts.reduce_storage = variant.storage;
    opts.eliminate_stores = variant.storage;
    opts.scalar_replacement = variant.scalars;
    const auto r = core::optimize(p, opts);
    const auto m = model::measure(r.program, machine);
    std::vector<std::string> row = {variant.name};
    for (double b : m.balance.bytes_per_flop) row.push_back(fmt_fixed(b, 2));
    row.push_back(fmt_fixed(m.time.total_s * 1e3, 2));
    row.push_back(m.time.binding_resource);
    t.add_row(row);
  }
  std::cout << t.render();
  std::cout << "\nreading: fusion/contraction fix the memory boundary but "
               "leave register demand alone;\nscalar replacement then cuts "
               "L1-Reg bytes/flop -- the [2] transformation composing with "
               "the\npaper's, one hierarchy level apart.\n";
  return 0;
}
