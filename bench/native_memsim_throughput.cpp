// Memory-hierarchy simulation throughput: accesses/sec of the
// CacheLevel::access hot loop under the streaming patterns replay
// actually issues.
//
// Every replayed access funnels through CacheLevel::access (tag probe,
// LRU rotate, eviction/writeback), so its cost bounds all non-fast-
// forwarded simulation. Four configurations:
//   - o2k elementwise: modulo-indexed set lookup, stride-1 doubles
//   - o2k coalesced: line-granular load_run/store_run (the recorder's
//     coalesced fast path -- fewer, wider accesses for the same bytes)
//   - exemplar elementwise: page-randomized indexing (hashed page frames,
//     memoized per page)
//   - o2k random: uniform random addresses, the set-conflict-heavy worst
//     case for the LRU update
//
//   native_memsim_throughput [--smoke] [--json]
//
// --smoke shrinks the access count and exits non-zero if elementwise
// throughput falls below an absolute floor -- CI runs this mode; the
// finer-grained 20%-regression gate runs against BENCH_baseline.json via
// tools/check_bench_regression.py. --json emits one JSON object of
// metrics. Numbers are recorded in EXPERIMENTS.md.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "bench_common.h"
#include "bwc/memsim/hierarchy.h"
#include "bwc/support/prng.h"

namespace {

using namespace bwc;

// Absolute floor for --smoke, in accesses/sec on the gated (elementwise)
// configurations. Measured throughput is an order of magnitude above this
// on commodity hosts; the floor only catches catastrophic regressions in
// the hot loop (an accidental allocation or O(assoc^2) scan), not noise.
constexpr double kAccessesPerSecFloor = 5e6;

double seconds_of(const std::function<void()>& fn, int reps) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return best;
}

/// Elementwise 1w2r stride-1 stream: two loaded arrays, one written back,
/// the access mix the compiled engine issues without coalescing.
void stream_elementwise(memsim::MemoryHierarchy& h, std::uint64_t n) {
  const std::uint64_t a = 1u << 24;
  const std::uint64_t b = 2u << 24;
  for (std::uint64_t i = 0; i < n; ++i) {
    h.load(a + 8 * i, 8);
    h.load(b + 8 * i, 8);
    h.store(a + 8 * i, 8);
  }
}

/// The same stream as line-granular runs (what Recorder::flush issues
/// after coalescing): one call per array per line's worth of elements.
void stream_runs(memsim::MemoryHierarchy& h, std::uint64_t n) {
  const std::uint64_t a = 1u << 24;
  const std::uint64_t b = 2u << 24;
  const std::uint64_t per_run = 512;  // elements per flushed run
  for (std::uint64_t i = 0; i < n; i += per_run) {
    const std::uint64_t len = std::min(per_run, n - i);
    h.load_run(a + 8 * i, 8, len);
    h.load_run(b + 8 * i, 8, len);
    h.store_run(a + 8 * i, 8, len);
  }
}

/// Uniform random doubles over a span several times the largest cache:
/// near-100% miss, maximal LRU churn.
void stream_random(memsim::MemoryHierarchy& h, std::uint64_t n) {
  Prng rng(42);
  // Element span whose byte footprint is 8x the total cache capacity.
  const std::uint64_t span_elems = h.total_capacity_bytes();
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::uint64_t addr = (1u << 24) + 8 * rng.uniform(span_elems);
    if ((i & 3) == 0) {
      h.store(addr, 8);
    } else {
      h.load(addr, 8);
    }
  }
}

struct Row {
  double aps = 0.0;       // accesses per second
  double lines_ps = 0.0;  // L1 line touches per second (runs config)
};

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false, json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--json") == 0) json = true;
  }

  const std::uint64_t n = smoke ? 2000000 : 8000000;  // iterations
  const int reps = smoke ? 2 : 3;

  if (!json) {
    bench::print_header("Memory-hierarchy simulation throughput" +
                        std::string(smoke ? " (smoke)" : ""));
    std::printf("%-26s %14s %14s\n", "config", "accesses/s", "sim calls/s");
  }

  bool ok = true;
  std::vector<std::pair<std::string, double>> metrics;
  const auto bench_one = [&](const char* name, const char* key,
                             const machine::MachineModel& machine,
                             void (*stream)(memsim::MemoryHierarchy&,
                                            std::uint64_t),
                             bool gate) {
    // One warm pass outside the timer: measure steady-state probe cost,
    // not first-touch allocation of the tag arrays.
    memsim::MemoryHierarchy h = machine.make_hierarchy();
    stream(h, n);
    const double secs = seconds_of([&] { stream(h, n); }, reps);
    const double accesses = 3.0 * static_cast<double>(n);
    // For the runs config the simulator-call count is per line, not per
    // element; report accesses/sec in element terms either way so the
    // configurations are comparable byte-for-byte.
    const double aps = accesses / secs;
    if (!json) std::printf("%-26s %14.3e %14.3e\n", name, aps, aps);
    metrics.emplace_back(key, aps);
    if (gate && aps < kAccessesPerSecFloor) ok = false;
  };

  bench_one("o2k elementwise", "o2k_elementwise_aps", bench::o2k(),
            stream_elementwise, /*gate=*/true);
  bench_one("o2k coalesced runs", "o2k_runs_aps", bench::o2k(), stream_runs,
            /*gate=*/false);
  bench_one("exemplar elementwise", "exemplar_elementwise_aps",
            bench::exemplar(), stream_elementwise, /*gate=*/true);
  bench_one("o2k random", "o2k_random_aps", bench::o2k(), stream_random,
            /*gate=*/false);

  if (json) {
    std::printf("{\"bench\": \"native_memsim_throughput\"");
    for (const auto& [key, value] : metrics)
      std::printf(", \"%s\": %.3e", key.c_str(), value);
    std::printf("}\n");
  } else if (!ok) {
    std::printf("\nFAIL: gated throughput below floor %.1e accesses/s\n",
                kAccessesPerSecFloor);
  }
  return ok ? 0 : 1;
}
