// Figure 4: the worked fusion-graph example.
//
// Six loops over arrays A..F with one fusion-preventing constraint
// (loops 5 and 6) and one dependence (6 depends on 5). The paper's claims:
//   - no fusion loads 20 arrays;
//   - bandwidth-minimal fusion ({5}, {1,2,3,4,6}) loads 7;
//   - the edge-weighted formulation's optimum ({1..5}, {6}) loads 8,
//     proving the prior objective does not minimize memory transfer.
#include "bench_common.h"

#include <iostream>

#include <fstream>

#include "bwc/fusion/dot_export.h"
#include "bwc/fusion/solvers.h"
#include "bwc/support/table.h"
#include "bwc/workloads/paper_programs.h"

int main() {
  using namespace bwc;
  bench::print_header("Figure 4: bandwidth-minimal vs edge-weighted fusion");

  const fusion::FusionGraph g = workloads::fig4_graph();

  auto describe = [&g](const fusion::FusionPlan& plan) {
    std::string partitions;
    for (const auto& group : plan.groups()) {
      partitions += "{";
      for (std::size_t i = 0; i < group.size(); ++i) {
        if (i) partitions += ",";
        partitions += std::to_string(group[i] + 1);  // paper's 1-based loops
      }
      partitions += "} ";
    }
    return partitions;
  };

  TextTable t("Arrays loaded from memory under each strategy");
  t.set_header({"strategy", "partitions (paper loop ids)", "arrays loaded"});
  const auto none = fusion::no_fusion(g);
  t.add_row({"no fusion", describe(none), std::to_string(none.cost)});
  const auto exact = fusion::exact_enumeration(g);
  t.add_row({"bandwidth-minimal (exact)", describe(exact),
             std::to_string(exact.cost)});
  const auto two = fusion::exact_two_partition(g);
  if (two.has_value()) {
    t.add_row({"two-partition min-cut (Fig.5 alg)", describe(*two),
               std::to_string(two->cost)});
  }
  const auto ew = fusion::edge_weighted_baseline(g);
  t.add_row({"edge-weighted (Gao / K&M)", describe(ew),
             std::to_string(ew.cost)});
  const auto greedy = fusion::greedy_fusion(g);
  t.add_row({"greedy heuristic", describe(greedy),
             std::to_string(greedy.cost)});
  const auto bisect = fusion::recursive_bisection(g);
  t.add_row({"recursive bisection", describe(bisect),
             std::to_string(bisect.cost)});
  std::cout << t.render();

  std::cout << "\npaper: no fusion 20, bandwidth-minimal 7, edge-weighted 8\n";
  std::cout << "reproduced: " << none.cost << " / " << exact.cost << " / "
            << ew.cost << "\n";

  const std::vector<std::string> labels = {"loop1", "loop2", "loop3",
                                           "loop4", "loop5", "loop6"};
  std::ofstream dot("fig4_fusion_graph.dot");
  dot << fusion::to_dot(g, exact, labels);
  std::cout << "graphviz rendering written to fig4_fusion_graph.dot "
               "(dot -Tsvg fig4_fusion_graph.dot -o fig4.svg)\n";
  return 0;
}
