// Ablation: fusion with loop alignment (shifted fusion).
//
// A Jacobi-style sweep chain defeats plain fusion outright: every sweep
// reads its predecessor's output at offset +1, which reverses a dependence
// under aligned fusion. Delaying each consumer by one iteration (loop
// alignment / software pipelining the chain) legalizes the fusion, and the
// whole chain collapses to one pass over memory.
#include "bench_common.h"

#include <iostream>

#include "bwc/core/optimizer.h"
#include "bwc/model/measure.h"
#include "bwc/support/table.h"
#include "bwc/workloads/extra_programs.h"

int main() {
  using namespace bwc;
  bench::print_header(
      "Ablation: loop alignment on a 4-sweep Jacobi chain (n = 200000)");

  const ir::Program p = workloads::jacobi_chain(200000, 4);
  const machine::MachineModel machine = bench::o2k();

  struct Variant {
    const char* name;
    bool shift;
  };
  TextTable t("Simulated Origin2000");
  t.set_header({"fusion", "partitions", "mem traffic", "predicted ms",
                "speedup"});
  double base_time = 0.0;
  for (const Variant& variant :
       {Variant{"plain (paper)", false}, Variant{"with alignment", true}}) {
    core::OptimizerOptions opts;
    opts.allow_shifted_fusion = variant.shift;
    opts.reduce_storage = false;
    opts.eliminate_stores = false;
    const auto r = core::optimize(p, opts);
    const auto m = model::measure(r.program, machine);
    if (base_time == 0.0) base_time = m.time.total_s;
    t.add_row({variant.name, std::to_string(r.plan.num_partitions),
               fmt_bytes(static_cast<double>(m.profile.memory_bytes())),
               fmt_fixed(m.time.total_s * 1e3, 2),
               fmt_fixed(base_time / m.time.total_s, 2) + "x"});
  }
  std::cout << t.render();
  std::cout
      << "\nreading: the sweeps' +1 reads make every adjacent pair "
         "fusion-preventing under the paper's\nmodel; alignment is the "
         "natural extension that recovers the fusion -- the chain runs in "
         "one\nmemory pass, u/v streamed once instead of once per sweep.\n";
  return 0;
}
