// Ablation: fusion solver quality and cost.
//
// The general bandwidth-minimal fusion problem is NP-complete (paper
// Section 3.1.3), so real compilers need heuristics. This sweep compares,
// on random fusion graphs, the exact enumeration against greedy,
// min-cut recursive bisection, and the prior edge-weighted objective:
// how close each gets to the optimum (arrays loaded) and what it costs.
#include "bench_common.h"

#include <chrono>
#include <iostream>

#include "bwc/fusion/solvers.h"
#include "bwc/support/prng.h"
#include "bwc/support/stats.h"
#include "bwc/support/table.h"

namespace {

using namespace bwc;

fusion::FusionGraph random_spec(Prng& rng, int loops, int arrays,
                                double pin_prob, double prevent_prob) {
  std::vector<std::vector<int>> pins(static_cast<std::size_t>(arrays));
  for (auto& p : pins) {
    for (int l = 0; l < loops; ++l) {
      if (rng.chance(pin_prob)) p.push_back(l);
    }
    if (p.empty())
      p.push_back(static_cast<int>(rng.uniform(
          static_cast<std::uint64_t>(loops))));
  }
  std::vector<std::pair<int, int>> deps, prevent;
  for (int i = 0; i < loops; ++i) {
    for (int j = i + 1; j < loops; ++j) {
      if (rng.chance(0.15)) deps.emplace_back(i, j);
      if (rng.chance(prevent_prob)) prevent.emplace_back(i, j);
    }
  }
  return fusion::graph_from_spec(loops, pins, deps, prevent);
}

struct SolverStats {
  RunningStats quality;  // cost / exact cost
  RunningStats micros;
  int optimal_hits = 0;
};

}  // namespace

int main() {
  bench::print_header(
      "Ablation: fusion solver quality on random graphs "
      "(9 loops, 7 arrays, 120 graphs)");

  Prng rng(20260707);
  const int trials = 120;
  SolverStats greedy, bisect, edge_weighted, exact_time;

  for (int trial = 0; trial < trials; ++trial) {
    const fusion::FusionGraph g = random_spec(rng, 9, 7, 0.4, 0.12);

    const auto t0 = std::chrono::steady_clock::now();
    const auto exact = fusion::exact_enumeration(g);
    const auto t1 = std::chrono::steady_clock::now();
    exact_time.micros.add(
        std::chrono::duration<double, std::micro>(t1 - t0).count());

    auto evaluate = [&](SolverStats& stats, auto&& solver) {
      const auto s0 = std::chrono::steady_clock::now();
      const fusion::FusionPlan plan = solver(g);
      const auto s1 = std::chrono::steady_clock::now();
      stats.micros.add(
          std::chrono::duration<double, std::micro>(s1 - s0).count());
      stats.quality.add(static_cast<double>(plan.cost) /
                        static_cast<double>(exact.cost));
      if (plan.cost == exact.cost) ++stats.optimal_hits;
    };
    evaluate(greedy, fusion::greedy_fusion);
    evaluate(bisect, fusion::recursive_bisection);
    evaluate(edge_weighted, fusion::edge_weighted_baseline);
  }

  TextTable t("cost relative to exact optimum (1.00 = optimal)");
  t.set_header({"solver", "mean", "worst", "optimal runs", "mean time (us)"});
  auto row = [&](const char* name, const SolverStats& s) {
    t.add_row({name, fmt_fixed(s.quality.mean(), 3),
               fmt_fixed(s.quality.max(), 3),
               std::to_string(s.optimal_hits) + "/" + std::to_string(trials),
               fmt_fixed(s.micros.mean(), 1)});
  };
  row("greedy", greedy);
  row("recursive bisection (min-cut)", bisect);
  row("edge-weighted objective", edge_weighted);
  t.add_rule();
  t.add_row({"exact enumeration", "1.000", "1.000",
             std::to_string(trials) + "/" + std::to_string(trials),
             fmt_fixed(exact_time.micros.mean(), 1)});
  std::cout << t.render();
  std::cout << "\nreading: the cheap heuristics (greedy, bisection) trade "
               "10-25% extra transfer for a 20-1000x speedup over "
               "enumeration. The edge-weighted objective -- here solved "
               "*exactly* -- still misses the bandwidth optimum on a "
               "sizeable fraction of graphs: optimizing the wrong objective "
               "cannot be fixed by solving it better, the paper's Figure 4 "
               "point at scale.\n";
  return 0;
}
