#!/usr/bin/env python3
"""Regenerate BENCH_baseline.json from repeated --json bench runs.

Usage:
    update_bench_baseline.py BUILD_DIR [RUNS]

Runs each baselined bench binary RUNS times (default 3) with --json
(--smoke for the wall-clock benches, matching what CI measures), takes
the per-metric median, and writes BENCH_baseline.json next to this
script's repo root. Commit the result together with whatever change
moved the numbers; tools/check_bench_regression.py fails CI when a
later run drifts >20% worse than these medians.
"""

import json
import pathlib
import statistics
import subprocess
import sys

# (binary relative to the build dir, extra args). The deterministic
# model benches need one run; repetition only matters for wall-clock.
BENCHES = [
    ("bench/fig3_kernel_bandwidth", ["--json"]),
    ("bench/fig_multicore_scaling", ["--json"]),
    ("bench/native_interpreter_throughput", ["--smoke", "--json"]),
    ("bench/native_fastforward_throughput", ["--smoke", "--json"]),
    ("bench/native_memsim_throughput", ["--smoke", "--json"]),
]


def main(argv: list[str]) -> int:
    if len(argv) < 2 or len(argv) > 3:
        print("usage: update_bench_baseline.py BUILD_DIR [RUNS]",
              file=sys.stderr)
        return 2
    build = pathlib.Path(argv[1])
    runs = int(argv[2]) if len(argv) == 3 else 3

    baseline: dict[str, dict[str, float]] = {}
    for rel, args in BENCHES:
        samples: dict[str, list[float]] = {}
        name = None
        for _ in range(runs):
            # check=False: a smoke-floor trip on a loaded host still prints
            # valid metrics, and the medians are what we're here for.
            proc = subprocess.run([str(build / rel), *args], check=False,
                                  capture_output=True, text=True)
            if proc.returncode != 0:
                print(f"warning: {rel} exited {proc.returncode}",
                      file=sys.stderr)
            obj = json.loads(proc.stdout.strip().splitlines()[0])
            name = obj.pop("bench")
            for metric, value in obj.items():
                samples.setdefault(metric, []).append(float(value))
        assert name is not None
        baseline[name] = {m: round(statistics.median(v), 4)
                          for m, v in samples.items()}
        print(f"{name}: {baseline[name]}")

    out_path = pathlib.Path(__file__).resolve().parent.parent
    out_path = out_path / "BENCH_baseline.json"
    with open(out_path, "w", encoding="utf-8") as f:
        json.dump(baseline, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"wrote {out_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
