// bwcopt — command-line driver for the bandwidth optimizer.
//
//   bwcopt [options]
//     --program <fig6|fig7|sec21|random>   workload (default fig7)
//     --file <path>                        parse a program from a text
//                                          file (printer format) instead
//     --n <int>                            problem size (default 100000;
//                                          fig6 uses a 2-D n x n)
//     --machine <o2k|exemplar|modern>      machine model (default o2k)
//     --cores <int>                        core count for the multicore
//                                          shared-bandwidth model (default
//                                          1); runs the parallel compiled
//                                          engine and prints the scaling
//                                          curve with the bus-saturation
//                                          point
//     --scale <int>                        cache scale divisor (default 16)
//     --engine <compiled|reference>        replay engine for measurement
//                                          (default compiled; both are
//                                          bit-identical, compiled is
//                                          several times faster)
//     --fast-forward / --no-fast-forward   steady-state fast-forward in
//                                          the compiled replay (default
//                                          on; exact macrosimulation, all
//                                          observables bit-identical --
//                                          the off switch exists for
//                                          timing comparisons and
//                                          debugging)
//     --solver <best|exact|greedy|bisection|edge-weighted|none>
//     --no-storage --no-stores             disable individual passes
//     --regroup                            also run inter-array regrouping
//     --shift                              allow fusion with loop alignment
//     --interchange                        stride-1 loop interchange first
//     --scalar-replace                     rotating-scalar register reuse
//     --seed <int>                         seed for --program random
//     --verify                             print the static traffic
//                                          lower-bound report and assert
//                                          bound <= measured traffic
//     --no-verify                          skip the in-pipeline verifier
//                                          (translation validation and
//                                          observability certification run
//                                          after every pass by default)
//     --print                              print before/after programs
//     --help
//
// Output: the pass log, before/after traffic + predicted time on the
// chosen machine, the tuning report, and a semantics check.
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "bwc/core/optimizer.h"
#include "bwc/ir/parser.h"
#include "bwc/ir/printer.h"
#include "bwc/machine/machine_model.h"
#include "bwc/model/measure.h"
#include "bwc/model/prediction.h"
#include "bwc/support/error.h"
#include "bwc/support/prng.h"
#include "bwc/support/table.h"
#include "bwc/transform/regrouping.h"
#include "bwc/verify/verify.h"
#include "bwc/workloads/paper_programs.h"
#include "bwc/workloads/random_programs.h"

namespace {

using namespace bwc;

struct Options {
  std::string program = "fig7";
  std::string file;
  std::int64_t n = 100000;
  std::string machine = "o2k";
  int cores = 1;
  std::uint64_t scale = 16;
  std::string engine = "compiled";
  bool fast_forward = true;
  std::string solver = "best";
  bool storage = true;
  bool stores = true;
  bool regroup = false;
  bool shift = false;
  bool interchange = false;
  bool scalar_replace = false;
  std::uint64_t seed = 1;
  bool print = false;
  /// Print the traffic-bound report and assert bound <= measured traffic.
  bool verify_report = false;
  /// Run the independent verifier after every optimizer pass.
  bool verify_pipeline = true;
};

[[noreturn]] void usage(int code) {
  std::cout <<
      "bwcopt --program <fig6|fig7|sec21|random> --n <int> "
      "--machine <o2k|exemplar|modern> --cores <int>\n"
      "       --scale <int> --engine <compiled|reference> "
      "[--fast-forward|--no-fast-forward] --solver "
      "<best|exact|greedy|bisection|edge-weighted|none>\n"
      "       [--no-storage] [--no-stores] [--regroup] [--shift] "
      "[--seed <int>] [--verify] [--no-verify] [--print]\n";
  std::exit(code);
}

Options parse(int argc, char** argv) {
  Options o;
  auto value = [&](int& i) -> std::string {
    if (i + 1 >= argc) usage(2);
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--program") {
      o.program = value(i);
    } else if (arg == "--file") {
      o.file = value(i);
    } else if (arg == "--n") {
      o.n = std::stoll(value(i));
    } else if (arg == "--machine") {
      o.machine = value(i);
    } else if (arg == "--cores") {
      o.cores = std::stoi(value(i));
    } else if (arg == "--scale") {
      o.scale = std::stoull(value(i));
    } else if (arg == "--engine") {
      o.engine = value(i);
    } else if (arg == "--fast-forward") {
      o.fast_forward = true;
    } else if (arg == "--no-fast-forward") {
      o.fast_forward = false;
    } else if (arg == "--solver") {
      o.solver = value(i);
    } else if (arg == "--no-storage") {
      o.storage = false;
    } else if (arg == "--no-stores") {
      o.stores = false;
    } else if (arg == "--regroup") {
      o.regroup = true;
    } else if (arg == "--shift") {
      o.shift = true;
    } else if (arg == "--interchange") {
      o.interchange = true;
    } else if (arg == "--scalar-replace") {
      o.scalar_replace = true;
    } else if (arg == "--seed") {
      o.seed = std::stoull(value(i));
    } else if (arg == "--verify") {
      o.verify_report = true;
    } else if (arg == "--no-verify") {
      o.verify_pipeline = false;
    } else if (arg == "--print") {
      o.print = true;
    } else if (arg == "--help" || arg == "-h") {
      usage(0);
    } else {
      std::cerr << "unknown flag: " << arg << "\n";
      usage(2);
    }
  }
  return o;
}

ir::Program make_program(const Options& o) {
  if (!o.file.empty()) {
    std::ifstream in(o.file);
    if (!in.good()) throw Error("cannot open program file: " + o.file);
    std::ostringstream text;
    text << in.rdbuf();
    return ir::parse_program(text.str());
  }
  if (o.program == "fig6")
    return workloads::fig6_original(std::min<std::int64_t>(o.n, 2000));
  if (o.program == "fig7") return workloads::fig7_original(o.n);
  if (o.program == "sec21") return workloads::sec21_both_loops(o.n);
  if (o.program == "random") {
    Prng rng(o.seed);
    workloads::RandomProgramParams params;
    params.n = std::min<std::int64_t>(o.n, 4096);
    return workloads::random_program(rng, params);
  }
  throw Error("unknown program: " + o.program);
}

machine::MachineModel make_machine(const Options& o) {
  machine::MachineModel m;
  if (o.machine == "o2k") {
    m = machine::origin2000_r10k();
  } else if (o.machine == "exemplar") {
    m = machine::exemplar_pa8000();
  } else if (o.machine == "modern") {
    m = machine::generic_modern();
  } else {
    throw Error("unknown machine: " + o.machine);
  }
  return m.scaled(o.scale).with_cores(o.cores);
}

model::ExecEngine make_engine(const std::string& name) {
  if (name == "compiled") return model::ExecEngine::kCompiled;
  if (name == "reference") return model::ExecEngine::kReference;
  throw Error("unknown engine: " + name);
}

core::FusionSolver make_solver(const std::string& name) {
  if (name == "best") return core::FusionSolver::kBest;
  if (name == "exact") return core::FusionSolver::kExact;
  if (name == "greedy") return core::FusionSolver::kGreedy;
  if (name == "bisection") return core::FusionSolver::kBisection;
  if (name == "edge-weighted") return core::FusionSolver::kEdgeWeighted;
  if (name == "none") return core::FusionSolver::kNone;
  throw Error("unknown solver: " + name);
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Options o = parse(argc, argv);
    const ir::Program original = make_program(o);
    const machine::MachineModel machine = make_machine(o);

    core::OptimizerOptions opts;
    opts.solver = make_solver(o.solver);
    opts.reduce_storage = o.storage;
    opts.eliminate_stores = o.stores;
    opts.allow_shifted_fusion = o.shift;
    opts.auto_interchange = o.interchange;
    opts.scalar_replacement = o.scalar_replace;
    opts.verify = o.verify_pipeline;
    opts.cores = o.cores;
    core::OptimizeResult result = core::optimize(original, opts);
    if (o.regroup) {
      transform::RegroupingResult rr =
          transform::regroup_all(result.program);
      for (const auto& a : rr.actions)
        result.log.push_back("regrouping: " + a);
      result.program = std::move(rr.program);
    }

    if (o.print) {
      std::cout << "---- original ----\n" << ir::to_string(original)
                << "\n---- optimized ----\n" << ir::to_string(result.program)
                << "\n";
    }
    std::cout << "passes:\n" << core::render_log(result) << "\n";

    model::MeasureOptions measure_opts;
    measure_opts.engine = make_engine(o.engine);
    measure_opts.fast_forward = o.fast_forward;
    const auto before = model::measure(original, machine, measure_opts);
    const auto after = model::measure(result.program, machine, measure_opts);
    TextTable t("on " + machine.name);
    t.set_header({"", "mem traffic", "predicted ms", "binding"});
    t.add_row({"original",
               fmt_bytes(static_cast<double>(before.profile.memory_bytes())),
               fmt_fixed(before.time.total_s * 1e3, 3),
               before.time.binding_resource});
    t.add_row({"optimized",
               fmt_bytes(static_cast<double>(after.profile.memory_bytes())),
               fmt_fixed(after.time.total_s * 1e3, 3),
               after.time.binding_resource});
    std::cout << t.render();
    std::cout << "speedup: "
              << fmt_fixed(before.time.total_s / after.time.total_s, 2)
              << "x\n";

    if (o.cores > 1) {
      // Scaling curves up to the requested core count: optimization lowers
      // shared-bus traffic, so the optimized program should saturate the
      // bus at strictly more cores (or plateau higher).
      std::cout << "\n"
                << model::render_scaling_curve(model::scaling_curve(
                       "original", before.profile, machine, o.cores))
                << model::render_scaling_curve(model::scaling_curve(
                       "optimized", after.profile, machine, o.cores));
    }

    bool bounds_ok = true;
    if (o.verify_report) {
      const struct {
        const char* label;
        const ir::Program& program;
        std::uint64_t measured;
      } sides[] = {
          {"original", original, before.profile.memory_bytes()},
          {"optimized", result.program, after.profile.memory_bytes()},
      };
      for (const auto& side : sides) {
        const verify::TrafficBound bound =
            verify::compute_traffic_bound(side.program);
        std::cout << "\n[" << side.label << "] " << bound.render();
        const bool holds =
            static_cast<std::uint64_t>(bound.lower_bound_bytes) <=
            side.measured;
        std::cout << "  bound <= measured " << side.measured << " bytes: "
                  << (holds ? "holds" : "VIOLATED -- please report a bug")
                  << "\n";
        bounds_ok = bounds_ok && holds;
      }
      std::cout << "\n";
    }

    const double drift =
        std::abs(before.exec.checksum - after.exec.checksum);
    const bool ok = bounds_ok &&
        drift <= 1e-9 * (std::abs(before.exec.checksum) + 1.0);
    std::cout << "semantics: "
              << (ok ? "preserved" : "MISMATCH -- please report a bug")
              << " (checksum " << before.exec.checksum << ")\n\n";
    std::cout << model::render_tuning_report(
        model::tuning_report(after.profile, machine));
    return ok ? 0 : 1;
  } catch (const bwc::Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
