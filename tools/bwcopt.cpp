// bwcopt — command-line driver for the bandwidth optimizer.
//
// Runs the pass pipeline over a workload, measures original vs optimized
// on a machine model, and reports: the pass log, before/after traffic +
// predicted time, scaling curves (--cores), the tuning report, and a
// semantics check. `bwcopt --help` documents every flag.
//
// Exit status: 0 on success, 1 when the traffic-bound or semantics check
// fails (a bug), 2 on bad usage or any error.
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bwc/core/optimizer.h"
#include "bwc/ir/parser.h"
#include "bwc/ir/printer.h"
#include "bwc/machine/machine_model.h"
#include "bwc/model/measure.h"
#include "bwc/model/prediction.h"
#include "bwc/server/client.h"
#include "bwc/server/protocol.h"
#include "bwc/server/record_log.h"
#include "bwc/support/error.h"
#include "bwc/support/prng.h"
#include "bwc/support/table.h"
#include "bwc/verify/verify.h"
#include "bwc/tune/autotune.h"
#include "bwc/workloads/extra_programs.h"
#include "bwc/workloads/paper_programs.h"
#include "bwc/workloads/random_programs.h"

namespace {

using namespace bwc;

struct Options {
  std::string program = "fig7";
  std::string file;
  std::int64_t n = 100000;
  std::string machine = "o2k";
  int cores = 1;
  std::uint64_t scale = 16;
  std::string engine = "compiled";
  bool fast_forward = true;
  std::string codegen_cache_dir;
  std::string passes;
  std::string solver = "best";
  bool storage = true;
  bool stores = true;
  bool regroup = false;
  bool shift = false;
  bool interchange = false;
  bool scalar_replace = false;
  std::uint64_t seed = 1;
  bool print = false;
  bool print_after_all = false;
  /// "json": print the structured pass reports as the only stdout output.
  std::string remarks;
  /// Print the traffic-bound report and assert bound <= measured traffic.
  bool verify_report = false;
  /// Run the independent verifier after every optimizer pass.
  bool verify_pipeline = true;
  /// Static-prover-first checking policy: on|off|only.
  std::string static_verify = "on";
  /// Run the bwc-lint diagnostics pass over the input program instead of
  /// optimizing; exit 1 on any error-severity finding.
  bool lint = false;
  /// Serve repeated analysis queries from the AnalysisManager cache.
  bool cache_analyses = true;
  /// Fingerprint cache entries and fail on undeclared invalidations.
  bool audit_analyses = false;
  /// Search the pipeline space instead of running one pipeline.
  bool tune = false;
  std::string tune_strategy = "beam";
  double tune_gap = 5.0;
  std::string tune_budget = "medium";
  std::uint64_t tune_seed = 0;
  /// bwcd record log whose pipeline-spec records seed the population.
  std::string tune_seed_log;
};

/// One entry of the flag table: every flag bwcopt accepts, its value
/// placeholder (empty for boolean flags; starting with '[' for an
/// optional inline value, e.g. "--tune" or "--tune=genetic"), one-line
/// help, and its effect.
struct Flag {
  const char* name;
  const char* value;  // e.g. "<int>"; "" for flags taking no value
  const char* help;
  void (*apply)(Options&, const std::string&);
};

const Flag kFlags[] = {
    // Workload selection.
    {"--program", "<fig6|fig7|sec21|jacobi|adi|blur|cascade|stride|random>",
     "workload to optimize (default fig7)",
     [](Options& o, const std::string& v) { o.program = v; }},
    {"--file", "<path>",
     "parse the program from a text file (printer format) instead",
     [](Options& o, const std::string& v) { o.file = v; }},
    {"--n", "<int>",
     "problem size (default 100000; fig6 uses a 2-D n x n, capped at 2000)",
     [](Options& o, const std::string& v) { o.n = std::stoll(v); }},
    {"--seed", "<int>", "PRNG seed for --program random (default 1)",
     [](Options& o, const std::string& v) { o.seed = std::stoull(v); }},
    // Machine model and measurement.
    {"--machine", "<o2k|exemplar|modern>", "machine model (default o2k)",
     [](Options& o, const std::string& v) { o.machine = v; }},
    {"--cores", "<int>",
     "core count for the multicore shared-bandwidth model (default 1); "
     "runs the parallel compiled engine and prints the scaling curve with "
     "the bus-saturation point",
     [](Options& o, const std::string& v) { o.cores = std::stoi(v); }},
    {"--scale", "<int>", "cache scale divisor (default 16)",
     [](Options& o, const std::string& v) { o.scale = std::stoull(v); }},
    {"--engine", "<compiled|reference|native>",
     "replay engine for measurement (default compiled; all are "
     "bit-identical; native compiles each lowered workload to host "
     "machine code via the system C compiler and falls back to the "
     "compiled VM with a warning when none is available)",
     [](Options& o, const std::string& v) { o.engine = v; }},
    {"--codegen-cache-dir", "<path>",
     "on-disk cache for --engine native objects (default "
     "$BWC_CODEGEN_CACHE_DIR or ./.bwc-codegen-cache)",
     [](Options& o, const std::string& v) { o.codegen_cache_dir = v; }},
    {"--fast-forward", "",
     "steady-state fast-forward in the compiled replay (default on; exact "
     "macrosimulation, all observables bit-identical)",
     [](Options& o, const std::string&) { o.fast_forward = true; }},
    {"--no-fast-forward", "",
     "disable fast-forward (for timing comparisons and debugging)",
     [](Options& o, const std::string&) { o.fast_forward = false; }},
    // Pipeline selection.
    {"--passes", "<spec>",
     "explicit pass pipeline, e.g. "
     "\"interchange,fuse(solver=exact),reduce-storage,eliminate-stores\" "
     "(grammar in docs/PIPELINE.md); overrides --solver, --no-storage, "
     "--no-stores, --shift, --interchange and --scalar-replace",
     [](Options& o, const std::string& v) { o.passes = v; }},
    {"--solver", "<best|exact|greedy|bisection|edge-weighted|none>",
     "fusion solver (default best; none skips fusion)",
     [](Options& o, const std::string& v) { o.solver = v; }},
    {"--no-storage", "", "disable the storage-reduction pass",
     [](Options& o, const std::string&) { o.storage = false; }},
    {"--no-stores", "", "disable the store-elimination pass",
     [](Options& o, const std::string&) { o.stores = false; }},
    {"--regroup", "", "also run inter-array regrouping (appends the "
     "regroup pass to the pipeline)",
     [](Options& o, const std::string&) { o.regroup = true; }},
    {"--shift", "", "allow fusion with loop alignment (bounded shifts)",
     [](Options& o, const std::string&) { o.shift = true; }},
    {"--interchange", "", "run stride-1 loop interchange before fusion",
     [](Options& o, const std::string&) { o.interchange = true; }},
    {"--scalar-replace", "", "rotating-scalar register reuse after the "
     "bandwidth passes",
     [](Options& o, const std::string&) { o.scalar_replace = true; }},
    // Verification and reporting.
    {"--verify", "",
     "print the static traffic lower-bound report and assert bound <= "
     "measured traffic",
     [](Options& o, const std::string&) { o.verify_report = true; }},
    {"--no-verify", "",
     "skip the in-pipeline verifier (translation validation and "
     "observability certification run after every pass by default)",
     [](Options& o, const std::string&) { o.verify_pipeline = false; }},
    {"--static-verify", "<on|off|only>",
     "static-prover-first checking (default on): the symbolic legality "
     "provers run before any trace replay and a proof skips the replay; "
     "off is trace-only; only never replays (a static refutation fails, "
     "an undecided check is reported as skipped)",
     [](Options& o, const std::string& v) { o.static_verify = v; }},
    {"--lint", "",
     "run the bwc-lint diagnostics pass over the input program instead of "
     "optimizing: dead stores, unreachable guard arms, analysis-opaque "
     "contexts, loops already at the traffic lower bound; exit 1 on any "
     "error-severity finding (combine with --remarks=json for the "
     "machine-readable report)",
     [](Options& o, const std::string&) { o.lint = true; }},
    {"--no-cache-analyses", "",
     "recompute every analysis query instead of serving it from the "
     "pass-manager cache (the pre-pass-manager behavior; results are "
     "identical either way)",
     [](Options& o, const std::string&) { o.cache_analyses = false; }},
    {"--audit-analyses", "",
     "fingerprint analysis-cache entries against the IR they were "
     "computed from and fail on a stale hit -- catches passes that "
     "mutate the program without declaring the invalidation",
     [](Options& o, const std::string&) { o.audit_analyses = true; }},
    // Autotuning.
    {"--tune", "[=beam|genetic]",
     "search the pipeline space for this workload instead of running one "
     "pipeline: seeded parallel beam (default) or genetic search over "
     "PipelineSpec strings, scored by the static traffic bound with full "
     "per-pass verification, top candidates validated in the machine "
     "model; prints the winner, the default-pipeline comparison and the "
     "lower-bound optimality certificate when one is earned "
     "(docs/AUTOTUNE.md; the scoring pool uses --cores threads)",
     [](Options& o, const std::string& v) {
       o.tune = true;
       if (!v.empty()) o.tune_strategy = v;
     }},
    {"--tune-gap", "<percent>",
     "certificate tolerance: stop the search early and certify the winner "
     "when its traffic is within this percentage of the data-movement "
     "floor (default 5)",
     [](Options& o, const std::string& v) { o.tune_gap = std::stod(v); }},
    {"--tune-budget", "<small|medium|large|int>",
     "maximum candidates scored: small=16, medium=48, large=128, or an "
     "explicit count (default medium)",
     [](Options& o, const std::string& v) { o.tune_budget = v; }},
    {"--tune-seed", "<int>",
     "search PRNG seed (default 0); a fixed seed replays the identical "
     "search and winner at any --cores value",
     [](Options& o, const std::string& v) {
       o.tune_seed = std::stoull(v);
     }},
    {"--tune-seed-log", "<path>",
     "seed the starting population with the pipeline-spec records of a "
     "bwcd record log (docs/SERVER.md); missing file seeds nothing",
     [](Options& o, const std::string& v) { o.tune_seed_log = v; }},
    {"--remarks", "<json>",
     "print the structured per-pass reports (remarks, timing, predicted "
     "traffic deltas) in the given format as the only output; skips "
     "measurement (schema bwc-remarks-v1, docs/PIPELINE.md)",
     [](Options& o, const std::string& v) { o.remarks = v; }},
    {"--print", "", "print the original and optimized programs",
     [](Options& o, const std::string&) { o.print = true; }},
    {"--print-after-all", "", "print the program after every pass",
     [](Options& o, const std::string&) { o.print_after_all = true; }},
};

void print_help(std::ostream& os) {
  os << "bwcopt -- drive the bandwidth optimizer over a workload and "
        "measure it\n\n"
        "usage: bwcopt [options]\n\n"
        "Output: the pass log, before/after memory traffic and predicted "
        "time on the\nchosen machine model, scaling curves (--cores > 1), "
        "the tuning report, and a\nsemantics check. Exit 0 on success, 1 "
        "when a bound or the semantics check is\nviolated, 2 on bad usage "
        "or any error.\n\noptions:\n";
  for (const Flag& flag : kFlags) {
    std::string head = "  " + std::string(flag.name);
    if (flag.value[0] == '[')
      head += std::string(flag.value);  // optional inline value
    else if (flag.value[0] != '\0')
      head += " " + std::string(flag.value);
    os << head << "\n";
    // Wrap the help text at 70 columns under an 8-column indent.
    std::istringstream words(flag.help);
    std::string word;
    std::string line;
    while (words >> word) {
      if (!line.empty() && line.size() + 1 + word.size() > 70) {
        os << "        " << line << "\n";
        line.clear();
      }
      if (!line.empty()) line += " ";
      line += word;
    }
    if (!line.empty()) os << "        " << line << "\n";
  }
  os << "  --help\n        print this help and exit\n";
}

[[noreturn]] void usage_error(const std::string& why) {
  std::cerr << "bwcopt: " << why << "\n"
            << "usage: bwcopt [options]; run bwcopt --help for the flag "
               "list\n";
  std::exit(2);
}

Options parse(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_help(std::cout);
      std::exit(0);
    }
    // Accept both "--flag value" and "--flag=value".
    std::string inline_value;
    bool has_inline = false;
    const std::size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      inline_value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
      has_inline = true;
    }
    const Flag* found = nullptr;
    for (const Flag& flag : kFlags) {
      if (arg == flag.name) {
        found = &flag;
        break;
      }
    }
    if (found == nullptr) usage_error("unknown flag: " + arg);
    const bool optional_value = found->value[0] == '[';
    const bool takes_value = !optional_value && found->value[0] != '\0';
    std::string value;
    if (optional_value) {
      // "--tune" and "--tune=genetic" are both valid; a following
      // argument is never consumed.
      if (has_inline) value = inline_value;
    } else if (takes_value) {
      if (has_inline) {
        value = inline_value;
      } else if (i + 1 < argc) {
        value = argv[++i];
      } else {
        usage_error("flag " + arg + " requires a value " + found->value);
      }
    } else if (has_inline) {
      usage_error("flag " + arg + " takes no value");
    }
    try {
      found->apply(o, value);
    } catch (const std::exception&) {
      usage_error("bad value \"" + value + "\" for flag " + arg);
    }
  }
  if (!o.remarks.empty() && o.remarks != "json")
    usage_error("unknown remarks format: " + o.remarks + " (supported: json)");
  if (o.static_verify != "on" && o.static_verify != "off" &&
      o.static_verify != "only")
    usage_error("unknown static-verify mode: " + o.static_verify +
                " (supported: on, off, only)");
  if (o.cores < 1) usage_error("--cores must be >= 1");
  if (o.tune) {
    try {
      tune::parse_strategy(o.tune_strategy);
      tune::parse_budget(o.tune_budget);
    } catch (const Error& e) {
      usage_error(e.what());
    }
    if (!(o.tune_gap >= 0.0 && o.tune_gap <= 1000.0))
      usage_error("--tune-gap must be in [0, 1000]");
    if (o.lint) usage_error("--tune and --lint are mutually exclusive");
  }
  return o;
}

ir::Program make_program(const Options& o) {
  if (!o.file.empty()) {
    std::ifstream in(o.file);
    if (!in.good()) throw Error("cannot open program file: " + o.file);
    std::ostringstream text;
    text << in.rdbuf();
    return ir::parse_program(text.str());
  }
  if (o.program == "fig6")
    return workloads::fig6_original(std::min<std::int64_t>(o.n, 2000));
  if (o.program == "fig7") return workloads::fig7_original(o.n);
  if (o.program == "sec21") return workloads::sec21_both_loops(o.n);
  if (o.program == "jacobi")
    return workloads::jacobi_chain(std::min<std::int64_t>(o.n, 100000), 4);
  if (o.program == "adi")
    return workloads::adi_like(std::min<std::int64_t>(o.n, 2000));
  if (o.program == "blur")
    return workloads::blur_sharpen(std::min<std::int64_t>(o.n, 100000));
  if (o.program == "cascade")
    return workloads::reduction_cascade(std::min<std::int64_t>(o.n, 100000),
                                        3);
  if (o.program == "stride")
    return workloads::transposed_sweep(std::min<std::int64_t>(o.n, 2000));
  if (o.program == "random") {
    Prng rng(o.seed);
    workloads::RandomProgramParams params;
    params.n = std::min<std::int64_t>(o.n, 4096);
    return workloads::random_program(rng, params);
  }
  throw Error("unknown program: " + o.program);
}

machine::MachineModel make_machine(const Options& o) {
  machine::MachineModel m;
  if (o.machine == "o2k") {
    m = machine::origin2000_r10k();
  } else if (o.machine == "exemplar") {
    m = machine::exemplar_pa8000();
  } else if (o.machine == "modern") {
    m = machine::generic_modern();
  } else {
    throw Error("unknown machine: " + o.machine);
  }
  return m.scaled(o.scale).with_cores(o.cores);
}

model::ExecEngine make_engine(const std::string& name) {
  if (name == "compiled") return model::ExecEngine::kCompiled;
  if (name == "reference") return model::ExecEngine::kReference;
  if (name == "native") return model::ExecEngine::kNative;
  throw Error("unknown engine: " + name);
}

core::FusionSolver make_solver(const std::string& name) {
  if (name == "best") return core::FusionSolver::kBest;
  if (name == "exact") return core::FusionSolver::kExact;
  if (name == "greedy") return core::FusionSolver::kGreedy;
  if (name == "bisection") return core::FusionSolver::kBisection;
  if (name == "edge-weighted") return core::FusionSolver::kEdgeWeighted;
  if (name == "none") return core::FusionSolver::kNone;
  throw Error("unknown solver: " + name);
}

/// The PipelineSpec string this invocation runs: --passes verbatim, else
/// the default pipeline of the per-pass flags; --regroup appends the
/// regroup pass either way.
std::string effective_pipeline(const Options& o,
                               const core::OptimizerOptions& opts) {
  std::string spec = o.passes.empty() ? core::default_pipeline(opts)
                                      : o.passes;
  if (o.regroup) spec += (spec.empty() ? "regroup" : ",regroup");
  return spec;
}

// ---- autotune mode: search the pipeline space for the workload ----

int run_tune(const Options& o, const ir::Program& original) {
  tune::TuneOptions topts;
  topts.strategy = tune::parse_strategy(o.tune_strategy);
  topts.gap_percent = o.tune_gap;
  topts.budget = tune::parse_budget(o.tune_budget);
  topts.seed = o.tune_seed;
  topts.threads = o.cores;
  topts.machine = make_machine(o);
  topts.engine = make_engine(o.engine);
  if (!o.tune_seed_log.empty())
    topts.seed_specs = server::read_pipeline_specs(o.tune_seed_log);
  const tune::TuneResult result = tune::tune(original, topts);

  if (!o.remarks.empty()) {
    // Winner's per-pass reports plus the synthetic tune record carrying
    // the certificate, as one schema-valid bwc-remarks-v1 document.
    pass::PipelineReport report = result.winner_pipeline;
    report.passes.push_back(result.report());
    const std::string name = o.file.empty() ? o.program : o.file;
    std::cout << report.to_json(name, result.winner_spec) << "\n";
    return 0;
  }

  std::cout << "autotune: " << tune::strategy_name(topts.strategy)
            << " search, budget " << topts.budget << ", gap "
            << o.tune_gap << "%, seed " << o.tune_seed << ", "
            << topts.threads
            << (topts.threads == 1 ? " thread\n" : " threads\n");
  std::cout << "evaluated " << result.evaluated << " candidates ("
            << result.infeasible << " infeasible)"
            << (result.early_stop ? "; stopped early within the gap"
                                  : "")
            << "\n\n";

  TextTable t("validated on " + topts.machine.name);
  t.set_header({"", "pipeline", "predicted", "measured"});
  for (const tune::Validated& v : result.validated) {
    const char* mark = v.spec == result.winner_spec    ? "winner"
                       : v.spec == result.default_spec ? "default"
                                                       : "";
    t.add_row({mark, v.spec.empty() ? "(no passes)" : v.spec,
               fmt_bytes(static_cast<double>(v.predicted_bytes)),
               fmt_bytes(static_cast<double>(v.measured_bytes))});
  }
  std::cout << t.render() << "\n";

  std::cout << "data-movement floor: " << result.floor.floor_bytes
            << " bytes\n";
  for (const verify::FloorRegion& region : result.floor.arrays)
    std::cout << "  " << region.name << ": " << region.bytes
              << " bytes\n";
  const tune::Certificate& cert = result.certificate;
  if (cert.within_gap) {
    std::cout << "certificate: winner is OPTIMAL within " << o.tune_gap
              << "% -- measured " << cert.measured_bytes << " bytes is "
              << fmt_fixed(cert.gap_percent, 2) << "% above the floor\n";
  } else if (cert.gap_percent < 0) {
    std::cout << "certificate: none (zero floor: the program moves no "
                 "mandatory data)\n";
  } else {
    std::cout << "certificate: none -- measured " << cert.measured_bytes
              << " bytes is " << fmt_fixed(cert.gap_percent, 2)
              << "% above the floor (tolerance " << o.tune_gap << "%)\n";
  }

  // The default pipeline is always in the validated set, so this can
  // only fire on an autotuner bug.
  const bool ok = result.winner_measured_bytes <= result.default_measured_bytes;
  if (!ok)
    std::cout << "winner vs default: WORSE -- please report a bug\n";
  return ok ? 0 : 1;
}

// ---- bwcd-client: speak the bwcd-v1 protocol to a running daemon ----

struct ClientOptions {
  std::string host = "127.0.0.1";
  int port = 0;
  std::string op = "optimize";
  /// Workload selection reuses the top-level table (--program/--file/...).
  Options workload;
  std::string pipeline;
  bool measure = true;
  std::int64_t timeout_ms = 0;
  /// Tune-op knobs (--op tune).
  std::string strategy = "beam";
  double gap = 5.0;
  std::string budget = "small";
  std::uint64_t tune_seed = 0;
  /// Print the raw response payload instead of the human summary.
  bool json = false;
};

const Flag kClientFlags[] = {
    {"--host", "<addr>", "daemon address (default 127.0.0.1)",
     [](Options&, const std::string&) {}},
    {"--port", "<int>", "daemon port (required)",
     [](Options&, const std::string&) {}},
    {"--op", "<optimize|tune|stats|ping>", "request kind (default optimize)",
     [](Options&, const std::string&) {}},
    {"--program", "<fig6|fig7|sec21|jacobi|adi|blur|cascade|stride|random>",
     "workload to submit (default fig7)",
     [](Options& o, const std::string& v) { o.program = v; }},
    {"--file", "<path>", "submit the program from a text file instead",
     [](Options& o, const std::string& v) { o.file = v; }},
    {"--n", "<int>", "problem size (default 100000)",
     [](Options& o, const std::string& v) { o.n = std::stoll(v); }},
    {"--seed", "<int>", "PRNG seed for --program random (default 1)",
     [](Options& o, const std::string& v) { o.seed = std::stoull(v); }},
    {"--passes", "<spec>", "pipeline spec (default: the daemon default)",
     [](Options&, const std::string&) {}},
    {"--machine", "<o2k|exemplar|modern>", "machine model (default o2k)",
     [](Options& o, const std::string& v) { o.machine = v; }},
    {"--cores", "<int>", "core count (default 1)",
     [](Options& o, const std::string& v) { o.cores = std::stoi(v); }},
    {"--scale", "<int>", "cache scale divisor (default 16)",
     [](Options& o, const std::string& v) { o.scale = std::stoull(v); }},
    {"--engine", "<compiled|reference|native>",
     "replay engine for the measurement (default compiled)",
     [](Options& o, const std::string& v) { o.engine = v; }},
    {"--no-measure", "", "skip the machine-model measurement",
     [](Options&, const std::string&) {}},
    {"--strategy", "<beam|genetic>",
     "tune-op search strategy (default beam)",
     [](Options&, const std::string&) {}},
    {"--gap", "<percent>", "tune-op certificate tolerance (default 5)",
     [](Options&, const std::string&) {}},
    {"--budget", "<small|medium|large|int>",
     "tune-op evaluation budget (default small; the daemon keeps tune "
     "requests comparable to optimize in service time)",
     [](Options&, const std::string&) {}},
    {"--tune-seed", "<int>", "tune-op search seed (default 0)",
     [](Options&, const std::string&) {}},
    {"--timeout-ms", "<int>",
     "queue-wait deadline for this request (default: daemon default)",
     [](Options&, const std::string&) {}},
    {"--json", "", "print the raw response payload",
     [](Options&, const std::string&) {}},
};

void print_client_help(std::ostream& os) {
  os << "bwcopt bwcd-client -- submit one request to a running bwcd\n\n"
        "usage: bwcopt bwcd-client --port <port> [options]\n\n"
        "Exit 0 when the response status is \"ok\" (or \"pong\"), 1 on any "
        "error\nstatus, 2 on bad usage or a transport failure.\n\noptions:\n";
  for (const Flag& flag : kClientFlags) {
    std::string head = "  " + std::string(flag.name);
    if (flag.value[0] != '\0') head += " " + std::string(flag.value);
    os << head << "\n        " << flag.help << "\n";
  }
  os << "  --help\n        print this help and exit\n";
}

[[noreturn]] void client_usage_error(const std::string& why) {
  std::cerr << "bwcopt bwcd-client: " << why << "\n"
            << "usage: bwcopt bwcd-client --port <port> [options]; run "
               "bwcopt bwcd-client --help for the flag list\n";
  std::exit(2);
}

ClientOptions parse_client(int argc, char** argv) {
  ClientOptions c;
  // argv[1] is the subcommand name; flags start at argv[2].
  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_client_help(std::cout);
      std::exit(0);
    }
    std::string value;
    bool has_value = false;
    const std::size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
      has_value = true;
    }
    const Flag* found = nullptr;
    for (const Flag& flag : kClientFlags) {
      if (arg == flag.name) {
        found = &flag;
        break;
      }
    }
    if (found == nullptr) client_usage_error("unknown flag: " + arg);
    const bool takes_value = found->value[0] != '\0';
    if (takes_value && !has_value) {
      if (i + 1 >= argc)
        client_usage_error("flag " + arg + " requires a value " +
                           found->value);
      value = argv[++i];
      has_value = true;
    } else if (!takes_value && has_value) {
      client_usage_error("flag " + arg + " takes no value");
    }
    try {
      // Flags shared with the top-level table route through workload;
      // client-only flags are handled here.
      if (arg == "--host") {
        c.host = value;
      } else if (arg == "--port") {
        c.port = std::stoi(value);
      } else if (arg == "--op") {
        c.op = value;
      } else if (arg == "--passes") {
        c.pipeline = value;
      } else if (arg == "--no-measure") {
        c.measure = false;
      } else if (arg == "--timeout-ms") {
        c.timeout_ms = std::stoll(value);
      } else if (arg == "--strategy") {
        c.strategy = value;
      } else if (arg == "--gap") {
        c.gap = std::stod(value);
      } else if (arg == "--budget") {
        c.budget = value;
      } else if (arg == "--tune-seed") {
        c.tune_seed = std::stoull(value);
      } else if (arg == "--json") {
        c.json = true;
      } else {
        found->apply(c.workload, value);
      }
    } catch (const std::exception&) {
      client_usage_error("bad value \"" + value + "\" for flag " + arg);
    }
  }
  if (c.port < 1 || c.port > 65535)
    client_usage_error("--port is required (1..65535)");
  if (c.op != "optimize" && c.op != "tune" && c.op != "stats" &&
      c.op != "ping")
    client_usage_error("unknown op: " + c.op +
                       " (supported: optimize, tune, stats, ping)");
  return c;
}

int bwcd_client_main(int argc, char** argv) {
  const ClientOptions c = parse_client(argc, argv);
  try {
    server::Request request;
    if (c.op == "stats") {
      request.op = server::Request::Op::kStats;
    } else if (c.op == "ping") {
      request.op = server::Request::Op::kPing;
    } else {
      const bool is_tune = c.op == "tune";
      request.op = is_tune ? server::Request::Op::kTune
                           : server::Request::Op::kOptimize;
      request.program = ir::to_string(make_program(c.workload));
      request.machine = c.workload.machine;
      request.cores = c.workload.cores;
      request.scale = c.workload.scale;
      request.engine = c.workload.engine;
      request.timeout_ms = c.timeout_ms;
      if (is_tune) {
        request.strategy = c.strategy;
        request.gap = c.gap;
        request.budget = c.budget;
        request.tune_seed = c.tune_seed;
      } else {
        request.pipeline = c.pipeline;
        request.measure = c.measure;
      }
    }
    server::Client client(c.host, c.port);
    const server::Response response = client.call(request);
    if (c.json) {
      std::cout << server::render_response(response) << "\n";
    } else if (response.status == "ok") {
      std::cout << "status: ok"
                << (response.cache_hit ? " (cache hit)" : "") << " in "
                << response.elapsed_us << " us\n";
      if (!response.result_json.empty())
        std::cout << response.result_json << "\n";
    } else {
      std::cout << "status: " << response.status << "\n";
      if (!response.error.empty())
        std::cout << "error: " << response.error << "\n";
    }
    return response.status == "ok" ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "bwcopt bwcd-client: error: " << e.what() << "\n";
    return 2;
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::string(argv[1]) == "bwcd-client")
    return bwcd_client_main(argc, argv);
  const Options o = parse(argc, argv);
  try {
    const ir::Program original = make_program(o);
    if (o.tune) return run_tune(o, original);

    core::OptimizerOptions opts;
    opts.solver = make_solver(o.solver);
    opts.reduce_storage = o.storage;
    opts.eliminate_stores = o.stores;
    opts.allow_shifted_fusion = o.shift;
    opts.auto_interchange = o.interchange;
    opts.scalar_replacement = o.scalar_replace;
    opts.verify = o.verify_pipeline;
    opts.static_verify = o.static_verify == "off"
                             ? pass::StaticVerifyMode::kOff
                             : o.static_verify == "only"
                                   ? pass::StaticVerifyMode::kOnly
                                   : pass::StaticVerifyMode::kOn;
    opts.cache_analyses = o.cache_analyses;
    opts.audit_analyses = o.audit_analyses;
    opts.cores = o.cores;
    opts.passes = o.lint ? "lint" : effective_pipeline(o, opts);
    if (o.print_after_all) {
      opts.print_after = [](const pass::Pass& pass,
                            const ir::Program& program) {
        std::cout << "---- after " << pass.name() << " ----\n"
                  << ir::to_string(program) << "\n";
      };
    }
    const core::OptimizeResult result = core::optimize(original, opts);

    if (o.lint) {
      // Diagnostics mode: findings are the only product; exit 1 when any
      // error-severity finding was emitted.
      const int errors = result.pipeline.error_findings();
      if (!o.remarks.empty()) {
        const std::string name = o.file.empty() ? o.program : o.file;
        std::cout << result.pipeline.to_json(name, opts.passes) << "\n";
      } else {
        for (const auto& pass_report : result.pipeline.passes) {
          for (const auto& remark : pass_report.remarks) {
            std::cout << "lint: [" << pass::remark_severity_name(
                             remark.severity)
                      << "] " << remark.code << ": " << remark.message
                      << "\n";
          }
        }
      }
      return errors > 0 ? 1 : 0;
    }

    if (!o.remarks.empty()) {
      // Machine-readable mode: the JSON document is the only stdout
      // output, so CI can pipe it straight into the schema validator.
      const std::string name = o.file.empty() ? o.program : o.file;
      std::cout << result.pipeline.to_json(name, opts.passes) << "\n";
      return 0;
    }

    const machine::MachineModel machine = make_machine(o);
    if (o.print) {
      std::cout << "---- original ----\n" << ir::to_string(original)
                << "\n---- optimized ----\n" << ir::to_string(result.program)
                << "\n";
    }
    std::cout << "passes:\n" << core::render_log(result) << "\n";

    model::MeasureOptions measure_opts;
    measure_opts.engine = make_engine(o.engine);
    measure_opts.fast_forward = o.fast_forward;
    measure_opts.native.cache_dir = o.codegen_cache_dir;
    runtime::NativeReport native_report;
    if (measure_opts.engine == model::ExecEngine::kNative)
      measure_opts.native_report = &native_report;
    const auto before = model::measure(original, machine, measure_opts);
    if (!native_report.warning.empty()) {
      // Native fell back to the VM; say so once (results are identical).
      std::cerr << "warning: " << native_report.warning << "\n";
      measure_opts.native_report = nullptr;
    }
    const auto after = model::measure(result.program, machine, measure_opts);
    TextTable t("on " + machine.name);
    t.set_header({"", "mem traffic", "predicted ms", "binding"});
    t.add_row({"original",
               fmt_bytes(static_cast<double>(before.profile.memory_bytes())),
               fmt_fixed(before.time.total_s * 1e3, 3),
               before.time.binding_resource});
    t.add_row({"optimized",
               fmt_bytes(static_cast<double>(after.profile.memory_bytes())),
               fmt_fixed(after.time.total_s * 1e3, 3),
               after.time.binding_resource});
    std::cout << t.render();
    std::cout << "speedup: "
              << fmt_fixed(before.time.total_s / after.time.total_s, 2)
              << "x\n";

    if (o.cores > 1) {
      // Scaling curves up to the requested core count: optimization lowers
      // shared-bus traffic, so the optimized program should saturate the
      // bus at strictly more cores (or plateau higher).
      std::cout << "\n"
                << model::render_scaling_curve(model::scaling_curve(
                       "original", before.profile, machine, o.cores))
                << model::render_scaling_curve(model::scaling_curve(
                       "optimized", after.profile, machine, o.cores));
    }

    bool bounds_ok = true;
    if (o.verify_report) {
      const struct {
        const char* label;
        const ir::Program& program;
        std::uint64_t measured;
      } sides[] = {
          {"original", original, before.profile.memory_bytes()},
          {"optimized", result.program, after.profile.memory_bytes()},
      };
      for (const auto& side : sides) {
        const verify::TrafficBound bound =
            verify::compute_traffic_bound(side.program);
        std::cout << "\n[" << side.label << "] " << bound.render();
        const bool holds =
            static_cast<std::uint64_t>(bound.lower_bound_bytes) <=
            side.measured;
        std::cout << "  bound <= measured " << side.measured << " bytes: "
                  << (holds ? "holds" : "VIOLATED -- please report a bug")
                  << "\n";
        bounds_ok = bounds_ok && holds;
      }
      std::cout << "\n";
    }

    const double drift =
        std::abs(before.exec.checksum - after.exec.checksum);
    const bool ok = bounds_ok &&
        drift <= 1e-9 * (std::abs(before.exec.checksum) + 1.0);
    std::cout << "semantics: "
              << (ok ? "preserved" : "MISMATCH -- please report a bug")
              << " (checksum " << before.exec.checksum << ")\n\n";
    std::cout << model::render_tuning_report(
        model::tuning_report(after.profile, machine));
    return ok ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
