#!/usr/bin/env python3
"""Validate `bwcopt --remarks=json` output against the bwc-remarks-v1 schema.

Usage:
    bwcopt --program fig7 --remarks=json | check_remarks_schema.py
    check_remarks_schema.py remarks.json
    bwcopt --program fig7 --lint --remarks=json \
        | check_remarks_schema.py --fail-on=error

With --fail-on=SEVERITY (error, or warning to also gate on warnings), the
checker additionally exits non-zero when any remark carries a finding of
that severity or worse -- the CI gate for `bwcopt --lint` runs.

The schema is the machine-readable pass-pipeline report documented in
docs/PIPELINE.md: one object per run carrying the pipeline spec, the
analysis-cache counters, and a per-pass record with wall time, IR
before/after stats, the predicted traffic-bound delta from
verify::compute_traffic_bound, the inter-pass verification outcome and
the structured remarks whose `message` fields are the legacy log lines.

CI pipes every bundled workload (and a non-default --passes ordering)
through this check so the JSON surface stays stable for downstream
tooling. Exits non-zero listing every violation. Stdlib only.
"""

import json
import sys

SCHEMA = "bwc-remarks-v1"
REMARK_KINDS = {"applied", "missed", "note"}
# Ordered least to most severe; see pass::RemarkSeverity.
REMARK_SEVERITIES = ("info", "warning", "error")


class Checker:
    def __init__(self) -> None:
        self.errors: list[str] = []

    def fail(self, path: str, why: str) -> None:
        self.errors.append(f"{path}: {why}")

    def field(self, obj: dict, path: str, key: str, types) -> object:
        """Requires obj[key] to exist with one of `types`; returns it."""
        if not isinstance(obj, dict):
            self.fail(path, f"expected object, got {type(obj).__name__}")
            return None
        if key not in obj:
            self.fail(path, f"missing required field '{key}'")
            return None
        value = obj[key]
        # bool is an int subclass; reject it unless bool was asked for.
        if isinstance(value, bool) and bool not in (
            types if isinstance(types, tuple) else (types,)
        ):
            self.fail(path + "." + key, "expected number, got bool")
            return None
        if not isinstance(value, types):
            self.fail(
                path + "." + key,
                f"expected {types}, got {type(value).__name__}",
            )
            return None
        return value


def check_ir_stats(c: Checker, stats: object, path: str) -> None:
    for key in ("loops", "statements", "arrays_referenced", "referenced_bytes"):
        value = c.field(stats, path, key, int)
        if value is not None and value < 0:
            c.fail(f"{path}.{key}", f"negative count {value}")


def check_verify(c: Checker, verify: object, path: str) -> None:
    if verify is None:  # verification off, or the pass changed nothing
        return
    check = c.field(verify, path, "check", str)
    if check == "":
        c.fail(path + ".check", "empty check name")
    skipped = c.field(verify, path, "skipped", bool)
    skip_reason = c.field(verify, path, "skip_reason", str)
    if skipped and not skip_reason:
        c.fail(path + ".skip_reason", "skipped verification gives no reason")
    instances = c.field(verify, path, "instances_checked", int)
    if instances is not None and instances < 0:
        c.fail(path + ".instances_checked", f"negative count {instances}")


def check_remark(c: Checker, remark: object, path: str) -> str | None:
    """Validates one remark; returns its severity (for the --fail-on gate)."""
    kind = c.field(remark, path, "kind", str)
    if kind is not None and kind not in REMARK_KINDS:
        c.fail(path + ".kind", f"unknown remark kind '{kind}'")
    code = c.field(remark, path, "code", str)
    if code == "":
        c.fail(path + ".code", "empty remark code")
    c.field(remark, path, "message", str)
    severity = c.field(remark, path, "severity", str)
    if severity is not None and severity not in REMARK_SEVERITIES:
        c.fail(path + ".severity", f"unknown severity '{severity}'")
    args = c.field(remark, path, "args", dict)
    if args is not None:
        for key, value in args.items():
            if not isinstance(value, str):
                c.fail(f"{path}.args.{key}", "arg values must be strings")
    return severity if severity in REMARK_SEVERITIES else None


def check_per_array(c: Checker, entries: object, path: str) -> None:
    """Per-array traffic breakdown: what each pass did to each array's
    estimated line traffic. Always present (empty for passes that do not
    publish a breakdown)."""
    if entries is None:
        return
    for i, entry in enumerate(entries):
        entry_path = f"{path}[{i}]"
        name = c.field(entry, entry_path, "name", str)
        if name == "":
            c.fail(entry_path + ".name", "empty array name")
        for key in ("bytes_before", "bytes_after"):
            value = c.field(entry, entry_path, key, int)
            if value is not None and value < 0:
                c.fail(f"{entry_path}.{key}", f"negative byte count {value}")


def check_pass(c: Checker, record: object, path: str) -> None:
    for key in ("pass", "label"):
        name = c.field(record, path, key, str)
        if name == "":
            c.fail(f"{path}.{key}", "empty name")
    c.field(record, path, "changed", bool)
    for key in ("wall_ms", "verify_ms"):
        ms = c.field(record, path, key, (int, float))
        if ms is not None and ms < 0:
            c.fail(f"{path}.{key}", f"negative duration {ms}")
    check_ir_stats(c, c.field(record, path, "ir_before", dict), path + ".ir_before")
    check_ir_stats(c, c.field(record, path, "ir_after", dict), path + ".ir_after")

    # Predicted traffic: -1 marks "not computed" (--no-traffic-deltas);
    # otherwise before - after must equal the recorded delta.
    before = c.field(record, path, "traffic_bound_before_bytes", int)
    after = c.field(record, path, "traffic_bound_after_bytes", int)
    delta = c.field(record, path, "traffic_bound_delta_bytes", int)
    if before is not None and after is not None and delta is not None:
        if (before < 0) != (after < 0):
            c.fail(path, "traffic bound computed on only one side of the pass")
        if before >= 0 and after >= 0 and after - before != delta:
            c.fail(
                path,
                f"traffic_bound_delta_bytes {delta} != after - before "
                f"({after} - {before})",
            )

    check_verify(c, record.get("verify") if isinstance(record, dict) else None,
                 path + ".verify")
    check_per_array(c, c.field(record, path, "per_array", list),
                    path + ".per_array")
    remarks = c.field(record, path, "remarks", list)
    severities = []
    if remarks is not None:
        for i, remark in enumerate(remarks):
            severity = check_remark(c, remark, f"{path}.remarks[{i}]")
            if severity is not None:
                severities.append(severity)
    return severities


def check_report(c: Checker, report: object) -> list[str]:
    schema = c.field(report, "$", "schema", str)
    if schema is not None and schema != SCHEMA:
        c.fail("$.schema", f"expected '{SCHEMA}', got '{schema}'")
    c.field(report, "$", "program", str)
    c.field(report, "$", "pipeline", str)
    cache = c.field(report, "$", "analysis_cache", dict)
    if cache is not None:
        for key in ("hits", "misses", "invalidations"):
            value = c.field(cache, "$.analysis_cache", key, int)
            if value is not None and value < 0:
                c.fail(f"$.analysis_cache.{key}", f"negative count {value}")
    severities = []
    passes = c.field(report, "$", "passes", list)
    if passes is not None:
        if not passes:
            c.fail("$.passes", "empty pipeline: no passes ran")
        for i, record in enumerate(passes):
            severities += check_pass(c, record, f"$.passes[{i}]")
    return severities


def main(argv: list[str]) -> int:
    fail_on = None
    args = []
    for arg in argv[1:]:
        if arg.startswith("--fail-on="):
            fail_on = arg.split("=", 1)[1]
            if fail_on not in REMARK_SEVERITIES:
                print(f"unknown --fail-on severity '{fail_on}'", file=sys.stderr)
                return 2
        else:
            args.append(arg)
    if len(args) > 1:
        print(__doc__, file=sys.stderr)
        return 2
    source = open(args[0]) if len(args) == 1 else sys.stdin
    try:
        report = json.load(source)
    except json.JSONDecodeError as err:
        print(f"not valid JSON: {err}", file=sys.stderr)
        return 1
    finally:
        if source is not sys.stdin:
            source.close()

    checker = Checker()
    severities = check_report(checker, report)
    if checker.errors:
        for error in checker.errors:
            print(f"SCHEMA VIOLATION {error}", file=sys.stderr)
        return 1
    if fail_on is not None:
        threshold = REMARK_SEVERITIES.index(fail_on)
        flagged = [s for s in severities
                   if REMARK_SEVERITIES.index(s) >= threshold]
        if flagged:
            print(
                f"{len(flagged)} finding(s) at severity >= {fail_on}",
                file=sys.stderr,
            )
            return 1
    count = len(report.get("passes", []))
    print(f"remarks schema ok: {count} pass record(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
