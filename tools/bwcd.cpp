// bwcd — the optimizer-as-a-service daemon.
//
// Listens on 127.0.0.1, accepts length-prefixed JSON frames carrying
// optimize/stats/ping requests (schema bwcd-v1, docs/SERVER.md),
// schedules optimize jobs as batches on the runtime thread pool, and
// serves repeated requests from an on-disk content-addressed compile
// cache. SIGTERM/SIGINT trigger a graceful drain: queued requests are
// answered, new ones are rejected, then the process exits 0.
#include <poll.h>
#include <signal.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>

#include "bwc/server/daemon.h"
#include "bwc/support/error.h"

namespace {

using namespace bwc;

struct Options {
  server::DaemonOptions daemon;
};

struct Flag {
  const char* name;
  const char* value;
  const char* help;
  void (*apply)(Options&, const std::string&);
};

const Flag kFlags[] = {
    {"--port", "<int>",
     "TCP port to bind on 127.0.0.1 (default 0 = pick an ephemeral port "
     "and print it)",
     [](Options& o, const std::string& v) { o.daemon.port = std::stoi(v); }},
    {"--threads", "<int>", "optimize worker threads (default 4)",
     [](Options& o, const std::string& v) {
       o.daemon.threads = std::stoi(v);
     }},
    {"--queue-max", "<int>",
     "bounded job-queue capacity; a request arriving on a full queue is "
     "answered \"overloaded\" immediately, never queued blind (default 64)",
     [](Options& o, const std::string& v) {
       o.daemon.queue_max = std::stoi(v);
     }},
    {"--batch-max", "<int>",
     "max jobs drained per dispatcher batch -- one thread-pool "
     "parallel_for per batch (default 8)",
     [](Options& o, const std::string& v) {
       o.daemon.batch_max = std::stoi(v);
     }},
    {"--max-connections", "<int>", "live-connection cap (default 256)",
     [](Options& o, const std::string& v) {
       o.daemon.max_connections = std::stoi(v);
     }},
    {"--timeout-ms", "<int>",
     "default queue-wait deadline for requests that do not carry their "
     "own timeout_ms (default 30000)",
     [](Options& o, const std::string& v) {
       o.daemon.default_timeout_ms = std::stoll(v);
     }},
    {"--cache-dir", "<path>",
     "content-addressed compile cache directory; repeated identical "
     "requests are served from disk without re-running the pipeline "
     "(default off)",
     [](Options& o, const std::string& v) {
       o.daemon.service.cache_dir = v;
     }},
    {"--record-log", "<path>",
     "append-only binary record log of every served request (format in "
     "docs/SERVER.md; default off)",
     [](Options& o, const std::string& v) {
       o.daemon.service.record_log_path = v;
     }},
};

void print_help(std::ostream& os) {
  os << "bwcd -- serve the bandwidth optimizer over plain TCP\n\n"
        "usage: bwcd [options]\n\n"
        "Prints \"bwcd: listening on port N\" once ready. Speak the "
        "protocol with\n`bwcopt bwcd-client` or any client that frames "
        "JSON per docs/SERVER.md.\nSIGTERM/SIGINT drain gracefully.\n\n"
        "options:\n";
  for (const Flag& flag : kFlags) {
    std::string head = "  ";
    head += flag.name;
    if (flag.value[0] != '\0') {
      head += ' ';
      head += flag.value;
    }
    os << head << "\n";
    std::istringstream words(flag.help);
    std::string word;
    std::string line;
    while (words >> word) {
      if (!line.empty() && line.size() + 1 + word.size() > 70) {
        os << "        " << line << "\n";
        line.clear();
      }
      if (!line.empty()) line += " ";
      line += word;
    }
    if (!line.empty()) os << "        " << line << "\n";
  }
  os << "  --help\n        print this help and exit\n";
}

[[noreturn]] void usage_error(const std::string& why) {
  std::cerr << "bwcd: " << why << "\n"
            << "usage: bwcd [options]; run bwcd --help for the flag list\n";
  std::exit(2);
}

Options parse(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_help(std::cout);
      std::exit(0);
    }
    std::string inline_value;
    bool has_inline = false;
    const std::size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      inline_value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
      has_inline = true;
    }
    const Flag* found = nullptr;
    for (const Flag& flag : kFlags) {
      if (arg == flag.name) {
        found = &flag;
        break;
      }
    }
    if (found == nullptr) usage_error("unknown flag: " + arg);
    std::string value;
    if (has_inline) {
      value = inline_value;
    } else if (i + 1 < argc) {
      value = argv[++i];
    } else {
      usage_error("flag " + arg + " requires a value " + found->value);
    }
    try {
      found->apply(o, value);
    } catch (const std::exception&) {
      usage_error("bad value \"" + value + "\" for flag " + arg);
    }
  }
  if (o.daemon.port < 0 || o.daemon.port > 65535)
    usage_error("--port must be in [0, 65535]");
  if (o.daemon.threads < 1) usage_error("--threads must be >= 1");
  if (o.daemon.queue_max < 1) usage_error("--queue-max must be >= 1");
  if (o.daemon.batch_max < 1) usage_error("--batch-max must be >= 1");
  if (o.daemon.max_connections < 1)
    usage_error("--max-connections must be >= 1");
  return o;
}

// Self-pipe: the signal handler does the only async-signal-safe thing
// (write one byte); the main thread blocks on the read end and runs the
// actual drain outside signal context.
int g_signal_pipe[2] = {-1, -1};

extern "C" void on_signal(int) {
  const char byte = 1;
  [[maybe_unused]] const ssize_t n = ::write(g_signal_pipe[1], &byte, 1);
}

}  // namespace

int main(int argc, char** argv) {
  const Options o = parse(argc, argv);
  try {
    if (::pipe(g_signal_pipe) != 0) {
      std::cerr << "bwcd: cannot create signal pipe: " << std::strerror(errno)
                << "\n";
      return 2;
    }
    struct sigaction sa;
    std::memset(&sa, 0, sizeof sa);
    sa.sa_handler = on_signal;
    ::sigaction(SIGTERM, &sa, nullptr);
    ::sigaction(SIGINT, &sa, nullptr);
    ::signal(SIGPIPE, SIG_IGN);

    server::Daemon daemon(o.daemon);
    daemon.start();
    std::cout << "bwcd: listening on port " << daemon.port() << std::endl;

    // Block until SIGTERM/SIGINT.
    char byte;
    while (true) {
      const ssize_t n = ::read(g_signal_pipe[0], &byte, 1);
      if (n == 1) break;
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) break;
    }
    std::cout << "bwcd: draining" << std::endl;
    daemon.stop();

    const server::Service::Stats stats = daemon.service().stats();
    std::cout << "bwcd: served " << stats.requests << " requests ("
              << stats.cache_hits << " cache hits, " << stats.pipeline_runs
              << " pipeline runs)" << std::endl;
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "bwcd: error: " << e.what() << "\n";
    return 2;
  }
}
