#!/usr/bin/env python3
"""Compare native-bench JSON output against a committed baseline.

Usage:
    check_bench_regression.py BENCH_baseline.json current.jsonl

`current.jsonl` holds one JSON object per line, each emitted by a bench
binary run with --json and carrying a "bench" key naming it (CI
concatenates the outputs). Repeated lines for the same bench are
aggregated per-metric by median before comparison -- CI runs the
wall-clock benches several times so one descheduled run doesn't fail
the job. The baseline maps bench name -> {metric: value}; metric
medians are recorded by tools/update_bench_baseline.py.

A metric regresses when it is more than 20% worse than its baseline.
"Worse" is direction-aware: keys ending in `_ms` are lower-is-better
(predicted times); everything else -- speedups, accesses/sec, MB/s,
saturation core counts -- is higher-is-better. Wall-clock metrics wobble
run to run, which is why the tolerance is 20% and the benches gate their
own hard floors separately; this check catches the slow drift and the
big cliffs.

Exits non-zero listing every regressed metric. Metrics present on only
one side are reported (a renamed or dropped metric should update the
baseline deliberately) but only missing-from-current fails.
"""

import json
import statistics
import sys

TOLERANCE = 0.20


def lower_is_better(metric: str) -> bool:
    return metric.endswith("_ms")


def main(argv: list[str]) -> int:
    if len(argv) != 3:
        print(__doc__.strip().splitlines()[2].strip(), file=sys.stderr)
        return 2
    with open(argv[1], encoding="utf-8") as f:
        baseline = json.load(f)

    current: dict[str, dict[str, list[float]]] = {}
    with open(argv[2], encoding="utf-8") as f:
        for lineno, line in enumerate(f, start=1):
            line = line.strip()
            if not line:
                continue
            obj = json.loads(line)
            if "bench" not in obj:
                print(
                    f"error: {argv[2]}:{lineno}: JSON object has no 'bench'"
                    " key naming the benchmark; every --json line must carry"
                    " one",
                    file=sys.stderr,
                )
                return 2
            samples = current.setdefault(obj.pop("bench"), {})
            for metric, value in obj.items():
                samples.setdefault(metric, []).append(float(value))

    # An empty current file means the bench step produced nothing at all
    # (build failure swallowed by `|| true`, wrong path, ...). That is a
    # harness problem, not a clean "0 regressions" -- fail loudly and
    # distinctly.
    if not current:
        print(
            f"error: {argv[2]} contains no bench output lines; did the"
            " bench binaries run?",
            file=sys.stderr,
        )
        return 2

    failures = []
    checked = 0
    for bench, metrics in baseline.items():
        cur = current.get(bench)
        if cur is None:
            failures.append(
                f"{bench}: no current output -- bench missing from the run"
                " (not built, crashed before --json, or renamed without"
                " updating BENCH_baseline.json)"
            )
            continue
        for metric, base in metrics.items():
            if metric not in cur:
                failures.append(
                    f"{bench}.{metric}: missing from current run -- metric"
                    " renamed or dropped? update BENCH_baseline.json via"
                    " tools/update_bench_baseline.py if deliberate"
                )
                continue
            now = statistics.median(cur[metric])
            checked += 1
            if lower_is_better(metric):
                bad = now > base * (1.0 + TOLERANCE)
                arrow = f"{base:g} -> {now:g} (+{(now / base - 1) * 100:.1f}%)"
            else:
                bad = now < base * (1.0 - TOLERANCE)
                arrow = f"{base:g} -> {now:g} ({(now / base - 1) * 100:+.1f}%)"
            status = "REGRESSED" if bad else "ok"
            print(f"{bench}.{metric}: {arrow} {status}")
            if bad:
                failures.append(f"{bench}.{metric}: {arrow}")

    for bench in current:
        if bench not in baseline:
            print(f"note: {bench} has no baseline entry (add one?)")

    if failures:
        print(f"\nFAIL: {len(failures)} metric(s) regressed >{TOLERANCE:.0%}:")
        for f_ in failures:
            print(f"  {f_}")
        return 1
    print(f"\nOK: {checked} metrics within {TOLERANCE:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
